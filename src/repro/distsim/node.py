"""Per-node protocol interface for the synchronous LOCAL-model simulator.

A distributed algorithm is expressed as a subclass of :class:`NodeProtocol`.  The
simulator instantiates one protocol object per node and, in every synchronous round,

1. calls :meth:`NodeProtocol.compose_message` on every (non-halted) node — the node
   may broadcast one payload to all (or a subset of) its neighbours, matching the
   paper's *Broadcast Model* assumption;
2. delivers all messages simultaneously;
3. calls :meth:`NodeProtocol.receive` on every node with the messages received this
   round.

Nodes only ever see: their own identifier, the identifiers and edge weights of their
incident edges, the number of nodes ``n`` (or an upper bound) and whatever arrives in
messages — exactly the knowledge allowed by the LOCAL model of Section II.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.distsim.message import BROADCAST, Message


@dataclass(frozen=True)
class NodeContext:
    """Static knowledge available to a node before any communication.

    Attributes
    ----------
    node_id:
        The node's unique identifier.
    neighbor_weights:
        Mapping ``u -> w({node_id, u})`` over the node's neighbours (excludes the
        node itself; any self-loop weight is provided separately).
    self_loop_weight:
        Total weight of the node's self-loop (0.0 if none).  Self-loops contribute
        to the weighted degree but never carry messages.
    num_nodes:
        The number of nodes ``n`` of the graph (or an upper bound); the paper assumes
        every node knows this.
    """

    node_id: Hashable
    neighbor_weights: Mapping[Hashable, float]
    self_loop_weight: float
    num_nodes: int

    @property
    def weighted_degree(self) -> float:
        """The node's weighted degree (self-loop counted once)."""
        return sum(self.neighbor_weights.values()) + self.self_loop_weight

    @property
    def degree(self) -> int:
        """The node's number of neighbours (self-loop not counted)."""
        return len(self.neighbor_weights)


#: What a node returns from ``compose_message``:
#: ``None``                           → send nothing this round;
#: ``(payload, BROADCAST)``           → send ``payload`` to every neighbour;
#: ``(payload, iterable_of_neighbors)`` → send ``payload`` to the listed neighbours.
Outgoing = Optional[Tuple[Any, Optional[Iterable[Hashable]]]]


class NodeProtocol(abc.ABC):
    """Base class for the per-node logic of a distributed algorithm."""

    def __init__(self, context: NodeContext) -> None:
        self.context = context
        self._halted = False

    # -------------------------------------------------------------- lifecycle
    def setup(self) -> None:
        """Hook called once before round 1 (default: no-op)."""

    @abc.abstractmethod
    def compose_message(self, round_index: int) -> Outgoing:
        """Payload (and recipients) to send in round ``round_index`` (1-based)."""

    @abc.abstractmethod
    def receive(self, round_index: int, messages: Dict[Hashable, Message]) -> None:
        """Process the messages received in round ``round_index``.

        ``messages`` maps sender id to the delivered :class:`Message`; neighbours
        that sent nothing (or whose message was dropped) are absent.
        """

    @abc.abstractmethod
    def output(self) -> Any:
        """The node's final output (may be read at any time after a round)."""

    # ------------------------------------------------------------------ halting
    def halt(self) -> None:
        """Mark this node as finished; the simulator stops invoking it."""
        self._halted = True

    @property
    def halted(self) -> bool:
        """Whether the node has halted."""
        return self._halted

    # ------------------------------------------------------------- conveniences
    def broadcast(self, payload: Any) -> Outgoing:
        """Helper returning a broadcast instruction for ``payload``."""
        return (payload, BROADCAST)

    def unicast(self, payload: Any, recipients: Iterable[Hashable]) -> Outgoing:
        """Helper returning a restricted-recipient instruction for ``payload``."""
        return (payload, list(recipients))
