"""The synchronous message-passing simulator (LOCAL / CONGEST model).

:class:`SyncNetwork` owns one :class:`~repro.distsim.node.NodeProtocol` instance per
graph node and executes synchronous rounds: all nodes compose their outgoing
messages against the *previous* round's state, then all messages are delivered, then
all nodes process their inboxes.  This matches the paper's model in Section II
("Synchronous Rounds and Polynomial-Time Computation", "Broadcast Model").

The simulator is single-process and deterministic; it is the **reference
implementation** against which the vectorised NumPy engines of :mod:`repro.core` are
tested for bit-identical outputs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional

from repro.distsim.congest import CongestBudget, MessageSizeModel
from repro.distsim.faults import FaultModel
from repro.distsim.message import BROADCAST, Message
from repro.distsim.node import NodeContext, NodeProtocol
from repro.distsim.stats import RoundStats, RunStats
from repro.errors import SimulationError
from repro.graph.graph import Graph

#: A protocol factory receives the node's static context and returns its protocol.
ProtocolFactory = Callable[[NodeContext], NodeProtocol]


class SyncNetwork:
    """Synchronous-round executor for a protocol on a graph.

    Parameters
    ----------
    graph:
        The communication graph; an edge means the two endpoints can exchange
        messages in a round.  Edge weights are exposed to the endpoints (they are
        part of a node's initial knowledge), self-loops only contribute to degrees.
    protocol_factory:
        Callable building the per-node protocol from its :class:`NodeContext`.
    size_model:
        Optional :class:`MessageSizeModel` used to charge message sizes; when
        omitted a default model (64-bit floats) is used.
    congest_budget:
        Optional :class:`CongestBudget`; when provided every delivered message is
        checked against the ``O(log n)``-bit budget and violations are counted.
    fault_model:
        Optional :class:`FaultModel` for message drops / node crashes.
    """

    def __init__(self, graph: Graph, protocol_factory: ProtocolFactory, *,
                 size_model: Optional[MessageSizeModel] = None,
                 congest_budget: Optional[CongestBudget] = None,
                 fault_model: Optional[FaultModel] = None) -> None:
        if graph.num_nodes == 0:
            raise SimulationError("cannot simulate a protocol on the empty graph")
        self.graph = graph
        self.size_model = size_model or MessageSizeModel()
        self.congest_budget = congest_budget
        self.fault_model = fault_model
        self.stats = RunStats()
        self._round_index = 0

        self.protocols: Dict[Hashable, NodeProtocol] = {}
        for v in graph.nodes():
            context = NodeContext(
                node_id=v,
                neighbor_weights=dict(graph.neighbor_weights(v)),
                self_loop_weight=graph.self_loop_weight(v),
                num_nodes=graph.num_nodes,
            )
            protocol = protocol_factory(context)
            if not isinstance(protocol, NodeProtocol):
                raise SimulationError(
                    f"protocol_factory must return a NodeProtocol, got {type(protocol).__name__}")
            self.protocols[v] = protocol
        for protocol in self.protocols.values():
            protocol.setup()

    # ------------------------------------------------------------------ rounds
    @property
    def rounds_executed(self) -> int:
        """Number of completed synchronous rounds."""
        return self._round_index

    def run_round(self) -> RoundStats:
        """Execute one synchronous round and return its statistics."""
        self._round_index += 1
        round_index = self._round_index
        round_stats = RoundStats(round_index=round_index)
        if self.fault_model is not None:
            self.fault_model.begin_round(round_index)

        # Phase 1: every live node composes its message against the previous state.
        outgoing: Dict[Hashable, tuple] = {}
        for v, protocol in self.protocols.items():
            if protocol.halted:
                continue
            if self.fault_model is not None and self.fault_model.is_crashed(v):
                continue
            instruction = protocol.compose_message(round_index)
            if instruction is None:
                continue
            payload, recipients = instruction
            outgoing[v] = (payload, recipients)

        # Phase 2: deliver all messages simultaneously.
        inboxes: Dict[Hashable, Dict[Hashable, Message]] = {v: {} for v in self.protocols}
        for sender, (payload, recipients) in outgoing.items():
            if recipients is BROADCAST:
                targets = list(self.graph.neighbors(sender))
            else:
                targets = list(recipients)
                for t in targets:
                    if not self.graph.has_edge(sender, t):
                        raise SimulationError(
                            f"node {sender!r} attempted to message non-neighbour {t!r}")
            if not targets:
                continue
            size_bits = self.size_model.payload_bits(payload)
            round_stats.active_nodes += 1
            for target in targets:
                round_stats.messages_sent += 1
                round_stats.total_bits += size_bits
                round_stats.max_message_bits = max(round_stats.max_message_bits, size_bits)
                if self.congest_budget is not None:
                    self.congest_budget.observe(size_bits)
                if self.fault_model is not None and (
                        self.fault_model.is_crashed(target) or self.fault_model.drops_message()):
                    round_stats.dropped_messages += 1
                    continue
                inboxes[target][sender] = Message(sender=sender, payload=payload,
                                                  size_bits=size_bits)

        # Phase 3: every live node processes its inbox.
        for v, protocol in self.protocols.items():
            if protocol.halted:
                continue
            if self.fault_model is not None and self.fault_model.is_crashed(v):
                continue
            protocol.receive(round_index, inboxes[v])

        self.stats.add_round(round_stats)
        return round_stats

    def run(self, rounds: int) -> RunStats:
        """Execute ``rounds`` synchronous rounds (stops early if all nodes halt)."""
        if rounds < 0:
            raise SimulationError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            if all(p.halted for p in self.protocols.values()):
                break
            self.run_round()
        return self.stats

    def run_until(self, predicate: Callable[["SyncNetwork"], bool], max_rounds: int) -> RunStats:
        """Run rounds until ``predicate(self)`` is true or ``max_rounds`` is reached."""
        for _ in range(max_rounds):
            if predicate(self) or all(p.halted for p in self.protocols.values()):
                break
            self.run_round()
        return self.stats

    # ------------------------------------------------------------------ outputs
    def outputs(self) -> Dict[Hashable, Any]:
        """The current output of every node."""
        return {v: p.output() for v, p in self.protocols.items()}

    def protocol(self, node: Hashable) -> NodeProtocol:
        """The protocol instance of ``node`` (for white-box inspection in tests)."""
        try:
            return self.protocols[node]
        except KeyError as exc:
            raise SimulationError(f"unknown node {node!r}") from exc
