"""Message objects exchanged by the synchronous simulator.

The paper's model (Section II, "Distributed Model") assumes that each message
carries the identity of the sender plus a constant number of real numbers.  The
simulator keeps the payload as an arbitrary Python object but records, for each
message, an *estimated encoded size in bits* via the pluggable size model in
:mod:`repro.distsim.congest` so that CONGEST-model claims can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class Message:
    """A single point-to-point message delivered at the end of a round.

    Attributes
    ----------
    sender:
        Identity of the sending node (always included, per the paper's model).
    payload:
        Arbitrary Python object; protocols in this library send numbers, tuples of
        numbers or small tagged tuples.
    size_bits:
        Estimated encoded size of the payload under the active
        :class:`~repro.distsim.congest.MessageSizeModel` (0 when accounting is off).
    """

    sender: Hashable
    payload: Any
    size_bits: int = 0


#: Sentinel recipients value meaning "broadcast to every neighbour".
BROADCAST = None
