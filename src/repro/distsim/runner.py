"""Convenience wrappers around :class:`~repro.distsim.network.SyncNetwork`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

from repro.distsim.congest import CongestBudget, MessageSizeModel
from repro.distsim.faults import FaultModel
from repro.distsim.network import ProtocolFactory, SyncNetwork
from repro.distsim.stats import RunStats
from repro.graph.graph import Graph


@dataclass
class ProtocolRun:
    """Result of a complete protocol execution."""

    outputs: Dict[Hashable, Any]   #: final output of every node
    stats: RunStats                #: message/round statistics
    network: SyncNetwork           #: the simulator (for white-box inspection)


def run_protocol(graph: Graph, protocol_factory: ProtocolFactory, rounds: int, *,
                 size_model: Optional[MessageSizeModel] = None,
                 congest_budget: Optional[CongestBudget] = None,
                 fault_model: Optional[FaultModel] = None) -> ProtocolRun:
    """Instantiate a :class:`SyncNetwork`, run it for ``rounds`` rounds, return results.

    This is the one-stop entry point used by the high-level API in
    :mod:`repro.core.api` and by most tests.
    """
    network = SyncNetwork(graph, protocol_factory, size_model=size_model,
                          congest_budget=congest_budget, fault_model=fault_model)
    stats = network.run(rounds)
    return ProtocolRun(outputs=network.outputs(), stats=stats, network=network)
