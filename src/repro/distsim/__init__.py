"""Synchronous LOCAL/CONGEST-model message-passing simulator."""

from repro.distsim.congest import CongestBudget, MessageSizeModel
from repro.distsim.faults import FaultModel, no_faults
from repro.distsim.message import BROADCAST, Message
from repro.distsim.network import ProtocolFactory, SyncNetwork
from repro.distsim.node import NodeContext, NodeProtocol, Outgoing
from repro.distsim.runner import ProtocolRun, run_protocol
from repro.distsim.stats import RoundStats, RunStats

__all__ = [
    "CongestBudget",
    "MessageSizeModel",
    "FaultModel",
    "no_faults",
    "BROADCAST",
    "Message",
    "ProtocolFactory",
    "SyncNetwork",
    "NodeContext",
    "NodeProtocol",
    "Outgoing",
    "ProtocolRun",
    "run_protocol",
    "RoundStats",
    "RunStats",
]
