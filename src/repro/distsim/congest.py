"""Message-size accounting for CONGEST-model claims.

The paper argues (Section II and Section III-C) that its protocols fit the CONGEST
model whenever edge weights are integers polynomial in ``n``, and that for arbitrary
weights the surviving numbers can be rounded down to a geometric grid
``Λ = {(1+λ)^k}`` so that each message needs only ``log2 |Λ|`` bits.

:class:`MessageSizeModel` turns a payload into an estimated bit count.  The defaults
are conservative and deterministic:

* ``bool``                    → 1 bit
* ``int``                     → ``max(1, bit_length) + 1`` bits (sign)
* ``float`` (off-grid)        → 64 bits
* ``float`` on a known Λ grid → ``ceil(log2 |Λ|)`` bits (grid index)
* ``None``                    → 1 bit (presence flag)
* ``str``                     → 8 bits per character
* tuple/list/dict             → sum over the elements plus 2 bits of framing each

Sender identities are *not* charged (they are implied by the channel), matching the
usual convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError


@dataclass
class MessageSizeModel:
    """Estimates the number of bits needed to encode a message payload.

    Parameters
    ----------
    grid_size:
        When the protocol restricts the real numbers it sends to a finite grid Λ
        (e.g. powers of ``1 + λ`` between the minimum edge weight and the total
        weight), passing ``|Λ|`` here charges ``ceil(log2 |Λ|)`` bits per float
        instead of a full 64-bit word.
    float_bits:
        Bits charged for an arbitrary (off-grid) float.
    """

    grid_size: Optional[int] = None
    float_bits: int = 64

    def payload_bits(self, payload: Any) -> int:
        """Estimated encoded size of ``payload`` in bits."""
        if payload is None:
            return 1
        if isinstance(payload, bool):
            return 1
        if isinstance(payload, int):
            return max(1, payload.bit_length()) + 1
        if isinstance(payload, float):
            if math.isinf(payload) or math.isnan(payload):
                return 2
            if self.grid_size is not None and self.grid_size > 1:
                return max(1, math.ceil(math.log2(self.grid_size)))
            return self.float_bits
        if isinstance(payload, str):
            return 8 * max(1, len(payload))
        if isinstance(payload, (tuple, list)):
            return 2 + sum(self.payload_bits(item) for item in payload)
        if isinstance(payload, dict):
            return 2 + sum(self.payload_bits(k) + self.payload_bits(v)
                           for k, v in payload.items())
        raise SimulationError(
            f"cannot estimate the encoded size of payload type {type(payload).__name__}")


@dataclass
class CongestBudget:
    """Checks messages against a CONGEST bandwidth budget of ``c * ceil(log2 n)`` bits.

    Attributes
    ----------
    num_nodes:
        ``n`` — used to compute the per-message budget.
    words:
        The constant ``c`` (number of ``O(log n)``-bit words allowed per message).
    violations:
        Number of messages observed above the budget.
    max_observed_bits:
        Largest message observed so far.
    """

    num_nodes: int
    words: int = 4
    violations: int = 0
    max_observed_bits: int = field(default=0)

    @property
    def budget_bits(self) -> int:
        """The per-message budget in bits."""
        if self.num_nodes < 2:
            return self.words
        return self.words * max(1, math.ceil(math.log2(self.num_nodes)))

    def observe(self, size_bits: int) -> bool:
        """Record a message of ``size_bits``; returns ``True`` when within budget."""
        self.max_observed_bits = max(self.max_observed_bits, size_bits)
        within = size_bits <= self.budget_bits
        if not within:
            self.violations += 1
        return within
