"""Optional fault injection for robustness experiments.

The paper's model is synchronous and fault-free; the related work it cites (Gillet &
Hanusse 2017) studies the asynchronous faulty setting.  To let users probe how the
elimination procedure degrades under unreliable links, the simulator accepts a
:class:`FaultModel` that can drop individual messages or crash nodes at a given
round.  Faults are applied *after* a message is charged to the sender's statistics
(the sender does not know the message was lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class FaultModel:
    """Randomised message drops and scheduled node crashes.

    Parameters
    ----------
    drop_probability:
        Probability that any individual point-to-point delivery is lost.
    crash_schedule:
        Mapping ``node -> round`` after which the node stops sending and receiving.
    seed:
        Seed for the drop decisions.
    """

    drop_probability: float = 0.0
    crash_schedule: Dict[Hashable, int] = field(default_factory=dict)
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(f"drop_probability must be in [0, 1], got {self.drop_probability}")
        self._rng = ensure_rng(self.seed)
        self._crashed: Set[Hashable] = set()

    def begin_round(self, round_index: int) -> None:
        """Activate crashes scheduled at or before ``round_index``."""
        for node, crash_round in self.crash_schedule.items():
            if round_index >= crash_round:
                self._crashed.add(node)

    def is_crashed(self, node: Hashable) -> bool:
        """Whether ``node`` has crashed."""
        return node in self._crashed

    def drops_message(self) -> bool:
        """Sample whether the next delivery is dropped."""
        if self.drop_probability <= 0.0:
            return False
        return bool(self._rng.random() < self.drop_probability)

    @property
    def crashed_nodes(self) -> Set[Hashable]:
        """The set of currently crashed nodes."""
        return set(self._crashed)


#: A fault model that never interferes (used as the default).
def no_faults() -> Optional[FaultModel]:
    """Return ``None``, the simulator's fault-free default (kept for readability)."""
    return None
