"""Round- and run-level statistics collected by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class RoundStats:
    """Statistics of a single synchronous round."""

    round_index: int            #: 1-based round number
    messages_sent: int = 0      #: number of point-to-point deliveries
    total_bits: int = 0         #: sum of payload sizes (under the active size model)
    max_message_bits: int = 0   #: largest single payload
    active_nodes: int = 0       #: nodes that sent at least one message this round
    dropped_messages: int = 0   #: messages removed by the fault model


@dataclass
class RunStats:
    """Aggregated statistics over a full protocol execution."""

    rounds: List[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Number of executed rounds."""
        return len(self.rounds)

    @property
    def total_messages(self) -> int:
        """Total point-to-point deliveries over the run."""
        return sum(r.messages_sent for r in self.rounds)

    @property
    def total_bits(self) -> int:
        """Total payload bits over the run."""
        return sum(r.total_bits for r in self.rounds)

    @property
    def max_message_bits(self) -> int:
        """Largest single payload observed over the run."""
        return max((r.max_message_bits for r in self.rounds), default=0)

    @property
    def total_dropped(self) -> int:
        """Total messages dropped by the fault model."""
        return sum(r.dropped_messages for r in self.rounds)

    def add_round(self, stats: RoundStats) -> None:
        """Append the statistics of a completed round."""
        self.rounds.append(stats)

    def summary(self) -> str:
        """One-line, human-readable summary."""
        return (f"rounds={self.num_rounds} messages={self.total_messages} "
                f"bits={self.total_bits} max_msg_bits={self.max_message_bits}")
