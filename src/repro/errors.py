"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers can
catch library failures without catching unrelated built-ins.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised on invalid graph construction or queries (unknown node, bad weight...)."""


class ProtocolError(ReproError):
    """Raised when a distributed protocol is driven incorrectly.

    Examples: reading a protocol output before the required number of rounds has
    been executed, or sending a message to a node that is not a neighbour.
    """


class SimulationError(ReproError):
    """Raised by the synchronous network simulator on inconsistent configuration."""


class AlgorithmError(ReproError):
    """Raised when an algorithm receives parameters outside its domain.

    Examples: a non-positive approximation parameter ``epsilon``, a round budget
    ``T < 1`` or an empty graph where a non-empty one is required.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative baseline (e.g. Frank-Wolfe) fails to converge."""
