"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers can
catch library failures without catching unrelated built-ins.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised on invalid graph construction or queries (unknown node, bad weight...)."""


class ProtocolError(ReproError):
    """Raised when a distributed protocol is driven incorrectly.

    Examples: reading a protocol output before the required number of rounds has
    been executed, or sending a message to a node that is not a neighbour.
    """


class SimulationError(ReproError):
    """Raised by the synchronous network simulator on inconsistent configuration."""


class AlgorithmError(ReproError):
    """Raised when an algorithm receives parameters outside its domain.

    Examples: a non-positive approximation parameter ``epsilon``, a round budget
    ``T < 1`` or an empty graph where a non-empty one is required.
    """


class InvalidLambdaError(AlgorithmError, ValueError):
    """Raised when a non-finite λ reaches an entry point.

    Deliberately *both* an :class:`AlgorithmError` (so library-wide handlers —
    the CLI in particular — treat it like any other domain error) and a
    ``ValueError`` (the natural builtin for a value outside the domain, which
    callers outside the library can catch without importing this module).
    """


class ConvergenceError(ReproError):
    """Raised when an iterative baseline (e.g. Frank-Wolfe) fails to converge."""


class StoreError(ReproError):
    """Raised by the persistent artifact store on invalid operations.

    Examples: a store root that exists but is not a directory, a malformed
    fingerprint, or arrays that do not describe a trajectory.  Corrupted or
    foreign *files* never raise — they read as cache misses.
    """


class ServeError(ReproError):
    """Raised by the async serving layer when it is driven incorrectly.

    Examples: submitting to a closed :class:`~repro.serve.JobQueue` /
    :class:`~repro.serve.AsyncSession`, or invalid worker/backpressure bounds.
    """
