"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers can
catch library failures without catching unrelated built-ins.

Wire protocol
-------------
Every exception class carries a stable string :attr:`~ReproError.code` and
serialises with :meth:`~ReproError.to_dict` to ``{"code", "message"}`` — the
one error shape shared by the CLI (``error [code]: message`` on stderr) and
the HTTP front-end (:mod:`repro.serve.http`, JSON error bodies).  Codes are
part of the public wire contract: they are unique per class, never reused for
a different meaning, and :func:`error_from_dict` resolves a received payload
back to the matching class (unknown codes degrade to :class:`ReproError`, so
a newer server never crashes an older client).
"""

from __future__ import annotations

from typing import Dict, Mapping, Type


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""

    #: Stable wire identifier of this error class (unique per class; part of
    #: the serialisation contract shared by the CLI and the HTTP front-end).
    code: str = "error"

    def to_dict(self) -> dict:
        """The wire form of this error: ``{"code": ..., "message": ...}``."""
        return {"code": self.code, "message": str(self)}


class GraphError(ReproError):
    """Raised on invalid graph construction or queries (unknown node, bad weight...)."""

    code = "graph"


class ProtocolError(ReproError):
    """Raised when a distributed protocol is driven incorrectly.

    Examples: reading a protocol output before the required number of rounds has
    been executed, or sending a message to a node that is not a neighbour.
    """

    code = "protocol"


class SimulationError(ReproError):
    """Raised by the synchronous network simulator on inconsistent configuration."""

    code = "simulation"


class AlgorithmError(ReproError):
    """Raised when an algorithm receives parameters outside its domain.

    Examples: a non-positive approximation parameter ``epsilon``, a round budget
    ``T < 1`` or an empty graph where a non-empty one is required.
    """

    code = "algorithm"


class InvalidLambdaError(AlgorithmError, ValueError):
    """Raised when a non-finite λ reaches an entry point.

    Deliberately *both* an :class:`AlgorithmError` (so library-wide handlers —
    the CLI in particular — treat it like any other domain error) and a
    ``ValueError`` (the natural builtin for a value outside the domain, which
    callers outside the library can catch without importing this module).
    """

    code = "invalid-lambda"


class ConvergenceError(ReproError):
    """Raised when an iterative baseline (e.g. Frank-Wolfe) fails to converge."""

    code = "convergence"


class StoreError(ReproError):
    """Raised by the persistent artifact store on invalid operations.

    Examples: a store root that exists but is not a directory, a malformed
    fingerprint, or arrays that do not describe a trajectory.  Corrupted or
    foreign *files* never raise — they read as cache misses.
    """

    code = "store"


class ServeError(ReproError):
    """Raised by the async serving layer when it is driven incorrectly.

    Examples: submitting to a closed :class:`~repro.serve.JobQueue` /
    :class:`~repro.serve.AsyncSession`, or invalid worker/backpressure bounds.
    """

    code = "serve"


class QueueFullError(ServeError):
    """Raised by a non-blocking submission when ``max_pending`` jobs are in flight.

    The blocking submission path never raises this — it waits for capacity.
    The HTTP front-end maps it to ``429 Too Many Requests`` (backpressure is a
    client-visible condition, not a server fault).
    """

    code = "queue-full"


class QuotaExceededError(ServeError):
    """Raised when a tenant's token-bucket request quota is exhausted.

    Carries :attr:`retry_after` (seconds until one token refills) so transports
    can tell the client when to come back (the HTTP ``Retry-After`` header).
    """

    code = "quota-exceeded"

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)

    def to_dict(self) -> dict:
        return {**super().to_dict(), "retry_after": self.retry_after}


class UnknownResourceError(ServeError):
    """Raised when a request names a resource the server does not hold.

    Examples: a job id that was never issued, or a graph fingerprint that no
    upload registered.  The HTTP front-end maps it to ``404 Not Found``.
    """

    code = "unknown-resource"


class WireFormatError(ServeError):
    """Raised on a malformed wire request (bad JSON, wrong shape, bad field).

    The HTTP front-end maps it to ``400 Bad Request``; it never corresponds to
    a server-side fault.
    """

    code = "bad-request"


def _wire_classes() -> Dict[str, Type[ReproError]]:
    """``code -> class`` for every :class:`ReproError` subclass (plus the base).

    Walked from the live class tree so a subclass added later (including by
    downstream code that subclasses :class:`ReproError` with its own ``code``)
    is resolvable without touching a registry by hand.
    """
    by_code: Dict[str, Type[ReproError]] = {ReproError.code: ReproError}
    pending = [ReproError]
    while pending:
        for sub in pending.pop().__subclasses__():
            # First registration wins on a duplicated code: the tree is walked
            # parents-first, so the most general class keeps the claim.
            by_code.setdefault(sub.code, sub)
            pending.append(sub)
    return by_code


def error_from_dict(payload: Mapping) -> ReproError:
    """Rebuild the :class:`ReproError` a ``to_dict()`` payload describes.

    The inverse of :meth:`ReproError.to_dict`: the returned exception is an
    instance of the class whose ``code`` matches (an unknown code degrades to
    the base :class:`ReproError` — a newer peer must not crash an older one),
    carrying the transported message.  Raises :class:`WireFormatError` when
    the payload is not an error document at all.
    """
    if not isinstance(payload, Mapping) or "code" not in payload:
        raise WireFormatError(f"not an error payload: {payload!r}")
    cls = _wire_classes().get(str(payload["code"]), ReproError)
    message = str(payload.get("message", ""))
    if cls is QuotaExceededError:
        try:
            retry_after = float(payload.get("retry_after", 0.0))
        except (TypeError, ValueError):
            retry_after = 0.0
        return cls(message, retry_after=retry_after)
    return cls(message)
