"""The problem registry — the paper's three theorems behind one protocol.

The engine registry (:mod:`repro.engine.base`) abstracts *how* the compact
elimination procedure executes; this module abstracts *what* is being asked of
it.  A :class:`Problem` turns a parametrised request against a
:class:`~repro.session.Session` (which owns the per-graph artifacts and caches)
into a self-describing result object:

==============  ==========================================================
name            result
==============  ==========================================================
``coreness``    :class:`~repro.core.api.CorenessResult` (Theorem I.1)
``orientation`` :class:`~repro.core.api.OrientationResult` (Theorem I.2)
``densest``     :class:`~repro.core.densest.WeakDensestResult` (Theorem I.3)
==============  ==========================================================

All problems share a uniform request/result protocol:

* requests are keyword-only: exactly one of ``epsilon`` / ``gamma`` / ``rounds``
  (the paper's parametrisation, resolved by
  :func:`repro.core.rounds.resolve_round_budget`) plus problem-specific options;
* every result carries a ``surviving`` attribute (the Phase-1
  :class:`~repro.core.surviving.SurvivingNumbers`), a scalar
  :meth:`Problem.objective`, and a ``to_dict()`` JSON serialization.

Problems are resolved by name through :func:`get_problem`; third-party problems
hook in with :func:`register_problem` — the same extension-point shape as
:func:`repro.engine.register_engine`.
"""

from __future__ import annotations

import inspect
import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.core.densest import weak_densest_subsets
from repro.core.orientation import orientation_from_kept
from repro.errors import AlgorithmError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import Session


class Problem(ABC):
    """One of the paper's problems, solvable against a :class:`Session`."""

    #: canonical registry name of the problem
    name: str = "abstract"

    #: :class:`~repro.engine.batch.BatchJob` fields (beyond the round budget)
    #: this problem consumes; the batch runner rejects jobs that set any other
    #: field to a non-default value instead of silently dropping it.
    batch_params: Tuple[str, ...] = ()

    #: Values the problem forces for fields it does not consume; a job setting
    #: a field to its forced value is accepted (the request is implied, not
    #: contradicted) — e.g. ``track_kept=True`` on an orientation job.
    forced_params: Dict[str, object] = {}

    #: Engine name the problem always executes on, overriding the session's
    #: engine (None: the session's engine runs the rounds).  Purely
    #: informational — used by batch stats so they report the engine that
    #: actually ran.
    forced_engine: Optional[str] = None

    @abstractmethod
    def solve(self, session: "Session", **params):
        """Solve one request against ``session`` and return the result object."""

    @abstractmethod
    def objective(self, result) -> float:
        """The scalar summary of ``result`` (batch tables, benchmarks, JSON)."""

    def rounds_executed(self, result) -> int:
        """Synchronous rounds the solved request actually executed.

        Defaults to the Phase-1 budget ``T``; problems that run additional
        phases override this so batch stats report honest round counts.
        """
        return result.surviving.rounds

    #: per-Problem-class cache of the non-None defaults of its solve signature.
    _SOLVE_DEFAULTS: Dict[type, Dict[str, object]] = {}

    def request_key(self, params: Mapping[str, object], *,
                    lineage: Optional[str] = None) -> Optional[tuple]:
        """Canonical hashable identity of one parametrised request.

        Params spelled at their default — ``None`` padding from convenience
        wrappers (``epsilon=None``, ``lam=None``, ...) or an explicit
        signature default (``tie_break="history"``) — are dropped, so every
        equivalent spelling of a request maps to the same key.  A finite
        ``lam`` is canonicalised (``-0.0`` → ``0.0``) so the key always
        carries the spelling the caches and the artifact store use.  This is
        the deduplication key shared by :meth:`repro.session.Session.solve`
        and the in-flight dedup of :mod:`repro.serve`; ``None`` (for
        unhashable parameter values) means the request cannot be
        deduplicated.

        ``lineage`` is the graph-version dimension: a delta-derived session
        passes its chain fingerprint so requests against different versions
        of "the same" graph never deduplicate into each other, while root
        sessions (``lineage=None``) keep their historical keys.
        """
        lam = params.get("lam")
        if isinstance(lam, (int, float)) and math.isfinite(lam):
            params = {**params, "lam": float(lam) + 0.0}
        defaults = Problem._SOLVE_DEFAULTS.get(type(self))
        if defaults is None:
            defaults = {name: p.default
                        for name, p in inspect.signature(self.solve).parameters.items()
                        if p.default is not inspect.Parameter.empty
                        and p.default is not None}
            Problem._SOLVE_DEFAULTS[type(self)] = defaults
        try:
            base = (self.name, frozenset(
                (k, v) for k, v in params.items()
                if v is not None and (k not in defaults or v != defaults[k])))
        except TypeError:  # unhashable parameter value: no deduplication
            return None
        return base if lineage is None else base + (lineage,)

    def describe(self) -> str:
        """One-line human-readable description (used by the CLI)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


#: Something :func:`get_problem` accepts: a name string or a Problem instance.
ProblemLike = Union[str, Problem]

ProblemFactory = Callable[[], Problem]

_FACTORIES: Dict[str, ProblemFactory] = {}
_ALIASES: Dict[str, str] = {}


def register_problem(name: str, factory: ProblemFactory, *,
                     aliases: Tuple[str, ...] = ()) -> None:
    """Register a problem factory under ``name`` (plus optional aliases).

    ``factory()`` must return a :class:`Problem`.  Re-registering a name
    replaces the previous factory, which lets tests and downstream code shadow
    a builtin.
    """
    canonical = name.strip().lower()
    if not canonical:
        raise AlgorithmError("problem name must be non-empty")
    _FACTORIES[canonical] = factory
    for alias in aliases:
        _ALIASES[alias.strip().lower()] = canonical


def available_problems() -> Tuple[str, ...]:
    """The canonical names of all registered problems, sorted."""
    return tuple(sorted(_FACTORIES))


def get_problem(problem: ProblemLike) -> Problem:
    """Resolve ``problem`` to a :class:`Problem` instance.

    ``problem`` may be a :class:`Problem` instance (returned as-is) or a
    registered name/alias (case-insensitive).

    Raises
    ------
    AlgorithmError
        For unknown problem names.
    """
    if isinstance(problem, Problem):
        return problem
    if not isinstance(problem, str):
        raise AlgorithmError(
            f"problem must be a name string or a Problem instance, got {problem!r}")
    name = problem.strip().lower()
    canonical = _ALIASES.get(name, name)
    factory = _FACTORIES.get(canonical)
    if factory is None:
        raise AlgorithmError(
            f"unknown problem {problem!r}; expected one of "
            f"{', '.join(available_problems())} "
            f"(aliases: {', '.join(sorted(_ALIASES))})")
    return factory()


# ----------------------------------------------------------------- builtins

class CorenessProblem(Problem):
    """Theorem I.1 — per-node approximate coreness / maximal density."""

    name = "coreness"
    batch_params = ("lam", "tie_break", "track_kept")

    def solve(self, session: "Session", *, epsilon: Optional[float] = None,
              gamma: Optional[float] = None, rounds: Optional[int] = None,
              lam: Optional[float] = None, tie_break: str = "history",
              track_kept: bool = False):
        from repro.core.api import CorenessResult

        surv = session.surviving(epsilon=epsilon, gamma=gamma, rounds=rounds,
                                 lam=lam, tie_break=tie_break,
                                 track_kept=track_kept)
        return CorenessResult(values=dict(surv.values), rounds=surv.rounds,
                              guarantee=surv.guarantee, lam=surv.grid.lam,
                              surviving=surv)

    def objective(self, result) -> float:
        return result.max_value

    def describe(self) -> str:
        return "coreness (Theorem I.1: per-node approximate coreness / maximal density)"


class OrientationProblem(Problem):
    """Theorem I.2 — approximate min-max edge orientation."""

    name = "orientation"
    batch_params = ("tie_break",)
    forced_params = {"track_kept": True, "lam": 0.0}

    def solve(self, session: "Session", *, epsilon: Optional[float] = None,
              gamma: Optional[float] = None, rounds: Optional[int] = None,
              tie_break: str = "history"):
        from repro.core.api import OrientationResult

        # Lemma III.11 requires Λ = R for the orientation invariants, so the
        # session's default λ is deliberately overridden with 0.
        surv = session.surviving(epsilon=epsilon, gamma=gamma, rounds=rounds,
                                 lam=0.0, tie_break=tie_break, track_kept=True)
        orientation = orientation_from_kept(session.graph, surv.kept,
                                            values=surv.values)
        return OrientationResult(orientation=orientation, values=dict(surv.values),
                                 rounds=surv.rounds, guarantee=surv.guarantee,
                                 surviving=surv)

    def objective(self, result) -> float:
        return result.max_in_weight

    def describe(self) -> str:
        return "orientation (Theorem I.2: approximate min-max edge orientation)"


class DensestProblem(Problem):
    """Theorem I.3 — the weak densest subset collection.

    By default the 4-phase pipeline runs end-to-end on the faithful simulator
    (its round and message accounting is part of the result), so it does not
    consume the session's CSR view or engine; the session still deduplicates
    repeated identical requests through its problem-result cache.  With
    ``message_accounting=False`` Phase 1 is served from the session's cached
    λ=0 elimination trajectory instead of re-simulating it; the result's
    ``messages_total`` then covers phases 2-4 only.

    With ``engine="array"`` the whole pipeline runs at array speed: phases 2-4
    on the CSR kernels of :mod:`repro.engine.densest_kernels` over the
    session's cached CSR view, and Phase 1 from the session's cached λ=0
    trajectory whenever the session engine produces trajectories (the faithful
    session engine cannot, so Phase 1 then runs on a one-off vectorised pass).
    Message accounting does not exist on this path — ``messages_total`` is 0
    and ``rounds_per_phase`` reports nominal budgets.

    For integer/dyadic edge weights every engine combination reports
    bit-identical subsets; for arbitrary float weights they may differ in the
    last ulp (the usual caveat of :mod:`repro.engine.kernels`), which can tip
    a threshold comparison.
    """

    name = "densest"
    batch_params = ()
    forced_engine = "faithful"

    def solve(self, session: "Session", *, epsilon: Optional[float] = None,
              gamma: Optional[float] = None, rounds: Optional[int] = None,
              acceptance_factor: Optional[float] = None,
              message_accounting: bool = True,
              engine: Optional[str] = None):
        from repro.core.densest import ARRAY_DENSEST_ENGINES

        use_array = engine is not None and engine in ARRAY_DENSEST_ENGINES
        phase1 = None
        if (use_array or not message_accounting) and session.supports_trajectories:
            from repro.core.rounds import resolve_round_budget

            T = resolve_round_budget(session.graph.num_nodes, epsilon, gamma, rounds)
            phase1 = session.surviving(rounds=T, lam=0.0, track_kept=False)
            epsilon = gamma = None
            rounds = T  # same resolver as the pipeline: budgets cannot drift
        return weak_densest_subsets(session.graph, epsilon=epsilon, gamma=gamma,
                                    rounds=rounds,
                                    acceptance_factor=acceptance_factor,
                                    phase1=phase1, engine=engine,
                                    csr=session.csr if use_array else None)

    def objective(self, result) -> float:
        return result.best_density

    def rounds_executed(self, result) -> int:
        # All 4 phases count: the wall-clock in the batch stats covers them.
        return result.rounds_total

    def describe(self) -> str:
        return "densest (Theorem I.3: weak densest subset collection)"


register_problem("coreness", CorenessProblem, aliases=("kcore", "core"))
register_problem("orientation", OrientationProblem, aliases=("orient", "minmax"))
register_problem("densest", DensestProblem, aliases=("densest-subsets", "dss"))
