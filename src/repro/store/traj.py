"""Append-only out-of-core elimination trajectories (``.traj`` artifacts).

The elimination trajectory — the ``(T+1) × n`` float64 array at the heart of
Algorithm 2 — is the single largest allocation at scale, dwarfing the CSR
arrays that :mod:`repro.graph.mmap_csr` already spills.  This module stores a
trajectory as an *append-only* on-disk buffer so the round loop keeps only a
sliding window of rows resident, and so prefix-resume, ``Session`` restart and
the artifact store all read the same file instead of round-tripping a
monolithic ``.npz``::

    <root>/
      <fingerprint>/                       # the store's content address
        trajectory-lam<λ>.traj/
          header.json                      # schema, fingerprint, λ, n, dtype,
                                           # rounds (= published rows - 1)
          rows.bin                         # raw little-endian float64 rows;
                                           # row t at byte offset t * n * 8

Row 0 is the all-``+inf`` initial state, stored explicitly; row ``t`` holds
every node's surviving number after ``t`` synchronous rounds — exactly the
in-memory layout, so a read-only ``np.memmap`` over the published prefix is a
drop-in trajectory array.

Append protocol (the crash-safety contract):

* a writer appends the new row(s) *first*, flushes, and only then publishes
  the new round count with an atomic ``header.json`` replace — so a reader
  never observes a round the file does not fully hold;
* readers clamp to ``min(header.rounds, file_rows - 1)``: a torn tail (a
  crash mid-append, an interrupted truncate, a pre-sized-but-unwritten region
  left by a killed process run) costs at most the unpublished rounds, never a
  wrong or unreadable prefix;
* a crash between the row write and the header replace therefore loses at
  most the last un-published round.  (The protocol is crash-consistent
  against process crashes — the OS page cache holds flushed data; power-loss
  durability is best-effort, with an ``fsync`` on writer close.)

Because every round is a deterministic function of the previous row,
concurrent appenders of the same ``(fingerprint, λ)`` write identical bytes
to identical offsets and the last header wins — the same benign-race argument
the ``.npz`` artifacts rely on.  A header that names a foreign fingerprint,
schema or dtype reads as absent (and a fresh writer starts over): corruption
can cost a recompute, never a wrong answer.

The default (and currently only) dtype is float64 — bit-identity with the
in-memory engines is the contract.  A narrow ``float32`` flavour would be a
distinct, non-default artifact (the ``dtype`` header field is the hook); see
ROADMAP.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.errors import StoreError
from repro.graph.mmap_csr import is_fingerprint
from repro.obs import trace as obs_trace
from repro.utils.numeric import canonical_lam

#: Suffix of the per-(graph, λ) trajectory directory.
TRAJ_SUFFIX = ".traj"

#: Schema stamp embedded in (and required of) every ``header.json``.
TRAJ_SCHEMA_VERSION = "repro-traj/1"

#: The two files inside a ``.traj`` directory.
HEADER_NAME = "header.json"
ROWS_NAME = "rows.bin"

#: Canonical little-endian dtype of the stored rows (the bit-identity contract).
TRAJ_DTYPE = "<f8"

#: Bytes of fixed-point rows materialised at a time by :meth:`AppendTrajectory.fill_to`.
_FILL_CHUNK_BYTES = 8 << 20


def format_lam(lam: float) -> str:
    """Exact, filename-safe spelling of a λ (``repr`` of the canonical float)."""
    return repr(canonical_lam(lam))


def traj_dir(root, fingerprint: str, lam: float) -> Path:
    """The ``.traj`` directory of ``(fingerprint, λ)`` under ``root``."""
    if not is_fingerprint(fingerprint):
        raise StoreError(f"not a 64-char hex fingerprint: {fingerprint!r}")
    return Path(root) / fingerprint / f"trajectory-lam{format_lam(lam)}{TRAJ_SUFFIX}"


def rows_path(root, fingerprint: str, lam: float) -> Path:
    """The ``rows.bin`` file of ``(fingerprint, λ)`` under ``root``."""
    return traj_dir(root, fingerprint, lam) / ROWS_NAME


def is_traj_dir(path) -> bool:
    """Whether ``path`` names a per-(graph, λ) trajectory directory."""
    name = Path(path).name
    return name.startswith("trajectory-lam") and name.endswith(TRAJ_SUFFIX)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    try:
        tmp.write_bytes(payload)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _read_header(directory: Path) -> dict:
    """The parsed ``header.json`` of a ``.traj`` directory ({} when absent/corrupt)."""
    try:
        header = json.loads((directory / HEADER_NAME).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return header if isinstance(header, dict) else {}


def _header_matches(header: dict, fingerprint: str, lam: float) -> bool:
    """Whether ``header`` describes *this* ``(fingerprint, λ)`` artifact."""
    return (header.get("schema") == TRAJ_SCHEMA_VERSION
            and header.get("fingerprint") == fingerprint
            and header.get("lam") == canonical_lam(lam)
            and header.get("dtype") == TRAJ_DTYPE
            and isinstance(header.get("n"), int) and header["n"] >= 1
            and isinstance(header.get("rounds"), int))


def _clamped_rounds(directory: Path, header: dict) -> int:
    """Published rounds clamped to what ``rows.bin`` actually holds (-1: none).

    The torn-write recovery rule: the header is the publication record, but a
    crashed or interrupted writer may leave the file shorter than the header
    claims — readers trust whichever is *smaller*, so any prefix they serve
    is fully on disk.
    """
    n = header["n"]
    try:
        size = (directory / ROWS_NAME).stat().st_size
    except OSError:
        return -1
    return min(int(header["rounds"]), size // (n * 8) - 1)


def published_rounds(root, fingerprint: str, lam: float) -> Optional[int]:
    """Round count of the published on-disk trajectory, or None when absent."""
    directory = traj_dir(root, fingerprint, lam)
    header = _read_header(directory)
    if not _header_matches(header, fingerprint, lam):
        return None
    rounds = _clamped_rounds(directory, header)
    return rounds if rounds >= 0 else None


def open_trajectory(root, fingerprint: str, lam: float) -> Optional[np.ndarray]:
    """Read-only ``(rounds+1, n)`` view of the published prefix, or None.

    Absent, corrupted, foreign-fingerprint and fully-torn files all read as
    None (a miss); a partially-torn file reads as its clamped prefix.
    """
    directory = traj_dir(root, fingerprint, lam)
    header = _read_header(directory)
    if not _header_matches(header, fingerprint, lam):
        return None
    rounds = _clamped_rounds(directory, header)
    if rounds < 0:
        return None
    try:
        return np.memmap(directory / ROWS_NAME, dtype=np.float64, mode="r",
                         shape=(rounds + 1, int(header["n"])))
    except (OSError, ValueError):
        return None


class AppendTrajectory:
    """Writer/reader handle over one ``(fingerprint, λ)`` append-trajectory.

    Opens (or creates) the ``.traj`` directory and resumes from whatever
    prefix is already published — the on-disk rows *are* the warm start, so a
    fresh engine instance pointed at the same directory continues where a
    crashed or completed run left off.  All writes go through the append
    protocol described in the module docstring.

    The handle owns one ``rows.bin`` file object; :meth:`close` releases it
    (with a best-effort ``fsync``).  Arrays returned by :meth:`as_array` map
    the file independently and stay valid after close.
    """

    def __init__(self, directory, *, fingerprint: str, lam: float,
                 num_nodes: int) -> None:
        if num_nodes < 1:
            raise StoreError(f"an append-trajectory needs n >= 1, got {num_nodes}")
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.lam = canonical_lam(lam)
        self.num_nodes = int(num_nodes)
        self._rowbytes = self.num_nodes * 8
        self.directory.mkdir(parents=True, exist_ok=True)
        header = _read_header(self.directory)
        if _header_matches(header, fingerprint, self.lam) \
                and header.get("n") == self.num_nodes:
            #: rounds published so far (-1: no rows yet), torn tails clamped.
            self.rounds = _clamped_rounds(self.directory, header)
        else:
            # Foreign, corrupt or absent: start over (costs a recompute,
            # never a wrong answer — the mmap_csr revalidation contract).
            (self.directory / ROWS_NAME).unlink(missing_ok=True)
            (self.directory / HEADER_NAME).unlink(missing_ok=True)
            self.rounds = -1
        path = self.directory / ROWS_NAME
        self._file = open(path, "r+b" if path.exists() else "w+b")
        self._closed = False

    @classmethod
    def open(cls, root, fingerprint: str, lam: float, *,
             num_nodes: int) -> "AppendTrajectory":
        """Open-or-create the appender for ``(fingerprint, λ)`` under ``root``."""
        return cls(traj_dir(root, fingerprint, lam), fingerprint=fingerprint,
                   lam=lam, num_nodes=num_nodes)

    # ------------------------------------------------------------------ reading
    def row(self, t: int) -> np.ndarray:
        """One published row as a fresh (writable) float64 array."""
        if t < 0 or t > self.rounds:
            raise StoreError(f"row {t} is not published (have {self.rounds} rounds)")
        self._file.flush()
        self._file.seek(t * self._rowbytes)
        data = self._file.read(self._rowbytes)
        if len(data) != self._rowbytes:
            raise StoreError(f"published row {t} is truncated on disk")
        return np.frombuffer(data, dtype=np.float64).copy()

    def as_array(self, rounds: Optional[int] = None) -> np.ndarray:
        """Read-only ``(T+1, n)`` memmap of the published prefix.

        ``rounds`` caps the view (a file holding more rounds than requested is
        served by slicing, exactly like an over-long in-memory prefix).  The
        returned array is an independent mapping: it stays valid after
        :meth:`close`.
        """
        r = self.rounds if rounds is None else min(int(rounds), self.rounds)
        if r < 0:
            raise StoreError("no published rows to map")
        self._file.flush()
        return np.memmap(self.directory / ROWS_NAME, dtype=np.float64, mode="r",
                         shape=(r + 1, self.num_nodes))

    # ------------------------------------------------------------------ writing
    def _write_rows(self, first_row: int, block: np.ndarray) -> None:
        block = np.ascontiguousarray(block, dtype=np.float64)
        self._file.seek(first_row * self._rowbytes)
        self._file.write(block.tobytes())

    def publish(self, rounds: int) -> None:
        """Atomically publish ``rounds`` as the completed round count.

        Rows through ``rounds`` must already be on disk (written by this
        handle, or — in the process-parallel mode — by workers mapping
        :meth:`rows_spec` slices).  The rows are flushed *before* the header
        replace, so a reader that sees the new header can read every row it
        advertises.
        """
        # publish() runs once per round on the spilled hot path, so the span
        # is explicitly gated: disabled tracing pays one None-check.
        tracer = obs_trace.active()
        if tracer is not None:
            publish_unix = time.time()
            publish_perf = time.perf_counter()
        self._file.flush()
        header = {"schema": TRAJ_SCHEMA_VERSION, "fingerprint": self.fingerprint,
                  "lam": self.lam, "n": self.num_nodes, "dtype": TRAJ_DTYPE,
                  "rounds": int(rounds)}
        _atomic_write_bytes(self.directory / HEADER_NAME,
                            (json.dumps(header, indent=2) + "\n").encode("utf-8"))
        self.rounds = int(rounds)
        if tracer is not None:
            tracer.record_span(
                "traj.publish", start_unix=publish_unix,
                duration=time.perf_counter() - publish_perf,
                parent=obs_trace.current_context(),
                attrs={"rounds": int(rounds), "n": self.num_nodes})

    def append_row(self, values: np.ndarray) -> None:
        """Append one completed round and publish it."""
        if values.shape != (self.num_nodes,):
            raise StoreError(f"row of shape {values.shape} does not fit an "
                             f"n={self.num_nodes} trajectory")
        self._write_rows(self.rounds + 1, values.reshape(1, -1))
        self.publish(self.rounds + 1)

    def ensure_prefix(self, prefix: Optional[np.ndarray] = None) -> int:
        """Sync the file with an optional in-memory prefix; returns the rounds.

        With no prefix (or one no longer than the file) this only seeds row 0
        (the all-``+inf`` initial state) when the file is empty — the on-disk
        rows already *are* the resume point.  A longer prefix has its missing
        rows appended verbatim (bit-identical by round determinism).  The
        return value is the published round count the round loop resumes
        after, i.e. the ``start`` of :func:`repro.engine.kernels.init_trajectory`.
        """
        if prefix is not None and prefix.shape[1:] != (self.num_nodes,):
            raise StoreError(f"prefix of shape {prefix.shape} does not fit an "
                             f"n={self.num_nodes} trajectory")
        target = -1 if prefix is None else prefix.shape[0] - 1
        if self.rounds < 0 and target < 0:
            self._write_rows(0, np.full((1, self.num_nodes), np.inf))
            self.publish(0)
        elif target > self.rounds:
            lo = self.rounds + 1
            self._write_rows(lo, prefix[lo:target + 1])
            self.publish(target)
        return self.rounds

    def fill_to(self, rounds: int, values: np.ndarray) -> None:
        """Repeat the fixed-point row through ``rounds`` (early-stop parity).

        The in-memory round loop materialises ``trajectory[t:] = new`` when a
        fixed point is reached; this is the same operation, written in bounded
        chunks so no ``(T+1) × n`` allocation sneaks back in.
        """
        if rounds <= self.rounds:
            return
        row = np.ascontiguousarray(values, dtype=np.float64).reshape(1, -1)
        chunk = max(1, _FILL_CHUNK_BYTES // self._rowbytes)
        lo = self.rounds + 1
        while lo <= rounds:
            k = min(chunk, rounds - lo + 1)
            self._write_rows(lo, np.broadcast_to(row, (k, self.num_nodes)))
            lo += k
        self.publish(rounds)

    # ------------------------------------------------------- process-pool hooks
    def presize(self, rounds: int) -> None:
        """Grow ``rows.bin`` to hold ``rounds + 1`` rows (unpublished tail).

        The process-parallel mode pre-sizes the file so every worker can map
        the full ``(rounds+1, n)`` region and write its shard's row-slices in
        place.  The tail stays *unpublished* until the parent's per-round
        :meth:`publish`, so a crash mid-run leaves the previous header (and
        its fully-written prefix) in charge.
        """
        need = (int(rounds) + 1) * self._rowbytes
        self._file.flush()
        if os.fstat(self._file.fileno()).st_size < need:
            os.ftruncate(self._file.fileno(), need)

    def rows_spec(self, rounds: int) -> tuple:
        """``(path, rows, n)`` for workers to re-map ``rows.bin`` by path."""
        return (str(self.directory / ROWS_NAME), int(rounds) + 1, self.num_nodes)

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the file handle (best-effort ``fsync`` for durability)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError:  # pragma: no cover - best effort
            pass
        self._file.close()

    def __enter__(self) -> "AppendTrajectory":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AppendTrajectory n={self.num_nodes} rounds={self.rounds} "
                f"dir={self.directory}>")
