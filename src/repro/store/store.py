"""The content-addressed on-disk artifact store.

Layout
------
One directory per graph, addressed by its CSR content fingerprint
(:func:`repro.graph.csr.csr_fingerprint`)::

    <root>/
      <fingerprint>/                     # exactly 64 lowercase hex chars
        graph.json                       # schema, n, entries, sample labels
        trajectory-lam<λ>.npz            # longest elimination trajectory per λ
        result-T<T>-lam<λ>-<rule>-k<0|1>.npz   # full SurvivingNumbers (see below)
        csr/                             # memory-mapped CSR arrays, written by
          meta.json, *.bin               # repro.graph.mmap_csr for out-of-core runs
        trajectory-lam<λ>.traj/          # append-only out-of-core trajectory
          header.json, rows.bin          # (repro.store.traj): rounds are appended
                                         # by the engine and published with atomic
                                         # header updates; row t at offset t*n*8

The ``.traj`` directory is the spilled twin of ``trajectory-lam<λ>.npz``:
engines running with ``trajectory_storage="mmap"`` append completed rounds
directly into ``rows.bin`` and publish each one by atomically replacing
``header.json``, so a crash loses at most the un-published round — readers
always see a complete round prefix (clamped to what the file actually holds).
Loads consult both spellings and serve whichever holds more rounds, preferring
the mapped file on ties (no RAM copy); ``info``/``purge``/``evict`` account
the directory like the ``csr/`` arrays, with ``header.json`` treated as the
descriptor that is only removed when its rows are gone.

λ is spelled canonically in filenames (:func:`repro.utils.numeric.canonical_lam`:
``-0.0`` and ``0.0`` are one artifact, matching the in-memory caches that
collapse the two; non-finite λ is rejected with ``ValueError``).

Every ``.npz`` carries a JSON ``meta`` entry (schema version, artifact kind,
fingerprint, λ, round count, node count) that is validated on load; files with
a wrong schema, a mismatching fingerprint or any decoding problem are treated
as absent — a corrupted or foreign file can cost a recompute, never a wrong
answer.  Writes go to a same-directory temp file and are published with an
atomic ``os.replace``, so concurrent readers only ever observe complete
artifacts and the last writer wins.

Trajectory artifacts serve the array engines: a stored ``(T+1, n)`` float64
trajectory warm-starts any later request on the same graph and λ (a longer
budget resumes after the stored rounds, a smaller one is served by slicing).
Result artifacts serve engines that keep no trajectory (the faithful
simulator): the per-node values and kept sets are stored as arrays indexed by
integer node id — the fingerprint guarantees the caller's label order matches,
so labels themselves never need to round-trip through the file.  Human-facing
metadata (``graph.json``) serializes sample labels with the collision-free
JSON protocol of :mod:`repro.utils.serialize`.
"""

from __future__ import annotations

import io
import json
import os
import threading
import zipfile
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rounding import LambdaGrid
from repro.core.surviving import SurvivingNumbers
from repro.errors import StoreError
from repro.graph.mmap_csr import CSR_DIR_NAME, is_fingerprint
from repro.obs import trace as obs_trace
from repro.store import traj as traj_store
from repro.utils.numeric import canonical_lam
from repro.utils.serialize import json_node

#: Schema stamp embedded in (and required of) every stored artifact.
SCHEMA_VERSION = "repro-store/1"

#: Exceptions a load treats as "artifact absent" rather than a crash: anything
#: a truncated, corrupted, foreign or concurrently-replaced file can raise
#: (TypeError covers wrong-typed metadata fields, e.g. a string round count).
_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError, EOFError,
                zipfile.BadZipFile, json.JSONDecodeError)


def _format_lam(lam: float) -> str:
    """Exact, filename-safe spelling of a λ (``repr`` of the canonical float).

    Canonicalised through :func:`repro.utils.numeric.canonical_lam` so the
    filename agrees with every in-memory λ key: ``-0.0`` spells ``"0.0"``
    (dict keys collapse the two, so the disk must too) and non-finite values
    — which would mint un-reloadable artifact names — raise ``ValueError``
    at this boundary.
    """
    return repr(canonical_lam(lam))


class ArtifactStore:
    """A persistent, content-addressed store of per-graph artifacts.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).  Multiple
        processes may share a root: writes are atomic renames and loads
        tolerate mid-flight replacement.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store root {self.root} exists and is not a directory")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArtifactStore root={self.root}>"

    # ------------------------------------------------------------------ layout
    def graph_dir(self, fingerprint: str) -> Path:
        """The directory holding every artifact of ``fingerprint``.

        Requires a *complete* content address — exactly 64 lowercase hex
        characters, the output shape of
        :func:`repro.graph.csr.csr_fingerprint`.  Anything shorter (or
        case-mangled) would mint a stray directory that ``info``/``purge``
        then misreport, so it raises :class:`StoreError` instead.
        """
        if not is_fingerprint(fingerprint):
            raise StoreError(f"not a 64-char lowercase hex fingerprint: "
                             f"{fingerprint!r}")
        return self.root / fingerprint

    def _trajectory_path(self, fingerprint: str, lam: float) -> Path:
        return self.graph_dir(fingerprint) / f"trajectory-lam{_format_lam(lam)}.npz"

    def _result_path(self, fingerprint: str, *, rounds: int, lam: float,
                     tie_break: str, track_kept: bool) -> Path:
        return self.graph_dir(fingerprint) / (
            f"result-T{int(rounds)}-lam{_format_lam(lam)}-{tie_break}"
            f"-k{int(bool(track_kept))}.npz")

    # ----------------------------------------------------------------- writing
    def _atomic_write(self, path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique per process *and* thread: concurrent writers of the same
        # artifact (e.g. two store-backed sessions in one process) must never
        # share a temp file, or os.replace could publish torn bytes.
        tmp = path.with_name(
            f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def _write_npz(self, path: Path, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        buffer = io.BytesIO()
        np.savez(buffer, meta=np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8), **arrays)
        self._atomic_write(path, buffer.getvalue())

    def _write_graph_meta(self, fingerprint: str, n: int,
                          labels: Sequence[Hashable]) -> None:
        path = self.graph_dir(fingerprint) / "graph.json"
        if path.exists():
            return
        meta = {"schema": SCHEMA_VERSION, "fingerprint": fingerprint, "n": n,
                "sample_labels": [json_node(label) for label in labels[:8]]}
        self._atomic_write(path, (json.dumps(meta, indent=2) + "\n").encode("utf-8"))

    # ----------------------------------------------------------------- reading
    @staticmethod
    def _read_meta(archive: np.lib.npyio.NpzFile) -> dict:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if not isinstance(meta, dict):
            raise ValueError("meta entry is not an object")
        return meta

    def _load_npz(self, path: Path, *, kind: str, fingerprint: str,
                  lam: float) -> Optional[Tuple[dict, "np.lib.npyio.NpzFile"]]:
        """Open and validate one artifact; None for absent/corrupt/foreign files."""
        try:
            archive = np.load(path, allow_pickle=False)
        except _LOAD_ERRORS:
            return None
        try:
            meta = self._read_meta(archive)
            if (meta.get("schema") != SCHEMA_VERSION or meta.get("kind") != kind
                    or meta.get("fingerprint") != fingerprint
                    or meta.get("lam") != float(lam)):
                archive.close()
                return None
            return meta, archive
        except _LOAD_ERRORS:
            archive.close()
            return None

    # ------------------------------------------------------------ trajectories
    def save_trajectory(self, fingerprint: str, lam: float,
                        trajectory: np.ndarray,
                        labels: Sequence[Hashable] = ()) -> Path:
        """Persist the ``(T+1, n)`` trajectory for ``(fingerprint, λ)``.

        Unconditionally replaces any stored trajectory for the pair — callers
        (the :class:`~repro.session.Session` integration) only write when they
        hold more rounds than the store does.
        """
        trajectory = np.ascontiguousarray(trajectory, dtype=np.float64)
        if trajectory.ndim != 2 or trajectory.shape[0] < 1:
            raise StoreError(f"not a trajectory array: shape {trajectory.shape}")
        meta = {"schema": SCHEMA_VERSION, "kind": "trajectory",
                "fingerprint": fingerprint, "lam": canonical_lam(lam),
                "rounds": int(trajectory.shape[0] - 1), "n": int(trajectory.shape[1])}
        path = self._trajectory_path(fingerprint, lam)
        with obs_trace.span("store.save_trajectory", fingerprint=fingerprint,
                            lam=meta["lam"], rounds=meta["rounds"]):
            self._write_npz(path, meta, {"trajectory": trajectory})
            self._write_graph_meta(fingerprint, trajectory.shape[1], labels)
        return path

    def _load_npz_trajectory(self, fingerprint: str, lam: float) -> Optional[np.ndarray]:
        loaded = self._load_npz(self._trajectory_path(fingerprint, lam),
                                kind="trajectory", fingerprint=fingerprint, lam=lam)
        if loaded is None:
            return None
        meta, archive = loaded
        try:
            trajectory = archive["trajectory"]
            if (trajectory.ndim != 2 or trajectory.dtype != np.float64
                    or trajectory.shape != (meta.get("rounds", -2) + 1, meta.get("n"))):
                return None
            return trajectory
        except _LOAD_ERRORS:
            return None
        finally:
            archive.close()

    def load_trajectory(self, fingerprint: str, lam: float) -> Optional[np.ndarray]:
        """The stored trajectory for ``(fingerprint, λ)``, or None.

        Consults both spellings — the monolithic ``.npz`` and the append-only
        ``.traj`` directory — and serves whichever holds more rounds; on a tie
        the ``.traj`` file wins, as a read-only ``np.memmap`` (no RAM copy).
        Absent, corrupted, schema-mismatching and fingerprint-mismatching
        files all read as None (a miss).
        """
        with obs_trace.span("store.load_trajectory", fingerprint=fingerprint,
                            lam=canonical_lam(lam)) as sp:
            mapped = traj_store.open_trajectory(self.root, fingerprint, lam)
            npz = self._load_npz_trajectory(fingerprint, lam)
            if mapped is not None and (npz is None
                                       or mapped.shape[0] >= npz.shape[0]):
                loaded = mapped
            else:
                loaded = npz
            sp.set(hit=loaded is not None,
                   rounds=-1 if loaded is None else loaded.shape[0] - 1)
            return loaded

    def trajectory_rounds(self, fingerprint: str, lam: float) -> Optional[int]:
        """Round count of the stored trajectory without loading the arrays.

        The maximum over both spellings (``.npz`` metadata and the ``.traj``
        append header, the latter clamped to the rows actually on disk).
        """
        counts = []
        loaded = self._load_npz(self._trajectory_path(fingerprint, lam),
                                kind="trajectory", fingerprint=fingerprint, lam=lam)
        if loaded is not None:
            meta, archive = loaded
            archive.close()
            rounds = meta.get("rounds")
            if isinstance(rounds, int):
                counts.append(int(rounds))
        appended = traj_store.published_rounds(self.root, fingerprint, lam)
        if appended is not None:
            counts.append(appended)
        return max(counts) if counts else None

    # ----------------------------------------------------------------- results
    def save_result(self, fingerprint: str, result: SurvivingNumbers, *,
                    lam: float, tie_break: str, track_kept: bool,
                    labels: Sequence[Hashable]) -> Path:
        """Persist a full :class:`SurvivingNumbers` (values + kept sets).

        ``labels`` is the node-label sequence in integer-id order (the CSR
        ``node_order`` / graph insertion order); values and kept sets are
        stored as arrays indexed by those ids.  Used for engines that keep no
        trajectory — trajectory engines persist the (smaller, composable)
        trajectory instead and reassemble results from it.
        """
        index = {label: i for i, label in enumerate(labels)}
        if len(index) != len(result.values):
            raise StoreError(
                f"labels ({len(index)}) do not cover the result ({len(result.values)})")
        values = np.array([result.values[label] for label in labels], dtype=np.float64)
        kept_ids: List[int] = []
        kept_indptr = np.zeros(len(labels) + 1, dtype=np.int64)
        for i, label in enumerate(labels):
            members = result.kept.get(label, ())
            kept_ids.extend(index[member] for member in members)
            kept_indptr[i + 1] = len(kept_ids)
        meta = {"schema": SCHEMA_VERSION, "kind": "result",
                "fingerprint": fingerprint, "lam": canonical_lam(lam),
                "rounds": int(result.rounds), "n": len(labels),
                "tie_break": tie_break, "track_kept": bool(track_kept),
                "stats_summary": result.stats_summary}
        path = self._result_path(fingerprint, rounds=result.rounds, lam=lam,
                                 tie_break=tie_break, track_kept=track_kept)
        with obs_trace.span("store.save_result", fingerprint=fingerprint,
                            lam=meta["lam"], rounds=meta["rounds"]):
            self._write_npz(path, meta, {
                "values": values,
                "kept_indices": np.asarray(kept_ids, dtype=np.int64),
                "kept_indptr": kept_indptr,
            })
            self._write_graph_meta(fingerprint, len(labels), labels)
        return path

    def load_result(self, fingerprint: str, *, rounds: int, lam: float,
                    tie_break: str, track_kept: bool,
                    labels: Sequence[Hashable],
                    grid: LambdaGrid) -> Optional[SurvivingNumbers]:
        """Rebuild a stored :class:`SurvivingNumbers`, or None on any mismatch.

        ``labels`` and ``grid`` come from the caller's live graph — the
        fingerprint guarantees they match what was stored, so the file only
        carries arrays.  The reloaded result is value- and kept-identical to
        the stored one; the simulator's per-round ``message_stats`` are not
        persisted (``stats_summary`` is).
        """
        path = self._result_path(fingerprint, rounds=rounds, lam=lam,
                                 tie_break=tie_break, track_kept=track_kept)
        with obs_trace.span("store.load_result", fingerprint=fingerprint,
                            lam=canonical_lam(lam), rounds=rounds):
            loaded = self._load_npz(path, kind="result",
                                    fingerprint=fingerprint, lam=lam)
        if loaded is None:
            return None
        meta, archive = loaded
        try:
            if (meta.get("rounds") != int(rounds) or meta.get("n") != len(labels)
                    or meta.get("tie_break") != tie_break
                    or meta.get("track_kept") != bool(track_kept)):
                return None
            values_array = archive["values"]
            kept_indices = archive["kept_indices"]
            kept_indptr = archive["kept_indptr"]
            n = len(labels)
            if (values_array.shape != (n,) or kept_indptr.shape != (n + 1,)
                    or kept_indptr[-1] != kept_indices.shape[0]
                    or (kept_indices.size and not (
                        0 <= kept_indices.min() and kept_indices.max() < n))):
                return None
            values = {label: float(values_array[i]) for i, label in enumerate(labels)}
            kept = {label: tuple(labels[j] for j in
                                 kept_indices[kept_indptr[i]:kept_indptr[i + 1]])
                    for i, label in enumerate(labels)}
            return SurvivingNumbers(values=values, kept=kept, rounds=int(rounds),
                                    grid=grid, num_nodes=n,
                                    stats_summary=str(meta.get("stats_summary", "")))
        except _LOAD_ERRORS:
            return None
        finally:
            archive.close()

    # ----------------------------------------------------------------- lineage
    def lineage_path(self, chain_fingerprint: str) -> Path:
        """The ``lineage.json`` descriptor of a chained (delta-derived) version.

        Lives in the version's *chain*-fingerprint directory — a 64-hex
        address like any content fingerprint, so the same layout, hygiene
        and management machinery apply.
        """
        return self.graph_dir(chain_fingerprint) / "lineage.json"

    def record_lineage(self, chain_fingerprint: str, parent_fingerprint: str,
                       delta, *, content_fingerprint: Optional[str] = None,
                       parent_content_fingerprint: Optional[str] = None) -> Path:
        """Persist the lineage edge ``chain_fingerprint -> (parent, delta)``.

        ``delta`` is a :class:`repro.graph.delta.GraphDelta`; its wire form is
        embedded so the mutation is replayable after a restart (graphs whose
        node labels are not JSON scalars record ``delta: null`` — the edge
        survives, the replay does not).  ``content_fingerprint`` maps the
        chain address to the mutated graph's content address, which is where
        the child's own artifacts (trajectories, results, CSR spills) live.
        Idempotent overwrite: the chain fingerprint determines the content.
        """
        try:
            delta_doc = delta.to_dict()
            json.dumps(delta_doc)
        except TypeError:
            delta_doc = None
        doc = {"schema": SCHEMA_VERSION, "kind": "lineage",
               "fingerprint": chain_fingerprint,
               "parent": parent_fingerprint,
               "content_fingerprint": content_fingerprint,
               "parent_content_fingerprint": parent_content_fingerprint,
               "delta": delta_doc}
        path = self.lineage_path(chain_fingerprint)
        with obs_trace.span("store.record_lineage",
                            fingerprint=chain_fingerprint,
                            parent=parent_fingerprint):
            self._atomic_write(path, (json.dumps(doc, indent=2) + "\n")
                               .encode("utf-8"))
        return path

    def load_lineage(self, chain_fingerprint: str) -> Optional[dict]:
        """The lineage record of ``chain_fingerprint``, or None.

        Absent, corrupted, schema-mismatching and address-mismatching files
        all read as None (the usual "can cost a recompute, never a wrong
        answer" posture).
        """
        try:
            doc = json.loads(self.lineage_path(chain_fingerprint)
                             .read_text(encoding="utf-8"))
        except _LOAD_ERRORS:
            return None
        if (not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION
                or doc.get("kind") != "lineage"
                or doc.get("fingerprint") != chain_fingerprint
                or not is_fingerprint(doc.get("parent", ""))):
            return None
        return doc

    def lineage_chain(self, chain_fingerprint: str) -> List[dict]:
        """The recorded ancestry of ``chain_fingerprint``, child first.

        Walks ``parent`` links until a fingerprint with no lineage record —
        the chain's root (a plain content-addressed graph) — or a cycle
        (corrupt records) is reached.  An empty list means the fingerprint
        itself has no recorded lineage.
        """
        chain: List[dict] = []
        seen = {chain_fingerprint}
        current = chain_fingerprint
        while True:
            record = self.load_lineage(current)
            if record is None:
                return chain
            chain.append(record)
            current = record["parent"]
            if current in seen:  # corrupt: a cycle is not a lineage
                return chain
            seen.add(current)

    # -------------------------------------------------------------- management
    def csr_dir(self, fingerprint: str) -> Path:
        """The subdirectory holding ``fingerprint``'s memory-mapped CSR arrays.

        Written by :mod:`repro.graph.mmap_csr` when a session spills a graph
        out of core; the store accounts for (``info``) and removes
        (``purge``/``evict``) these files like any other artifact.
        """
        return self.graph_dir(fingerprint) / CSR_DIR_NAME

    def traj_dir(self, fingerprint: str, lam: float) -> Path:
        """The append-only ``.traj`` directory of ``(fingerprint, λ)``.

        Written by engines running with ``trajectory_storage="mmap"`` (see
        :mod:`repro.store.traj`); accounted for and removed like any other
        artifact.
        """
        self.graph_dir(fingerprint)  # same malformed-fingerprint contract
        return traj_store.traj_dir(self.root, fingerprint, lam)

    def record_graph(self, fingerprint: str, n: int,
                     labels: Sequence[Hashable] = ()) -> None:
        """Ensure the human-facing ``graph.json`` descriptor exists.

        Idempotent; used by callers that create artifacts without going
        through ``save_trajectory``/``save_result`` (e.g. a session whose
        engine appended the trajectory straight into the ``.traj`` file).
        """
        self._write_graph_meta(fingerprint, n, labels)

    def _artifact_files(self, fingerprint: Optional[str] = None) -> Iterator[Path]:
        # Hidden files are skipped everywhere: a ``.{name}.tmp-*`` file is an
        # in-flight atomic write, not an artifact — counting it misreports
        # ``info`` and letting ``purge``/``evict`` delete it would yank a
        # temp file out from under a concurrent writer's ``os.replace``.
        dirs = [self.graph_dir(fingerprint)] if fingerprint else (
            [p for p in sorted(self.root.iterdir())
             if p.is_dir() and is_fingerprint(p.name)]
            if self.root.is_dir() else [])
        for directory in dirs:
            if directory.is_dir():
                for path in sorted(directory.iterdir()):
                    if path.name.startswith("."):
                        continue
                    if path.is_file():
                        yield path
                    elif path.is_dir() and (path.name == CSR_DIR_NAME
                                            or traj_store.is_traj_dir(path)):
                        yield from sorted(
                            p for p in path.iterdir()
                            if p.is_file() and not p.name.startswith("."))

    def fingerprints(self) -> Tuple[str, ...]:
        """Fingerprints of every graph with at least one stored file.

        Only well-formed content addresses are listed: a stray directory
        (whatever mkdir'd it) is not a graph and must not make ``info`` /
        ``purge`` trip over it.
        """
        if not self.root.is_dir():
            return ()
        return tuple(sorted(p.name for p in self.root.iterdir()
                            if p.is_dir() and is_fingerprint(p.name)
                            and any(p.iterdir())))

    @staticmethod
    def _is_csr_file(path: Path) -> bool:
        return path.parent.name == CSR_DIR_NAME

    @staticmethod
    def _is_traj_file(path: Path) -> bool:
        return traj_store.is_traj_dir(path.parent)

    def info(self, fingerprint: Optional[str] = None) -> dict:
        """Totals (and per-graph rows) for the CLI and tests.

        Returns ``{"root", "graphs": [{"fingerprint", "files", "bytes",
        "csr_bytes", "traj_bytes", "kinds"}, ...], "files", "bytes"}``;
        ``csr_bytes`` / ``traj_bytes`` are the slices of ``bytes`` held by
        memory-mapped CSR arrays and append-only trajectories (the
        out-of-core footprint ``repro cache ls`` reports per graph).  A file
        vanishing between the directory scan and its ``stat`` (a concurrent
        ``purge``/``evict``/replace) is skipped, not a crash.
        """
        graphs = []
        total_files = total_bytes = 0
        targets = (fingerprint,) if fingerprint else self.fingerprints()
        for fp in targets:
            sizes = {}
            for p in self._artifact_files(fp):
                try:
                    sizes[p] = p.stat().st_size
                except OSError:
                    continue  # deleted/replaced mid-scan: not an artifact now
            size = sum(sizes.values())
            csr_bytes = sum(s for p, s in sizes.items() if self._is_csr_file(p))
            traj_bytes = sum(s for p, s in sizes.items() if self._is_traj_file(p))
            kinds = sorted({"csr" if self._is_csr_file(p)
                            else "trajectory" if self._is_traj_file(p)
                            else p.name.split("-")[0].removesuffix(".json")
                            for p in sizes})
            graphs.append({"fingerprint": fp, "files": len(sizes),
                           "bytes": size, "csr_bytes": csr_bytes,
                           "traj_bytes": traj_bytes, "kinds": kinds})
            total_files += len(sizes)
            total_bytes += size
        return {"root": str(self.root), "graphs": graphs,
                "files": total_files, "bytes": total_bytes}

    def purge(self, fingerprint: Optional[str] = None) -> int:
        """Delete every artifact (of one graph, or of the whole store).

        Returns the number of files removed.  Directories left empty are
        pruned; the root itself is kept.
        """
        removed = 0
        for path in list(self._artifact_files(fingerprint)):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
        dirs = [self.graph_dir(fingerprint)] if fingerprint else (
            [p for p in self.root.iterdir()
             if p.is_dir() and is_fingerprint(p.name)]
            if self.root.is_dir() else [])
        for directory in dirs:
            subdirs = [p for p in directory.iterdir() if p.is_dir()] \
                if directory.is_dir() else []
            for candidate in subdirs + [directory]:
                try:
                    candidate.rmdir()
                except OSError:
                    pass
        return removed

    def evict(self, max_bytes: int) -> int:
        """Remove oldest-modified artifacts until the store fits ``max_bytes``.

        Memory-mapped CSR arrays and append-only trajectories are evictable
        like any other artifact (a later out-of-core run re-materialises /
        recomputes them — the revalidation in :mod:`repro.graph.mmap_csr` and
        the header clamp in :mod:`repro.store.traj` treat a torn set as
        absent).  The ``graph.json`` / ``csr/meta.json`` / ``.traj``
        ``header.json`` descriptors are only removed when their directory has
        no artifacts left.  Returns the number of files removed.
        """
        if max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        for path in self._artifact_files():
            if path.name in ("graph.json", "lineage.json") or (
                    self._is_csr_file(path) and path.name == "meta.json") or (
                    self._is_traj_file(path)
                    and path.name == traj_store.HEADER_NAME):
                continue
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - vanished mid-scan
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in sorted(entries, key=lambda entry: entry[0]):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            total -= size
            removed += 1
        for directory in ([p for p in self.root.iterdir()
                           if p.is_dir() and is_fingerprint(p.name)]
                          if self.root.is_dir() else []):
            for subdir in [p for p in directory.iterdir() if p.is_dir()]:
                if subdir.name == CSR_DIR_NAME:
                    descriptor = "meta.json"
                elif traj_store.is_traj_dir(subdir):
                    descriptor = traj_store.HEADER_NAME
                else:
                    continue
                if not any(p for p in subdir.iterdir()
                           if p.name != descriptor):
                    (subdir / descriptor).unlink(missing_ok=True)
                    try:
                        subdir.rmdir()
                    except OSError:  # pragma: no cover - concurrent write
                        pass
            # graph.json is a descriptor (goes when nothing is left to
            # describe); lineage.json is a *record* — a few hundred bytes
            # whose loss would orphan a whole chain of versions, so evict
            # never candidates it (above) and a directory holding one is
            # not empty.  Only ``purge`` removes lineage.
            artifacts = [p for p in directory.iterdir() if p.name != "graph.json"]
            if not artifacts:
                (directory / "graph.json").unlink(missing_ok=True)
                try:
                    directory.rmdir()
                except OSError:  # pragma: no cover - concurrent write
                    pass
        return removed
