"""Persistent artifact store: durable, content-addressed per-graph caches.

:class:`ArtifactStore` persists the expensive artifacts a
:class:`~repro.session.Session` amortises in memory — elimination trajectories
and :class:`~repro.core.surviving.SurvivingNumbers` results — under a stable
content fingerprint of the graph (:func:`repro.graph.csr.csr_fingerprint`), so
warm-cache wins survive process restarts: a freshly constructed session on a
known graph resumes bit-identically from disk.

>>> from repro import ArtifactStore, Session, load_dataset
>>> store = ArtifactStore("/tmp/repro-cache")          # doctest: +SKIP
>>> session = Session(load_dataset("caveman"), store=store)  # doctest: +SKIP
>>> session.coreness(rounds=8)                          # doctest: +SKIP

See :mod:`repro.store.store` for the on-disk layout, atomicity and corruption
semantics, :mod:`repro.store.traj` for the append-only out-of-core trajectory
buffer (``trajectory-lam<λ>.traj/``), and the ``repro cache`` CLI for
inspection and purging.
"""

from repro.store.store import SCHEMA_VERSION, ArtifactStore, StoreError
from repro.store.traj import TRAJ_SCHEMA_VERSION, AppendTrajectory

__all__ = ["ArtifactStore", "StoreError", "SCHEMA_VERSION",
           "AppendTrajectory", "TRAJ_SCHEMA_VERSION"]
