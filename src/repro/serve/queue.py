"""Async job submission: futures, in-flight dedup, bounded backpressure.

The in-process serving stack so far is synchronous: a
:class:`~repro.session.Session` answers one request at a time and a
:class:`~repro.engine.batch.BatchRunner` walks jobs in order.  This module adds
the concurrent front-end a long-lived server needs:

* :class:`JobQueue` — accepts :class:`~repro.engine.batch.BatchJob`\\ s, returns
  :class:`concurrent.futures.Future`\\ s, and executes them on a worker pool
  over one shared :class:`BatchRunner` (so the per-graph sessions, caches and
  any persistent :class:`~repro.store.ArtifactStore` are shared by every job);
* :class:`AsyncSession` — the same shape over a single graph's
  :class:`Session`, for ``submit("coreness", rounds=8)``-style requests.

Three serving behaviours, shared by both:

* **in-flight dedup** — identical requests submitted while the first is still
  running share one future (one execution); the dedup key is the problem's own
  :meth:`~repro.problems.Problem.request_key`, the same canonicalisation the
  session result cache uses, so every equivalent spelling coalesces.
* **bounded backpressure** — with ``max_pending=N``, at most ``N`` jobs are
  queued-or-running; further ``submit`` calls block until capacity frees.
  :meth:`~JobQueue.map` streams results in submission order while the window
  keeps at most ``N`` jobs in flight, so arbitrarily long job streams keep a
  bounded number of pending results.  (Per-*graph* state — one session with
  its CSR view and caches — lives for the runner's lifetime by design, the
  amortisation trade; bound it with ``max_cached_results`` and a bounded set
  of graphs, not with ``max_pending``.)
* **session safety** — sessions are single-threaded by design (their caches
  are plain dicts), so execution is serialised per graph; concurrency comes
  from distinct graphs, from in-flight dedup, and from the engines themselves
  (NumPy kernels release the GIL; ``sharded:parallel=process`` sidesteps it).

Results are **bit-identical to sequential execution**: per-graph serialisation
means every job sees the same cache state transitions as some sequential order,
and every engine is deterministic (the equivalence suites pin this).
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.engine.batch import BatchJob, BatchResult, BatchRunner
from repro.errors import QueueFullError, ServeError
from repro.obs import trace as obs_trace
from repro.obs.metrics import counter_families, family, gauge_family
from repro.problems import Problem, ProblemLike, get_problem
from repro.session import Session
from repro.utils.numeric import canonical_lam


@dataclass
class ServeStats:
    """Counters of what an async front-end accepted and ran.

    ``queue_depth`` is a live gauge (requests accepted but not yet completed
    — exactly what ``max_pending`` bounds), not a monotone counter;
    ``per_problem`` counts every request by canonical problem name, whether it
    started an execution or coalesced onto one.  Both feed the HTTP
    ``/metrics`` endpoint, where ``dedup_hits`` is the wire spelling of
    ``deduplicated``.
    """

    submitted: int = 0      #: requests accepted for execution
    deduplicated: int = 0   #: submissions coalesced onto an in-flight future
    completed: int = 0      #: executions finished (successfully or not)
    queue_depth: int = 0    #: gauge: executions accepted and not yet completed
    #: requests per canonical problem name (accepted + coalesced)
    per_problem: Dict[str, int] = field(default_factory=dict)

    @property
    def dedup_hits(self) -> int:
        """Wire alias of :attr:`deduplicated` (the ``/metrics`` spelling)."""
        return self.deduplicated

    def count_problem(self, name: Optional[str]) -> None:
        """Count one request against ``name`` (None: problem unresolvable)."""
        if name is not None:
            self.per_problem[name] = self.per_problem.get(name, 0) + 1

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the counters."""
        snapshot = dict(vars(self))
        snapshot["per_problem"] = dict(self.per_problem)
        snapshot["dedup_hits"] = self.deduplicated
        return snapshot

    def metric_families(self, prefix: str = "repro_serve") -> list:
        """These counters as metric families for a ``MetricsRegistry``.

        How the serving stats register into the observability layer (via
        ``register_collector``) instead of being hand-merged: the monotone
        counters become ``<prefix>_*_total``, ``queue_depth`` stays a gauge,
        and ``per_problem`` becomes one labelled counter family.
        """
        families = counter_families(
            prefix,
            {"submitted": self.submitted, "deduplicated": self.deduplicated,
             "completed": self.completed},
            "Serving counter")
        families.append(gauge_family(
            f"{prefix}_queue_depth",
            "Executions accepted and not yet completed", self.queue_depth))
        families.append(family(
            f"{prefix}_requests_total", "counter",
            "Requests by canonical problem name (accepted + coalesced)",
            [("", {"problem": name}, float(count))
             for name, count in sorted(self.per_problem.items())]))
        return families


class _AsyncFrontend:
    """Shared submit/dedup/backpressure plumbing of the serving layer."""

    def __init__(self, *, max_workers: int, max_pending: Optional[int],
                 name: str) -> None:
        if max_workers < 1:
            raise ServeError(f"max_workers must be >= 1, got {max_workers}")
        if max_pending is not None and max_pending < 1:
            raise ServeError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self.stats = ServeStats()
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix=name)
        self._registry_lock = threading.Lock()
        self._inflight: Dict[object, Future] = {}
        self._capacity = (threading.BoundedSemaphore(max_pending)
                          if max_pending is not None else None)
        self._closed = False

    # ------------------------------------------------------------- submission
    def _submit(self, key, fn, *args, block: bool = True,
                problem: Optional[str] = None) -> Future:
        """Submit ``fn(*args)``, coalescing onto an in-flight future for ``key``.

        ``key=None`` (unhashable request parameters) skips dedup.  When
        ``max_pending`` executions are already queued-or-running, ``block=True``
        waits for capacity while ``block=False`` raises
        :class:`~repro.errors.QueueFullError` immediately (the shape a network
        front-end needs: backpressure becomes a 429, not a stalled socket).
        ``problem`` is the canonical problem name counted in
        :attr:`ServeStats.per_problem`.
        """
        with self._registry_lock:
            if self._closed:
                raise ServeError(f"{type(self).__name__} is closed")
            if key is not None:
                hit = self._inflight.get(key)
                if hit is not None:
                    self.stats.deduplicated += 1
                    self.stats.count_problem(problem)
                    return hit
        if self._capacity is not None:
            # Backpressure: block until capacity frees, or refuse outright.
            if not self._capacity.acquire(blocking=block):
                raise QueueFullError(
                    f"{type(self).__name__} is at max_pending={self.max_pending} "
                    f"jobs queued-or-running")
        holding_permit = self._capacity is not None
        try:
            with self._registry_lock:
                if self._closed:
                    raise ServeError(f"{type(self).__name__} is closed")
                if key is not None:
                    # A racing submitter registered the same request while we
                    # waited for capacity: join its future, return the permit.
                    hit = self._inflight.get(key)
                    if hit is not None:
                        self.stats.deduplicated += 1
                        self.stats.count_problem(problem)
                        return hit
                # When tracing, the submitter's span context and submit time
                # ride along so the worker can record the queue wait and
                # parent its execution span across the pool boundary.
                obs_ctx = None
                if obs_trace.active() is not None:
                    obs_ctx = (obs_trace.current_context(), time.time(),
                               time.perf_counter())
                future = self._pool.submit(self._run_one, obs_ctx, fn, *args)
                holding_permit = False   # the running job now owns the permit
                if key is not None:
                    self._inflight[key] = future
                self.stats.submitted += 1
                self.stats.queue_depth += 1
                self.stats.count_problem(problem)
        finally:
            if holding_permit:
                self._capacity.release()
        if key is not None:
            future.add_done_callback(lambda _done, key=key: self._forget(key))
        return future

    def _run_one(self, obs_ctx, fn, *args):
        execute_span = None
        tracer = obs_trace.active()
        if tracer is not None and obs_ctx is not None:
            parent, submit_unix, submit_perf = obs_ctx
            tracer.record_span(
                "serve.queue_wait", start_unix=submit_unix,
                duration=time.perf_counter() - submit_perf, parent=parent)
            execute_span = obs_trace.span("serve.execute", parent=parent)
        try:
            if execute_span is not None:
                with execute_span:
                    return fn(*args)
            return fn(*args)
        finally:
            with self._registry_lock:
                self.stats.completed += 1
                self.stats.queue_depth -= 1
            if self._capacity is not None:
                self._capacity.release()

    def _forget(self, key) -> None:
        with self._registry_lock:
            self._inflight.pop(key, None)

    def _stream(self, futures: Iterable[Future]) -> Iterator:
        """Yield results in submission order, draining as they complete."""
        pending: deque = deque()
        for future in futures:
            pending.append(future)
            while pending and pending[0].done():
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()

    # -------------------------------------------------------------- lifecycle
    @property
    def in_flight(self) -> int:
        """Number of deduplicatable requests currently queued or running."""
        with self._registry_lock:
            return len(self._inflight)

    def close(self, wait: bool = True) -> None:
        """Stop accepting submissions; optionally wait for running jobs."""
        with self._registry_lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=exc_type is None)


class JobQueue(_AsyncFrontend):
    """Asynchronous, deduplicating front-end over a :class:`BatchRunner`.

    Parameters
    ----------
    runner:
        The batch runner to execute on (owns one session per graph and the
        optional persistent store).  When omitted, one is built from
        ``engine`` / ``store`` / ``engine_options``.
    max_workers:
        Worker threads.  Jobs on the *same* graph are serialised (sessions
        are single-threaded by design); distinct graphs run concurrently.
    max_pending:
        Backpressure bound: at most this many jobs queued-or-running;
        ``submit`` blocks beyond it.  ``None`` means unbounded.

    >>> with JobQueue(max_workers=4, max_pending=64) as queue:    # doctest: +SKIP
    ...     futures = [queue.submit(job) for job in jobs]
    ...     results = [f.result() for f in futures]
    """

    def __init__(self, runner: Optional[BatchRunner] = None, *,
                 engine=None, store=None, max_workers: int = 2,
                 max_pending: Optional[int] = None, **engine_options) -> None:
        super().__init__(max_workers=max_workers, max_pending=max_pending,
                         name="repro-serve")
        if runner is not None and (engine is not None or store is not None
                                   or engine_options):
            raise ServeError("pass either a runner or engine/store options, not both")
        self.runner = runner if runner is not None else BatchRunner(
            engine if engine is not None else "vectorized",
            store=store, **engine_options)
        #: id(graph) -> (weakref to the graph, its serialisation lock).  Like
        #: ShardedEngine._fingerprints: the weakref detects id() reuse after a
        #: graph is collected (an aliased lock would serialise unrelated
        #: graphs — or worse, hand a recycled id a lock some thread holds),
        #: and dead entries are pruned so a long-lived queue's lock map does
        #: not grow with every graph it ever served.
        self._graph_locks: Dict[int, Tuple[weakref.ref, threading.Lock]] = {}

    def _job_key(self, job: BatchJob,
                 problem: Optional[Problem] = None) -> Optional[tuple]:
        problem = get_problem(job.problem) if problem is None else problem
        # Validates the job up front (budget + param consistency), so a bad
        # job fails at submit time, not inside a worker.
        params = BatchRunner._job_params(job, problem)
        job.resolve_rounds()
        base = problem.request_key(params)
        if base is None:
            return None
        token = job.problem if isinstance(job.problem, Problem) else type(problem)
        # The label is part of the key: a shared future returns one
        # BatchResult whose stats carry one job identity, so only jobs that
        # would report identically may coalesce (differently-named duplicates
        # still share the session's result cache — the compute is not repeated,
        # only the per-job stats row is).
        return (id(job.graph), token, base, job.label())

    def _graph_lock(self, graph) -> threading.Lock:
        with self._registry_lock:
            key = id(graph)
            hit = self._graph_locks.get(key)
            if hit is not None and hit[0]() is graph:
                return hit[1]
            dead = [k for k, (ref, _) in self._graph_locks.items()
                    if ref() is None]
            for k in dead:
                del self._graph_locks[k]
            lock = threading.Lock()
            self._graph_locks[key] = (weakref.ref(graph), lock)
            return lock

    def _execute(self, job: BatchJob) -> BatchResult:
        with self._graph_lock(job.graph):
            return self.runner.run_job(job)

    def submit(self, job: BatchJob, *, block: bool = True) -> "Future[BatchResult]":
        """Accept one job; returns a future of its :class:`BatchResult`.

        An identical in-flight job (same graph, problem and canonicalised
        parameters) shares one future and one execution.  With ``max_pending``
        jobs already in flight, ``block=True`` waits for capacity;
        ``block=False`` raises :class:`~repro.errors.QueueFullError` instead.
        """
        problem = get_problem(job.problem)
        return self._submit(self._job_key(job, problem), self._execute, job,
                            block=block, problem=problem.name)

    def map(self, jobs: Iterable[BatchJob]) -> Iterator[BatchResult]:
        """Stream results in submission order with bounded in-flight jobs.

        With ``max_pending`` set, at most that many jobs are in flight while
        the input iterator is consumed lazily, so pending results stay
        bounded for arbitrarily long job streams (per-graph session state
        persists for the runner's lifetime — see the module docstring).
        Exceptions from a job surface at its position in the stream.
        """
        return self._stream(self.submit(job) for job in jobs)

    def run(self, jobs: Iterable[BatchJob]) -> List[BatchResult]:
        """Submit every job and collect the results (submission order)."""
        return list(self.map(jobs))


class AsyncSession(_AsyncFrontend):
    """Asynchronous, deduplicating front-end over one graph's :class:`Session`.

    ``submit("coreness", rounds=8)`` returns a future of the same result object
    the synchronous ``session.solve`` would produce; identical in-flight
    requests share one future.  Execution is serialised on the underlying
    session (sessions are single-threaded by design), so results are
    bit-identical to sequential calls; concurrency buys request pipelining,
    dedup and non-blocking callers rather than parallel rounds.

    Pass an existing ``session=`` to serve a warmed (or store-backed) session,
    or a ``graph=`` plus session options to own a fresh one.
    """

    def __init__(self, graph=None, *, session: Optional[Session] = None,
                 engine="vectorized", lam: float = 0.0, store=None,
                 max_cached_results: Optional[int] = None,
                 max_workers: int = 2, max_pending: Optional[int] = None,
                 **engine_options) -> None:
        super().__init__(max_workers=max_workers, max_pending=max_pending,
                         name="repro-serve-session")
        if (session is None) == (graph is None):
            raise ServeError("pass exactly one of graph= or session=")
        if session is None:
            session = Session(graph, engine=engine, lam=lam, store=store,
                              max_cached_results=max_cached_results,
                              **engine_options)
        elif engine_options or store is not None:
            raise ServeError("session= carries its own engine/store; "
                             "do not pass engine/store options with it")
        self.session = session
        self._session_lock = threading.Lock()

    def _request_key(self, problem: ProblemLike, params: dict,
                     prob: Optional[Problem] = None) -> Optional[tuple]:
        prob = get_problem(problem) if prob is None else prob
        # Mirror Session.solve's normalisation exactly: canonicalise λ before
        # any key is derived from it (so every equivalent spelling — and in
        # particular -0.0 vs 0.0 — coalesces onto one in-flight future, and a
        # non-finite λ is rejected here at submit time, not inside a worker
        # future), then collapse an explicit lam at the session default onto
        # the omitted spelling.
        if params.get("lam") is not None:
            params = {**params, "lam": canonical_lam(params["lam"])}
        if params.get("lam") == self.session.default_lam:
            params = {**params, "lam": None}
        base = prob.request_key(params)
        if base is None:
            return None
        return (base, problem if isinstance(problem, Problem) else type(prob))

    def _execute(self, problem: ProblemLike, params: dict):
        with self._session_lock:
            return self.session.solve(problem, **params)

    def submit(self, problem: ProblemLike, **params) -> Future:
        """Accept one request; returns a future of the problem result."""
        prob = get_problem(problem)
        return self._submit(self._request_key(problem, params, prob),
                            self._execute, problem, params,
                            problem=prob.name)

    def map(self, requests: Iterable[Tuple[ProblemLike, dict]]) -> Iterator:
        """Stream results for ``(problem, params)`` pairs in submission order."""
        return self._stream(self.submit(problem, **params)
                            for problem, params in requests)
