"""A thin stdlib client for :mod:`repro.serve.http`.

:class:`ServeClient` wraps one keep-alive :class:`http.client.HTTPConnection`
and speaks the server's JSON wire protocol: non-2xx responses carry a
``{"error": {"code", "message"}}`` body which the client rebuilds into the
matching :mod:`repro.errors` class via :func:`~repro.errors.error_from_dict` —
so remote failures raise exactly what the in-process call would have raised
(``QuotaExceededError`` keeps its ``retry_after``, unknown codes degrade to
:class:`~repro.errors.ReproError`).

One connection serves one thread; a load generator runs one client per
thread (connections in :mod:`http.client` are not thread-safe, and the
internal lock here only guards against accidental sharing, not for
throughput).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import ReproError, ServeError, error_from_dict
from repro.graph.graph import Graph
from repro.graph.io import to_dict as graph_to_dict
from repro.obs import trace as obs_trace


class ServeClient:
    """JSON/HTTP client for a :class:`~repro.serve.http.ReproHTTPServer`.

    >>> with ServeClient("127.0.0.1", 8080) as client:        # doctest: +SKIP
    ...     fp = client.upload_dataset("caveman")
    ...     job = client.submit(fp, problem="coreness", rounds=6)
    ...     done = client.result(job["job"])
    ...     done["objective"]
    """

    def __init__(self, host: str, port: int, *, tenant: Optional[str] = None,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self._conn = http.client.HTTPConnection(host, self.port,
                                                timeout=timeout)
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- plumbing
    def _headers(self, extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        if extra:
            headers.update(extra)
        return headers

    @staticmethod
    def _raise_for_payload(status: int, payload) -> None:
        if 200 <= status < 300:
            return
        if isinstance(payload, dict) and isinstance(payload.get("error"), dict):
            raise error_from_dict(payload["error"])
        raise ServeError(f"HTTP {status} without a structured error body: "
                         f"{payload!r}")

    def _request(self, method: str, path: str, body=None,
                 content_type: str = "application/json") -> dict:
        if isinstance(body, (dict, list)):
            body = json.dumps(body).encode("utf-8")
        headers = self._headers()
        if body is not None:
            headers["Content-Type"] = content_type
        with self._lock, obs_trace.span("client.request", method=method,
                                        path=path) as sp:
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                status = response.status
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                self._conn.close()  # force a fresh connection next call
                raise ServeError(f"{method} {path} failed: {exc}") from exc
            sp.set(status=status)
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"{method} {path}: non-JSON response "
                             f"(HTTP {status})") from exc
        self._raise_for_payload(status, payload)
        return payload

    # ------------------------------------------------------------------ basics
    def health(self) -> dict:
        return self._request("GET", "/health")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def graphs(self) -> List[dict]:
        return self._request("GET", "/graphs")["graphs"]

    def jobs(self) -> List[dict]:
        return self._request("GET", "/jobs")["jobs"]

    # ------------------------------------------------------------------ graphs
    def upload_graph(self, graph: Graph) -> str:
        """Upload ``graph`` (JSON container format); returns its fingerprint."""
        doc = self._request("PUT", "/graphs", body=graph_to_dict(graph))
        return doc["fingerprint"]

    def upload_dataset(self, name: str, *, weighted: bool = False) -> str:
        """Register a bundled dataset by name; returns its fingerprint."""
        doc = self._request("PUT", "/graphs",
                            body={"dataset": name, "weighted": weighted})
        return doc["fingerprint"]

    def upload_edge_list(self, text: str) -> str:
        """Upload edge-list text (``u v [w]`` lines); returns its fingerprint."""
        doc = self._request("PUT", "/graphs", body=text.encode("utf-8"),
                            content_type="text/plain")
        return doc["fingerprint"]

    def graph(self, fingerprint: str) -> dict:
        return self._request("GET", f"/graphs/{fingerprint}")

    def apply_delta(self, fingerprint: str, delta, *,
                    max_frontier_fraction: Optional[float] = None) -> dict:
        """Derive a child graph version from ``fingerprint`` by applying
        ``delta`` (a :class:`~repro.graph.GraphDelta` or its wire dict).

        Returns the child's graph document; its ``fingerprint`` is the
        *chain* fingerprint — the address later jobs on the mutated graph
        submit against.
        """
        wire = delta if isinstance(delta, dict) else delta.to_dict()
        body: dict = {"delta": wire}
        if max_frontier_fraction is not None:
            body["max_frontier_fraction"] = max_frontier_fraction
        return self._request("POST", f"/graphs/{fingerprint}/deltas",
                             body=body)

    # -------------------------------------------------------------------- jobs
    def submit(self, fingerprint: str, *, problem: str = "coreness",
               **fields) -> dict:
        """Submit one job; returns the 202 document (``job`` id,
        ``deduplicated`` flag, current status)."""
        return self._request("POST", f"/graphs/{fingerprint}/jobs",
                             body={"problem": problem, **fields})

    def poll(self, job_id: str, *, wait: Optional[float] = None,
             include_result: bool = False) -> dict:
        """Fetch a job document; ``wait`` long-polls up to that many seconds."""
        query = []
        if wait is not None:
            query.append(f"wait={wait:g}")
        if include_result:
            query.append("include=result")
        suffix = ("?" + "&".join(query)) if query else ""
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def result(self, job_id: str, *, timeout: float = 300.0,
               include_result: bool = False) -> dict:
        """Long-poll until the job finishes; raise its error if it failed.

        Returns the completed job document.  A server-side job failure is
        rebuilt into the matching :class:`~repro.errors.ReproError` subclass
        and raised here, mirroring what ``future.result()`` does in-process.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(f"job {job_id!r} did not finish "
                                 f"within {timeout:g}s")
            doc = self.poll(job_id, wait=min(remaining, 30.0),
                            include_result=include_result)
            if doc["status"] == "done":
                return doc
            if doc["status"] == "error":
                error = doc.get("error")
                if isinstance(error, dict) and "code" in error:
                    raise error_from_dict(error)
                raise ReproError(str(error))

    # ------------------------------------------------------------------- batch
    def batch(self, fingerprint: str, requests: List[dict], *,
              include_result: bool = False) -> Iterator[dict]:
        """Stream one completed job document per request, in submit order.

        Holds the connection for the whole stream (chunked NDJSON); consume
        the iterator fully before issuing other calls on this client.
        """
        body = {"requests": requests}
        if include_result:
            body["include"] = "result"
        encoded = json.dumps(body).encode("utf-8")
        headers = self._headers({"Content-Type": "application/json"})
        with self._lock:
            try:
                self._conn.request("POST", f"/graphs/{fingerprint}/batch",
                                   body=encoded, headers=headers)
                response = self._conn.getresponse()
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                self._conn.close()
                raise ServeError(f"batch submit failed: {exc}") from exc
            if response.status != 200:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode("utf-8")) if raw else {}
                except (UnicodeDecodeError, json.JSONDecodeError):
                    payload = {}
                self._raise_for_payload(response.status, payload)
            # http.client undoes the chunked framing; readline() returns one
            # NDJSON document per line as the server flushes them.
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def solve_many(client: ServeClient, fingerprint: str,
               requests: Iterable[dict]) -> List[dict]:
    """Submit every request, then long-poll each to completion (submit order).

    The submit-all-then-poll shape (rather than one-at-a-time) is what lets
    the server's in-flight dedup coalesce duplicates across the list.
    """
    issued = [client.submit(fingerprint, **request) for request in requests]
    return [client.result(doc["job"]) for doc in issued]
