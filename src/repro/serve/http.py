"""`repro.serve.http` — the network front-end over ``JobQueue`` + ``ArtifactStore``.

Everything below PR 4's serving layer is in-process only; this module puts a
real socket in front of it, with nothing beyond the standard library
(:mod:`http.server` / :mod:`socketserver`).  One
:class:`ReproHTTPServer` wraps one :class:`~repro.serve.JobQueue` (shared
:class:`~repro.engine.batch.BatchRunner`, one session per graph, in-flight
dedup via :meth:`~repro.problems.Problem.request_key`) and, optionally, one
persistent :class:`~repro.store.ArtifactStore` — so N remote clients get the
exact semantics the in-process tests pin: concurrent mixed requests are
bit-identical to sequential ``Session.solve``, identical in-flight requests
coalesce onto one execution, restarts resume from the store.

Resources are content fingerprints
----------------------------------
Graphs are addressed by :func:`~repro.graph.csr.csr_fingerprint` — uploading
the same bytes twice registers one graph, and a store-backed server resumes
that graph's artifacts across restarts::

    PUT  /graphs                      upload (edge-list text or JSON) or name a
                                      bundled dataset; -> {"fingerprint", ...}
    GET  /graphs                      registered graphs
    GET  /graphs/<fp>                 one graph's descriptor
    POST /graphs/<fp>/jobs            submit one problem request -> job id
    GET  /jobs/<id>                   poll; ?wait=<s> long-polls,
                                      ?include=result attaches the full result
    GET  /jobs                        every issued job (summaries)
    POST /graphs/<fp>/batch           submit a request list, stream NDJSON
                                      results back in submission order
    GET  /metrics                     ServeStats + session/store counters;
                                      ?format=prometheus renders text
                                      exposition from the MetricsRegistry
    GET  /health                      liveness probe

Observability
-------------
Every request runs inside an ``http.request`` span (:mod:`repro.obs` —
a no-op unless tracing is enabled) and, when the server was built with
``access_log=``, appends one NDJSON line per request (method, path, status,
tenant, duration; job id + dedup flag on submissions).  Default stderr
request logging stays suppressed either way.  Job records keep a by-status
count updated on completion (no full scan under the state lock) and finished
records are garbage-collected beyond ``max_finished_jobs`` — polling an
evicted id answers 404 like a never-issued one.

Admission control
-----------------
Two client-visible 429 conditions, both structured
(:mod:`repro.errors` wire protocol, ``{"error": {"code", "message"}}``):

* **per-tenant token-bucket quotas** (``quota_rate`` requests/s refill,
  ``quota_burst`` bucket size, tenant = ``X-Repro-Tenant`` header) →
  ``429`` with code ``quota-exceeded`` and a ``Retry-After`` header;
* **queue backpressure** — job submission uses the non-blocking path, so when
  ``max_pending`` executions are in flight the server answers ``429`` with
  code ``queue-full`` instead of stalling the socket.

Lifecycle
---------
:meth:`ReproHTTPServer.start` serves on a background thread;
:meth:`~ReproHTTPServer.drain` is the graceful shutdown the CLI binds to
SIGTERM: stop accepting connections, finish the in-flight handler threads and
queued jobs (sessions persist their artifacts per request, so a drained
store holds no half-written state — atomic tmp+rename writes never leave
``.tmp`` files behind), then close the worker pool.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro._version import __version__
from repro.engine.batch import BatchJob, BatchResult
from repro.errors import (
    AlgorithmError,
    GraphError,
    QuotaExceededError,
    ReproError,
    ServeError,
    StoreError,
    UnknownResourceError,
    WireFormatError,
)
from repro.graph.csr import csr_fingerprint, graph_to_csr
from repro.graph.datasets import list_datasets, load_dataset
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.graph.io import from_dict as graph_from_dict
from repro.graph.io import parse_edge_list
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    MetricsRegistry,
    counter_families,
    family,
    gauge_family,
    get_registry,
)
from repro.serve.queue import JobQueue
from repro.store import ArtifactStore

#: Longest long-poll a single ``?wait=`` request may hold a handler thread
#: (longer waits re-poll; an unbounded wait would stall graceful drain).
MAX_WAIT_SECONDS = 30.0

#: BatchJob fields a wire submission may set (everything else is 400).
_JOB_FIELDS = ("problem", "name", "epsilon", "gamma", "rounds", "lam",
               "tie_break", "track_kept")

#: HTTP status per error class; resolved along the exception's MRO so
#: subclasses inherit their parent's mapping unless they claim their own.
_STATUS_BY_ERROR = {
    QuotaExceededError: 429,
    # QueueFullError maps through ServeError's MRO entry below? No — it needs
    # 429, not 503, so it gets its own row.
    UnknownResourceError: 404,
    WireFormatError: 400,
    AlgorithmError: 400,
    GraphError: 400,
    StoreError: 400,
    ServeError: 503,
    ReproError: 500,
}
# QueueFullError imported lazily into the table to keep the import list tidy.
from repro.errors import QueueFullError  # noqa: E402  (table completeness)

_STATUS_BY_ERROR[QueueFullError] = 429


def _status_for(exc: ReproError) -> int:
    for cls in type(exc).__mro__:
        if cls in _STATUS_BY_ERROR:
            return _STATUS_BY_ERROR[cls]
    return 500  # pragma: no cover - ReproError row always matches


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s refill, ``burst`` capacity.

    ``try_acquire`` returns ``0.0`` when a token was taken, else the seconds
    until enough tokens will have refilled — the ``Retry-After`` a transport
    should surface.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ServeError(f"token bucket needs positive rate/burst, "
                             f"got rate={rate}, burst={burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate


@dataclass
class _GraphRecord:
    """One registered graph (the server always serves the *first* upload's
    object, so every job on a fingerprint shares one session)."""

    fingerprint: str
    graph: Graph
    source: str                        #: "dataset:<name>" | "edge-list" | "json" | "delta"
    uploads: int = 1                   #: times this content was (re-)uploaded
    parent: Optional[str] = None       #: parent fingerprint for delta-derived versions
    content_fingerprint: Optional[str] = None  #: content address when the
                                       #: resource address is a chain fingerprint


@dataclass
class _JobRecord:
    """One issued job id and the future that answers it."""

    id: str
    fingerprint: str
    problem: str
    tenant: str
    label: str
    future: "Future[BatchResult]"
    submitted_unix: float = field(default_factory=time.time)
    status: str = "pending"            #: "pending" | "done" | "error"


class ReproHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP/JSON server over one :class:`JobQueue` + store.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port`).
    engine, store, workers, max_pending, engine_options:
        Forwarded to the owned :class:`~repro.serve.JobQueue` /
        :class:`~repro.engine.batch.BatchRunner` (``store`` also registers
        the artifact store the metrics report on).
    quota_rate, quota_burst:
        Per-tenant token bucket (requests/s refill and bucket size); ``None``
        disables quotas.  Tenants are named by the ``X-Repro-Tenant`` header
        (missing header → the ``"default"`` tenant).
    access_log:
        ``None`` (default, no access logging), a path to append NDJSON
        access-log lines to, or an open text stream (not closed on drain).
    max_finished_jobs:
        Retain at most this many finished (done/error) job records; the
        oldest finished records beyond the cap are evicted and answer 404.
        ``None`` disables the bound (pre-PR behaviour).
    """

    daemon_threads = False     #: drain joins handler threads: finish, not kill
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 engine="vectorized", store=None, workers: int = 2,
                 max_pending: Optional[int] = None,
                 quota_rate: Optional[float] = None,
                 quota_burst: Optional[float] = None,
                 access_log=None,
                 max_finished_jobs: Optional[int] = 1024,
                 **engine_options) -> None:
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(store) if store is not None
            and not isinstance(store, ArtifactStore) else store)
        self.queue = JobQueue(engine=engine, store=self.store,
                              max_workers=workers, max_pending=max_pending,
                              **engine_options)
        self.quota_rate = quota_rate
        self.quota_burst = (quota_burst if quota_burst is not None
                            else max(1.0, float(quota_rate or 0.0)))
        if max_finished_jobs is not None and max_finished_jobs < 0:
            raise ServeError(f"max_finished_jobs must be >= 0 or None, "
                             f"got {max_finished_jobs}")
        self.max_finished_jobs = max_finished_jobs
        self._buckets: Dict[str, TokenBucket] = {}
        self._graphs: Dict[str, _GraphRecord] = {}
        self._jobs: Dict[str, _JobRecord] = {}   # insertion-ordered (dict)
        self._by_future: Dict[Future, _JobRecord] = {}
        self._jobs_by_status: Dict[str, int] = {"pending": 0, "done": 0,
                                                "error": 0}
        self._evicted_jobs = 0
        self._job_counter = 0
        self._rejected_quota = 0
        self._rejected_backpressure = 0
        self._state_lock = threading.Lock()
        self._draining = False
        self._serve_thread: Optional[threading.Thread] = None
        self._access_lock = threading.Lock()
        self._access_owned = False
        if access_log is None:
            self._access_file = None
        elif hasattr(access_log, "write"):
            self._access_file = access_log
        else:
            self._access_file = open(access_log, "a", encoding="utf-8")
            self._access_owned = True
        self.registry = MetricsRegistry()
        self.registry.register_collector(self._collect_families)
        # Per-tenant label dimension (the aggregate spellings above stay for
        # dashboards that predate it): who submits, who gets throttled.
        self._jobs_submitted_by_tenant = self.registry.counter(
            "repro_http_jobs_submitted_total",
            "Job submissions admitted, by tenant", labelnames=("tenant",))
        self._rejected_by_tenant = self.registry.counter(
            "repro_http_tenant_rejected_total",
            "Submissions refused by admission control, by tenant and reason",
            labelnames=("tenant", "reason"))
        self._deltas_by_tenant = self.registry.counter(
            "repro_http_deltas_applied_total",
            "Graph deltas applied, by tenant", labelnames=("tenant",))
        self._applied_deltas = 0
        super().__init__((host, port), _Handler)

    # ---------------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound TCP port (useful after binding port 0)."""
        return self.server_address[1]

    @property
    def host(self) -> str:
        return self.server_address[0]

    def start(self) -> "ReproHTTPServer":
        """Serve on a background thread (returns immediately)."""
        if self._serve_thread is not None:
            raise ServeError("server is already running")
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True)
        self._serve_thread.start()
        return self

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close the queue.

        New submissions observed by still-running handler threads are refused
        with 503 (``serve`` code) the moment draining begins; the accept loop
        stops; handler threads are joined (``block_on_close``), which waits
        out their long-polls and streams; finally the worker pool drains its
        queued jobs.  Idempotent.
        """
        with self._state_lock:
            if self._draining:
                return
            self._draining = True
        self.shutdown()            # stop serve_forever (no new connections)
        self.server_close()        # join in-flight handler threads
        self.queue.close(wait=True)  # finish queued jobs, release the pool
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
            self._serve_thread = None
        if self._access_owned and self._access_file is not None:
            with self._access_lock:
                self._access_file.close()
                self._access_file = None

    def __enter__(self) -> "ReproHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    # ----------------------------------------------------------------- tenants
    def _charge_tenant(self, tenant: str, tokens: float = 1.0) -> None:
        if self.quota_rate is None:
            return
        with self._state_lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.quota_rate, self.quota_burst)
        retry_after = bucket.try_acquire(tokens)
        if retry_after > 0.0:
            with self._state_lock:
                self._rejected_quota += 1
            self._rejected_by_tenant.inc(tenant=tenant, reason="quota")
            raise QuotaExceededError(
                f"tenant {tenant!r} exceeded its request quota "
                f"({self.quota_rate:g}/s, burst {self.quota_burst:g})",
                retry_after=retry_after)

    # ------------------------------------------------------------------ graphs
    def register_graph(self, graph: Graph, *, source: str) -> Tuple[str, bool]:
        """Register ``graph`` under its content fingerprint.

        Returns ``(fingerprint, created)``; re-uploading identical content
        keeps serving the first object (one session per graph in the shared
        runner) and merely bumps its upload counter.
        """
        if graph.num_nodes == 0:
            raise GraphError("an uploaded graph needs at least one node")
        fingerprint = csr_fingerprint(graph_to_csr(graph))
        with self._state_lock:
            hit = self._graphs.get(fingerprint)
            if hit is not None:
                hit.uploads += 1
                return fingerprint, False
            self._graphs[fingerprint] = _GraphRecord(
                fingerprint=fingerprint, graph=graph, source=source)
            return fingerprint, True

    def graph_record(self, fingerprint: str) -> _GraphRecord:
        with self._state_lock:
            hit = self._graphs.get(fingerprint)
        if hit is None:
            raise UnknownResourceError(
                f"no graph registered under fingerprint {fingerprint!r} "
                f"(PUT /graphs first)")
        return hit

    def _graph_from_payload(self, payload: dict) -> Tuple[Graph, str]:
        if "dataset" in payload:
            name = payload["dataset"]
            if not isinstance(name, str) or name not in list_datasets():
                raise WireFormatError(
                    f"unknown dataset {name!r}; expected one of "
                    f"{', '.join(list_datasets())}")
            weighted = bool(payload.get("weighted", False))
            return load_dataset(name, weighted=weighted), f"dataset:{name}"
        if payload.get("format") == "repro-graph-v1":
            return graph_from_dict(payload), "json"
        if "edge_list" in payload:
            if not isinstance(payload["edge_list"], str):
                raise WireFormatError("edge_list must be a string")
            return parse_edge_list(payload["edge_list"]), "edge-list"
        raise WireFormatError(
            "graph upload must carry one of: {'dataset': name}, "
            "{'edge_list': text}, or a repro-graph-v1 document")

    # ------------------------------------------------------------------ deltas
    def apply_delta(self, fingerprint: str, payload: dict, *,
                    tenant: str = "default") -> dict:
        """Apply one :class:`~repro.graph.GraphDelta` to a registered graph.

        The parent may itself be delta-derived (resources are addressed by
        chain fingerprint), so versions chain.  The child session is minted
        by :meth:`repro.session.Session.apply_delta` — carrying the parent
        link, lineage record and frontier state — and adopted into the shared
        runner so every later job on the child graph goes through the
        incremental path.  Deriving a version that is already registered
        (same chain fingerprint) is idempotent: the existing record answers
        with ``created=False``.
        """
        with self._state_lock:
            if self._draining:
                raise ServeError("server is draining; not accepting deltas")
        record = self.graph_record(fingerprint)
        self._charge_tenant(tenant)
        if not isinstance(payload, dict):
            raise WireFormatError("delta request must be a JSON object")
        unknown = sorted(set(payload) - {"delta", "max_frontier_fraction"})
        if unknown:
            raise WireFormatError(
                f"unknown delta field(s) {', '.join(map(repr, unknown))}; "
                f"allowed: 'delta', 'max_frontier_fraction'")
        if "delta" not in payload:
            raise WireFormatError("delta request must carry a 'delta' document")
        delta = GraphDelta.from_dict(payload["delta"])
        fraction = payload.get("max_frontier_fraction", 0.25)
        if not isinstance(fraction, (int, float)) or isinstance(fraction, bool):
            raise WireFormatError("max_frontier_fraction must be a number")
        parent_session = self.queue.runner.session(record.graph)
        child = parent_session.apply_delta(delta,
                                           max_frontier_fraction=float(fraction))
        child_fp = child.chain_fingerprint
        with self._state_lock:
            hit = self._graphs.get(child_fp)
            created = hit is None
            if created:
                hit = self._graphs[child_fp] = _GraphRecord(
                    fingerprint=child_fp, graph=child.graph, source="delta",
                    parent=fingerprint,
                    content_fingerprint=child.fingerprint)
                self._applied_deltas += 1
            else:
                hit.uploads += 1
        if created:
            self.queue.runner.adopt_session(child)
        self._deltas_by_tenant.inc(tenant=tenant)
        return {**self._graph_doc(hit), "delta": delta.describe(),
                "operations": delta.num_operations, "created": created,
                "tenant": tenant}

    # -------------------------------------------------------------------- jobs
    def _build_job(self, graph: Graph, payload: dict) -> BatchJob:
        if not isinstance(payload, dict):
            raise WireFormatError(f"job request must be an object, "
                                  f"got {type(payload).__name__}")
        unknown = sorted(set(payload) - set(_JOB_FIELDS))
        if unknown:
            raise WireFormatError(
                f"unknown job field(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(_JOB_FIELDS)}")
        fields = dict(payload)
        problem = fields.pop("problem", "coreness")
        if not isinstance(problem, str):
            raise WireFormatError("problem must be a registered problem name")
        try:
            return BatchJob(graph=graph, problem=problem, **fields)
        except TypeError as exc:
            raise WireFormatError(f"bad job request: {exc}") from exc

    def submit_job(self, fingerprint: str, payload: dict, *,
                   tenant: str = "default") -> dict:
        """Admit one wire submission; returns the job's wire document.

        Order of admission control: quota (cheapest, per tenant), then the
        queue's own validation + non-blocking backpressure.  The returned
        document carries ``deduplicated=True`` when the submission coalesced
        onto an already-issued job id.
        """
        with self._state_lock:
            if self._draining:
                raise ServeError("server is draining; not accepting jobs")
        record_graph = self.graph_record(fingerprint)
        self._charge_tenant(tenant)
        job = self._build_job(record_graph.graph, payload)
        try:
            future = self.queue.submit(job, block=False)
        except QueueFullError:
            with self._state_lock:
                self._rejected_backpressure += 1
            self._rejected_by_tenant.inc(tenant=tenant, reason="backpressure")
            raise
        self._jobs_submitted_by_tenant.inc(tenant=tenant)
        problem_name = job.problem_name()
        with self._state_lock:
            hit = self._by_future.get(future)
            if hit is not None:
                return {**self.job_document(hit), "deduplicated": True}
            self._job_counter += 1
            record = _JobRecord(id=f"j{self._job_counter:06d}",
                                fingerprint=fingerprint, problem=problem_name,
                                tenant=tenant, label=job.label(), future=future)
            self._jobs[record.id] = record
            self._by_future[future] = record
            self._jobs_by_status["pending"] += 1
        # Once done, the future can never coalesce again (the queue forgets
        # it), so drop the reverse mapping and move the by-status counter;
        # the job record stays pollable until retention evicts it.
        future.add_done_callback(self._job_finished)
        return {**self.job_document(record), "deduplicated": False}

    def _job_finished(self, future: Future) -> None:
        """Done-callback: settle the record's status and bound retention.

        Keeping ``_jobs_by_status`` updated here is what lets ``/metrics``
        answer without walking every job record under ``_state_lock``.
        """
        with self._state_lock:
            record = self._by_future.pop(future, None)
            if record is None or record.status != "pending":
                return
            record.status = ("error" if future.exception() is not None
                             else "done")
            self._jobs_by_status["pending"] -= 1
            self._jobs_by_status[record.status] += 1
            self._evict_finished_locked()

    def _evict_finished_locked(self) -> None:
        """Drop the oldest finished records beyond ``max_finished_jobs``."""
        if self.max_finished_jobs is None:
            return
        finished = (self._jobs_by_status["done"]
                    + self._jobs_by_status["error"])
        if finished <= self.max_finished_jobs:
            return
        for job_id in [record.id for record in self._jobs.values()
                       if record.status != "pending"]:
            if finished <= self.max_finished_jobs:
                break
            record = self._jobs.pop(job_id)
            self._jobs_by_status[record.status] -= 1
            self._evicted_jobs += 1
            finished -= 1

    def job_record(self, job_id: str) -> _JobRecord:
        with self._state_lock:
            hit = self._jobs.get(job_id)
        if hit is None:
            raise UnknownResourceError(f"no job {job_id!r} was ever issued")
        return hit

    def job_document(self, record: _JobRecord, *,
                     include_result: bool = False) -> dict:
        """The wire form of one job: status plus (on completion) the stats
        row, the scalar objective, and — only when asked — the full
        ``result.to_dict()`` payload (per-node values are large)."""
        doc = {"job": record.id, "fingerprint": record.fingerprint,
               "problem": record.problem, "label": record.label,
               "tenant": record.tenant}
        future = record.future
        if not future.done():
            doc["status"] = "pending"
            return doc
        exc = future.exception()
        if exc is not None:
            doc["status"] = "error"
            doc["error"] = (exc.to_dict() if isinstance(exc, ReproError)
                            else {"code": "error", "message": str(exc)})
            return doc
        batch_result: BatchResult = future.result()
        stats = batch_result.stats
        doc["status"] = "done"
        doc["stats"] = {"engine": stats.engine, "rounds": stats.rounds,
                        "seconds": stats.seconds,
                        "converged_round": stats.converged_round,
                        "num_nodes": stats.num_nodes,
                        "num_edges": stats.num_edges}
        doc["objective"] = stats.objective
        if include_result:
            doc["result"] = batch_result.result.to_dict()
        return doc

    def wait_job(self, record: _JobRecord, wait: float) -> None:
        """Block up to ``wait`` seconds (capped) for the job to finish."""
        try:
            record.future.exception(timeout=min(max(0.0, wait),
                                                MAX_WAIT_SECONDS))
        except FutureTimeoutError:
            pass  # still pending: the document will say so

    def stream_batch(self, fingerprint: str, payloads: List[dict], *,
                     tenant: str = "default",
                     include_result: bool = False) -> Iterable[dict]:
        """Submit ``payloads`` and yield their job documents in submit order.

        The whole batch is charged against the tenant's quota up front (one
        token per request — a batch is not a quota loophole) and submitted
        through the *blocking* path: ``max_pending`` then throttles how far
        submission runs ahead, exactly like :meth:`JobQueue.map`, while
        results stream back in submission order as they complete.
        """
        with self._state_lock:
            if self._draining:
                raise ServeError("server is draining; not accepting jobs")
        if not payloads:
            raise WireFormatError("batch needs a non-empty 'requests' list")
        record_graph = self.graph_record(fingerprint)
        self._charge_tenant(tenant, tokens=float(len(payloads)))
        self._jobs_submitted_by_tenant.inc(float(len(payloads)), tenant=tenant)
        jobs = [self._build_job(record_graph.graph, payload)
                for payload in payloads]

        def documents():
            pending: List[_JobRecord] = []
            emitted = 0
            for job in jobs:
                future = self.queue.submit(job, block=True)
                with self._state_lock:
                    record = self._by_future.get(future)
                    created = record is None
                    if created:
                        self._job_counter += 1
                        record = _JobRecord(
                            id=f"j{self._job_counter:06d}",
                            fingerprint=fingerprint,
                            problem=job.problem_name(), tenant=tenant,
                            label=job.label(), future=future)
                        self._jobs[record.id] = record
                        self._by_future[future] = record
                        self._jobs_by_status["pending"] += 1
                if created:
                    # Outside the lock: a done future runs the callback
                    # synchronously, and _job_finished takes _state_lock.
                    future.add_done_callback(self._job_finished)
                pending.append(record)
                while pending and pending[0].future.done():
                    yield self.job_document(pending.pop(0),
                                            include_result=include_result)
                    emitted += 1
            for record in pending:
                record.future.exception()  # wait without raising
                yield self.job_document(record, include_result=include_result)

        return documents()

    # ----------------------------------------------------------------- metrics
    def metrics(self) -> dict:
        """The ``/metrics`` document: ServeStats + session + store counters.

        Job counts come from the by-status counters the done-callbacks
        maintain — O(1) under the lock, not a scan of every record ever
        issued.
        """
        with self._state_lock:
            total_jobs = len(self._jobs)
            by_status = dict(self._jobs_by_status)
            graphs = len(self._graphs)
            rejected_quota = self._rejected_quota
            rejected_backpressure = self._rejected_backpressure
            evicted_jobs = self._evicted_jobs
            applied_deltas = self._applied_deltas
        document = {
            "server": {"version": __version__, "graphs": graphs,
                       "draining": self._draining,
                       "applied_deltas": applied_deltas,
                       "rejected_quota": rejected_quota,
                       "rejected_backpressure": rejected_backpressure,
                       "evicted_jobs": evicted_jobs,
                       "quota_rate": self.quota_rate,
                       "max_pending": self.queue.max_pending},
            "serve": self.queue.stats.to_dict(),
            "session": self.queue.runner.aggregate_stats(),
            "jobs": {"total": total_jobs, **by_status},
        }
        if self.store is not None:
            info = self.store.info()
            document["store"] = {"root": info["root"], "files": info["files"],
                                 "bytes": info["bytes"],
                                 "graphs": len(info["graphs"])}
        else:
            document["store"] = None
        return document

    def _collect_families(self) -> list:
        """Scrape-time collector: server/serve/session/store families."""
        with self._state_lock:
            total_jobs = len(self._jobs)
            by_status = dict(self._jobs_by_status)
            graphs = len(self._graphs)
            rejected_quota = self._rejected_quota
            rejected_backpressure = self._rejected_backpressure
            evicted_jobs = self._evicted_jobs
            draining = self._draining
        families = [
            gauge_family("repro_http_graphs", "Registered graphs",
                         float(graphs)),
            gauge_family("repro_http_draining",
                         "1 while the server drains, else 0",
                         1.0 if draining else 0.0),
            gauge_family("repro_http_jobs", "Retained job records",
                         float(total_jobs)),
            family("repro_http_jobs_by_status", "gauge",
                   "Retained job records by status",
                   [("", {"status": status}, float(count))
                    for status, count in sorted(by_status.items())]),
            family("repro_http_jobs_evicted_total", "counter",
                   "Finished job records dropped by bounded retention",
                   [("", {}, float(evicted_jobs))]),
            family("repro_http_rejected_total", "counter",
                   "Submissions refused by admission control",
                   [("", {"reason": "backpressure"},
                     float(rejected_backpressure)),
                    ("", {"reason": "quota"}, float(rejected_quota))]),
        ]
        families.extend(self.queue.stats.metric_families())
        families.extend(counter_families(
            "repro_session", self.queue.runner.aggregate_stats(),
            "Aggregated session counter"))
        if self.store is not None:
            info = self.store.info()
            families.append(gauge_family(
                "repro_store_files", "Files in the artifact store",
                float(info["files"])))
            families.append(gauge_family(
                "repro_store_bytes", "Bytes in the artifact store",
                float(info["bytes"])))
            families.append(gauge_family(
                "repro_store_graphs", "Graphs with artifacts in the store",
                float(len(info["graphs"]))))
        return families

    def render_prometheus(self) -> str:
        """Text exposition: this server's registry + the process-wide one
        (always-on kernel-round and solve-latency histograms)."""
        return self.registry.render(get_registry())

    # -------------------------------------------------------------- access log
    def log_access(self, entry: dict) -> None:
        """Append one NDJSON access-log line; a broken stream never fails
        the request being logged (best effort by design)."""
        with self._access_lock:
            stream = self._access_file
            if stream is None:
                return
            try:
                stream.write(json.dumps(entry) + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass

    def graphs_document(self) -> dict:
        with self._state_lock:
            records = list(self._graphs.values())
        return {"graphs": [self._graph_doc(record) for record in records]}

    @staticmethod
    def _graph_doc(record: _GraphRecord) -> dict:
        doc = {"fingerprint": record.fingerprint,
               "n": record.graph.num_nodes, "m": record.graph.num_edges,
               "source": record.source, "uploads": record.uploads}
        if record.parent is not None:
            doc["parent"] = record.parent
        if record.content_fingerprint is not None:
            doc["content_fingerprint"] = record.content_fingerprint
        return doc

    def jobs_document(self) -> dict:
        with self._state_lock:
            records = list(self._jobs.values())
        return {"jobs": [self.job_document(record) for record in records]}


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the :class:`ReproHTTPServer` methods."""

    server: ReproHTTPServer
    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"
    timeout = 60          #: a stalled peer cannot pin a handler thread forever

    # ------------------------------------------------------------------ plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress stdlib stderr logging; structured access logging is the
        opt-in NDJSON stream (``ReproHTTPServer(access_log=...)``) written
        from :meth:`_dispatch` — never stderr noise by default."""

    def _send_json(self, status: int, payload: dict,
                   headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, exc: ReproError) -> None:
        headers: Tuple[Tuple[str, str], ...] = ()
        if isinstance(exc, QuotaExceededError):
            headers = (("Retry-After", f"{max(0.0, exc.retry_after):.3f}"),)
        self._send_json(_status_for(exc), {"error": exc.to_dict()}, headers)

    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise WireFormatError("bad Content-Length header")
        if length <= 0:
            raise WireFormatError("request needs a JSON body")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise WireFormatError("request body must be a JSON object")
        return payload

    def _tenant(self) -> str:
        return self.headers.get("X-Repro-Tenant", "default").strip() or "default"

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        self._status = 0          # 0 = connection dropped before an answer
        self._log_extra: Dict[str, object] = {}
        try:
            with obs_trace.span("http.request", method=method,
                                path=self.path) as sp:
                try:
                    parts = urlsplit(self.path)
                    segments = [unquote(s) for s in parts.path.split("/") if s]
                    query = parse_qs(parts.query)
                    route = getattr(self, f"_route_{method.lower()}")
                    route(segments, query)
                except ReproError as exc:
                    self._send_error_payload(exc)
                except (BrokenPipeError, ConnectionResetError):
                    pass  # the client went away; nothing to answer
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    self._send_json(
                        500, {"error": {"code": "error",
                                        "message": f"{type(exc).__name__}: "
                                                   f"{exc}"}})
                sp.set(status=self._status)
        finally:
            if self.server._access_file is not None:
                self.server.log_access(
                    {"ts": time.time(), "method": method, "path": self.path,
                     "status": self._status, "tenant": self._tenant(),
                     "duration_ms": round(
                         (time.perf_counter() - start) * 1000.0, 3),
                     **self._log_extra})

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("GET")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    # -------------------------------------------------------------------- routes
    def _route_get(self, segments: List[str], query: dict) -> None:
        if segments == ["health"]:
            self._send_json(200, {"status": "ok", "version": __version__})
        elif segments == ["metrics"]:
            fmt = query.get("format", ["json"])[0]
            if fmt == "prometheus":
                self._send_text(200, self.server.render_prometheus(),
                                "text/plain; version=0.0.4; charset=utf-8")
            elif fmt == "json":
                self._send_json(200, self.server.metrics())
            else:
                raise WireFormatError(f"unknown metrics format {fmt!r}; "
                                      f"expected 'json' or 'prometheus'")
        elif segments == ["graphs"]:
            self._send_json(200, self.server.graphs_document())
        elif len(segments) == 2 and segments[0] == "graphs":
            record = self.server.graph_record(segments[1])
            self._send_json(200, self.server._graph_doc(record))
        elif segments == ["jobs"]:
            self._send_json(200, self.server.jobs_document())
        elif len(segments) == 2 and segments[0] == "jobs":
            record = self.server.job_record(segments[1])
            if "wait" in query:
                try:
                    wait = float(query["wait"][0])
                except ValueError:
                    raise WireFormatError(
                        f"wait must be a number of seconds, "
                        f"got {query['wait'][0]!r}")
                self.server.wait_job(record, wait)
            include_result = query.get("include", ["summary"])[0] == "result"
            self._send_json(200, self.server.job_document(
                record, include_result=include_result))
        else:
            raise UnknownResourceError(f"no route GET {self.path!r}")

    def _route_put(self, segments: List[str], query: dict) -> None:
        if segments == ["graphs"]:
            tenant = self._tenant()
            # Quotas cover every mutating request, uploads included (reads —
            # polling, /metrics — stay free so a throttled client can still
            # collect what it already paid for).
            self.server._charge_tenant(tenant)
            content_type = (self.headers.get("Content-Type") or
                            "application/json").split(";")[0].strip()
            if content_type == "text/plain":
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                except ValueError:
                    raise WireFormatError("bad Content-Length header")
                text = self.rfile.read(max(0, length)).decode("utf-8",
                                                              errors="replace")
                graph, source = parse_edge_list(text), "edge-list"
            else:
                payload = self._read_json()
                graph, source = self.server._graph_from_payload(payload)
            fingerprint, created = self.server.register_graph(graph,
                                                              source=source)
            record = self.server.graph_record(fingerprint)
            self._send_json(201 if created else 200,
                            {**self.server._graph_doc(record),
                             "created": created, "tenant": tenant})
        else:
            raise UnknownResourceError(f"no route PUT {self.path!r}")

    def _route_post(self, segments: List[str], query: dict) -> None:
        if len(segments) == 3 and segments[0] == "graphs" \
                and segments[2] == "jobs":
            payload = self._read_json()
            document = self.server.submit_job(segments[1], payload,
                                              tenant=self._tenant())
            self._log_extra = {"job": document.get("job"),
                               "deduplicated": document.get("deduplicated",
                                                            False)}
            self._send_json(202, document)
        elif len(segments) == 3 and segments[0] == "graphs" \
                and segments[2] == "deltas":
            payload = self._read_json()
            document = self.server.apply_delta(segments[1], payload,
                                               tenant=self._tenant())
            self._log_extra = {"child": document.get("fingerprint"),
                               "created": document.get("created", False)}
            self._send_json(201 if document.get("created") else 200, document)
        elif len(segments) == 3 and segments[0] == "graphs" \
                and segments[2] == "batch":
            payload = self._read_json()
            requests = payload.get("requests")
            if not isinstance(requests, list):
                raise WireFormatError("batch body must carry a 'requests' list")
            include_result = payload.get("include") == "result"
            documents = self.server.stream_batch(
                segments[1], requests, tenant=self._tenant(),
                include_result=include_result)
            self._stream_ndjson(documents)
        elif segments == ["graphs"]:
            self._route_put(segments, query)   # POST /graphs is PUT's alias
        else:
            raise UnknownResourceError(f"no route POST {self.path!r}")

    def _stream_ndjson(self, documents: Iterable[dict]) -> None:
        """Chunked ``application/x-ndjson``: one job document per line, in
        submission order, written as each job completes."""
        self._status = 200
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for document in documents:
                line = json.dumps(document).encode("utf-8") + b"\n"
                self.wfile.write(f"{len(line):X}\r\n".encode("ascii")
                                 + line + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-stream; jobs keep running server-side
