"""Async job serving: futures, in-flight dedup, bounded backpressure — and HTTP.

:class:`JobQueue` serves :class:`~repro.engine.batch.BatchJob`\\ s over a
shared :class:`~repro.engine.batch.BatchRunner` worker pool;
:class:`AsyncSession` serves parametrised requests against one graph's
:class:`~repro.session.Session`.  Both return
:class:`concurrent.futures.Future`\\ s, coalesce identical in-flight requests,
bound their queue with ``max_pending`` backpressure, and stream results via
``map`` — see :mod:`repro.serve.queue` for the semantics and the
bit-identical-to-sequential guarantee.

:class:`ReproHTTPServer` (:mod:`repro.serve.http`) puts a real socket in
front of one :class:`JobQueue` + :class:`~repro.store.ArtifactStore` —
content-fingerprinted graph resources, job submission/long-polling, streamed
batches, per-tenant quotas and a ``/metrics`` endpoint — and
:class:`ServeClient` (:mod:`repro.serve.client`) is its stdlib client.

>>> from repro import AsyncSession, load_dataset
>>> with AsyncSession(load_dataset("caveman"), max_workers=2) as serve:
...     future = serve.submit("coreness", rounds=4)
...     result = future.result()
>>> len(result.values) > 0
True
"""

from repro.serve.client import ServeClient
from repro.serve.http import ReproHTTPServer, TokenBucket
from repro.serve.queue import AsyncSession, JobQueue, ServeStats

__all__ = ["AsyncSession", "JobQueue", "ServeStats", "ReproHTTPServer",
           "ServeClient", "TokenBucket"]
