"""repro — reproduction of "Distributed Approximate k-Core Decomposition and
Min-Max Edge Orientation: Breaking the Diameter Barrier" (Chan, Sozio, Sun; IPDPS 2019).

The package is organised as:

* :mod:`repro.graph`     — weighted undirected graph substrate, generators, datasets;
* :mod:`repro.distsim`   — synchronous LOCAL/CONGEST message-passing simulator;
* :mod:`repro.core`      — the paper's Algorithms 1-6 and the one-shot API;
* :mod:`repro.session`   — the stateful :class:`Session` facade (cached CSR views,
  Λ-grids, results and resumable elimination trajectories);
* :mod:`repro.problems`  — the problem registry (coreness / orientation / densest)
  with a uniform request/result protocol;
* :mod:`repro.engine`    — interchangeable execution engines and the batch runner;
* :mod:`repro.store`     — persistent content-addressed artifact store (trajectories
  and results survive process restarts, resumed bit-identically);
* :mod:`repro.serve`     — async job submission (futures, in-flight dedup, bounded
  backpressure) over sessions and the batch runner;
* :mod:`repro.baselines` — exact/centralized and distributed comparator algorithms;
* :mod:`repro.analysis`  — approximation-ratio metrics, invariant checks, experiment
  harness shared by the benchmarks.

Quick start
-----------
>>> from repro import Session, load_dataset
>>> session = Session(load_dataset("collab-small"))
>>> result = session.coreness(epsilon=0.5)
>>> all(result.values[v] >= 0 for v in session.graph.nodes())
True
"""

from repro._version import __version__
from repro.core.api import (
    CorenessResult,
    OrientationResult,
    approximate_coreness,
    approximate_densest_subsets,
    approximate_orientation,
)
from repro.core.densest import WeakDensestResult
from repro.engine import (
    BatchJob,
    BatchRunner,
    Engine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.errors import (
    AlgorithmError,
    ConvergenceError,
    GraphError,
    InvalidLambdaError,
    ProtocolError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    ServeError,
    SimulationError,
    StoreError,
    UnknownResourceError,
    WireFormatError,
    error_from_dict,
)
from repro.graph.csr import csr_fingerprint, graph_fingerprint
from repro.graph.datasets import list_datasets, load_dataset
from repro.graph.mmap_csr import MappedCSR, mmap_csr
from repro.graph.graph import Graph
from repro.problems import (
    Problem,
    available_problems,
    get_problem,
    register_problem,
)
from repro.serve import (
    AsyncSession,
    JobQueue,
    ReproHTTPServer,
    ServeClient,
    ServeStats,
)
from repro.session import Session, SessionStats
from repro.store import ArtifactStore

__all__ = [
    "__version__",
    "Graph",
    "load_dataset",
    "list_datasets",
    "Session",
    "SessionStats",
    "Problem",
    "get_problem",
    "register_problem",
    "available_problems",
    "approximate_coreness",
    "approximate_orientation",
    "approximate_densest_subsets",
    "CorenessResult",
    "OrientationResult",
    "WeakDensestResult",
    "Engine",
    "get_engine",
    "register_engine",
    "available_engines",
    "BatchRunner",
    "BatchJob",
    "MappedCSR",
    "mmap_csr",
    "ArtifactStore",
    "AsyncSession",
    "JobQueue",
    "ServeStats",
    "ReproHTTPServer",
    "ServeClient",
    "ReproError",
    "GraphError",
    "ProtocolError",
    "SimulationError",
    "AlgorithmError",
    "InvalidLambdaError",
    "ConvergenceError",
    "StoreError",
    "ServeError",
    "QueueFullError",
    "QuotaExceededError",
    "UnknownResourceError",
    "WireFormatError",
    "error_from_dict",
]
