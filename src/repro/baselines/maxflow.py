"""Dinic's maximum-flow algorithm (directed, real capacities).

This is the flow substrate used by the exact baselines: Goldberg's exact densest
subgraph (:mod:`repro.baselines.goldberg`) and the exact unweighted min-max
orientation (:mod:`repro.baselines.exact_orientation`).  It is written for clarity
and moderate sizes (the baselines only run on graphs up to a few thousand nodes —
the distributed algorithms themselves never need flows).

Capacities are floats; ``math.inf`` is allowed.  A small tolerance (``1e-12``)
decides whether residual capacity is usable, which is adequate for the rational
capacities the baselines construct.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import AlgorithmError

_EPS = 1e-12


@dataclass
class _Arc:
    """One directed arc of the residual network."""

    to: int
    capacity: float
    flow: float = 0.0
    reverse_index: int = -1

    @property
    def residual(self) -> float:
        return self.capacity - self.flow


class FlowNetwork:
    """A directed flow network with Dinic's max-flow and min-cut extraction."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        self._arcs: List[List[_Arc]] = []

    # ------------------------------------------------------------------ build
    def add_node(self, label: Hashable) -> int:
        """Register ``label`` (idempotent) and return its internal index."""
        if label not in self._index:
            self._index[label] = len(self._labels)
            self._labels.append(label)
            self._arcs.append([])
        return self._index[label]

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> None:
        """Add a directed arc ``u -> v`` with the given capacity (>= 0 or inf)."""
        if capacity < 0:
            raise AlgorithmError(f"capacities must be non-negative, got {capacity}")
        ui, vi = self.add_node(u), self.add_node(v)
        forward = _Arc(to=vi, capacity=capacity)
        backward = _Arc(to=ui, capacity=0.0)
        forward.reverse_index = len(self._arcs[vi])
        backward.reverse_index = len(self._arcs[ui])
        self._arcs[ui].append(forward)
        self._arcs[vi].append(backward)

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._labels)

    # ------------------------------------------------------------------ Dinic
    def max_flow(self, source: Hashable, sink: Hashable) -> float:
        """Compute the maximum ``source -> sink`` flow value (Dinic's algorithm)."""
        if source not in self._index or sink not in self._index:
            raise AlgorithmError("source and sink must be nodes of the network")
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise AlgorithmError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(s, t)
            if levels[t] < 0:
                return total
            iterators = [0] * self.num_nodes
            while True:
                pushed = self._dfs_push(s, t, math.inf, levels, iterators)
                if pushed <= _EPS:
                    break
                total += pushed

    def _bfs_levels(self, s: int, t: int) -> List[int]:
        levels = [-1] * self.num_nodes
        levels[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._arcs[u]:
                if arc.residual > _EPS and levels[arc.to] < 0:
                    levels[arc.to] = levels[u] + 1
                    queue.append(arc.to)
        return levels

    def _dfs_push(self, u: int, t: int, limit: float, levels: List[int],
                  iterators: List[int]) -> float:
        if u == t:
            return limit
        while iterators[u] < len(self._arcs[u]):
            arc = self._arcs[u][iterators[u]]
            if arc.residual > _EPS and levels[arc.to] == levels[u] + 1:
                pushed = self._dfs_push(arc.to, t, min(limit, arc.residual), levels, iterators)
                if pushed > _EPS:
                    arc.flow += pushed
                    self._arcs[arc.to][arc.reverse_index].flow -= pushed
                    return pushed
            iterators[u] += 1
        return 0.0

    # ------------------------------------------------------------------ cuts
    def min_cut_source_side(self, source: Hashable) -> Set[Hashable]:
        """Nodes reachable from ``source`` in the residual graph (call after max_flow).

        This is the (unique) *minimal* source side among all minimum cuts.
        """
        s = self._index[source]
        seen = [False] * self.num_nodes
        seen[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._arcs[u]:
                if arc.residual > _EPS and not seen[arc.to]:
                    seen[arc.to] = True
                    queue.append(arc.to)
        return {self._labels[i] for i, flag in enumerate(seen) if flag}

    def max_cut_source_side(self, sink: Hashable) -> Set[Hashable]:
        """Complement of the nodes that can reach ``sink`` in the residual graph.

        This is the (unique) *maximal* source side among all minimum cuts — the one
        the maximal-densest-subset extraction needs (Fact II.1: the maximal densest
        subgraph is unique and contains all densest subgraphs).
        """
        t = self._index[sink]
        can_reach = [False] * self.num_nodes
        can_reach[t] = True
        queue = deque([t])
        # Traverse arcs backwards: u can reach t if some arc u->x has residual > 0
        # and x can reach t.  Equivalently walk reverse arcs with residual on the
        # forward direction; using the stored reverse arcs keeps this O(V + E).
        while queue:
            x = queue.popleft()
            for arc in self._arcs[x]:
                # arc: x -> y with reverse stored at arcs[y][arc.reverse_index]
                y = arc.to
                reverse = self._arcs[y][arc.reverse_index]
                if reverse.residual > _EPS and not can_reach[y]:
                    can_reach[y] = True
                    queue.append(y)
        return {self._labels[i] for i, flag in enumerate(can_reach) if not flag}

    def flow_on(self, u: Hashable, v: Hashable) -> float:
        """Total flow currently routed on arcs ``u -> v`` (sums parallel arcs)."""
        ui, vi = self._index[u], self._index[v]
        return sum(arc.flow for arc in self._arcs[ui] if arc.to == vi and arc.capacity > 0)
