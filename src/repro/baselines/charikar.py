"""Charikar's greedy peeling — the classic 2-approximate densest subgraph baseline.

Repeatedly remove a node of minimum weighted degree and remember the prefix (in
reverse removal order) whose density is largest; the best prefix is a
2-approximation of the densest subset [Charikar 2000], and for weighted graphs the
same analysis applies.  This is the centralized counterpart of the elimination
intuition the paper builds on, and one of the comparators in experiment E4.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

from repro.errors import AlgorithmError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DensestSubsetResult:
    """A subset together with its density."""

    subset: frozenset
    density: float


def charikar_peeling(graph: Graph) -> DensestSubsetResult:
    """Greedy peeling 2-approximation of the densest subset.

    Self-loops are handled: their weight counts towards the density of every prefix
    containing the node and towards the node's degree while it is present.
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("densest subset of the empty graph is undefined")
    degrees: Dict[Hashable, float] = {v: graph.degree(v) for v in graph.nodes()}
    removed: Dict[Hashable, bool] = {v: False for v in graph.nodes()}
    heap: List[Tuple[float, tuple, Hashable]] = [(d, _key(v), v) for v, d in degrees.items()]
    heapq.heapify(heap)

    total_weight = graph.total_weight
    remaining = graph.num_nodes
    best_density = total_weight / remaining
    removal_order: List[Hashable] = []
    best_prefix_removed = 0  # number of removals after which density peaked

    current_weight = total_weight
    while remaining > 1:
        d, _, v = heapq.heappop(heap)
        if removed[v]:
            continue
        if d > degrees[v] + 1e-12:
            heapq.heappush(heap, (degrees[v], _key(v), v))
            continue
        removed[v] = True
        removal_order.append(v)
        # Removing v deletes exactly the edges incident to v that are still present,
        # whose total weight is the node's current degree.
        current_weight -= degrees[v]
        remaining -= 1
        for u, w in graph.neighbor_weights(v).items():
            if not removed[u]:
                degrees[u] -= w
                heapq.heappush(heap, (degrees[u], _key(u), u))
        density = current_weight / remaining
        if density > best_density + 1e-15:
            best_density = density
            best_prefix_removed = len(removal_order)

    survivors: Set[Hashable] = set(graph.nodes()) - set(removal_order[:best_prefix_removed])
    return DensestSubsetResult(subset=frozenset(survivors),
                               density=graph.subset_density(survivors))


def _key(node: Hashable) -> tuple:
    return (type(node).__name__, repr(node))
