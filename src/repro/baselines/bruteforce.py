"""Exhaustive-search references for tiny graphs.

These are the ground truth used by property-based tests (hypothesis generates small
random graphs, the brute force computes the exact answer, and the real algorithms
must agree / stay within their guarantees).  Everything here is exponential and
guarded by explicit size limits.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterable, Tuple

from repro.errors import AlgorithmError
from repro.graph.graph import Graph

_MAX_NODES = 16


def _check_size(graph: Graph, limit: int = _MAX_NODES) -> None:
    if graph.num_nodes > limit:
        raise AlgorithmError(
            f"brute force limited to {limit} nodes, got {graph.num_nodes}")


def _non_empty_subsets(nodes: list) -> Iterable[Tuple]:
    for r in range(1, len(nodes) + 1):
        yield from itertools.combinations(nodes, r)


def bruteforce_max_density(graph: Graph) -> float:
    """``ρ*`` by enumerating every non-empty subset."""
    _check_size(graph)
    if graph.num_nodes == 0:
        raise AlgorithmError("densest subset of the empty graph is undefined")
    nodes = list(graph.nodes())
    return max(graph.subset_density(subset) for subset in _non_empty_subsets(nodes))


def bruteforce_maximal_densest_subset(graph: Graph) -> Tuple[frozenset, float]:
    """The maximal densest subset by enumeration (largest among the densest)."""
    _check_size(graph)
    nodes = list(graph.nodes())
    best_density = -math.inf
    best_subset: Tuple = ()
    for subset in _non_empty_subsets(nodes):
        density = graph.subset_density(subset)
        if (density > best_density + 1e-12
                or (abs(density - best_density) <= 1e-12 and len(subset) > len(best_subset))):
            best_density = density
            best_subset = subset
    return frozenset(best_subset), best_density


def bruteforce_coreness(graph: Graph) -> Dict[Hashable, float]:
    """Exact coreness by enumerating subsets: c(v) = max over subsets containing v of
    the minimum weighted degree of the induced subgraph."""
    _check_size(graph, limit=12)
    nodes = list(graph.nodes())
    coreness = {v: 0.0 for v in nodes}
    for subset in _non_empty_subsets(nodes):
        members = set(subset)
        min_degree = math.inf
        for v in members:
            deg = graph.self_loop_weight(v)
            deg += sum(w for u, w in graph.neighbor_weights(v).items() if u in members)
            min_degree = min(min_degree, deg)
        for v in members:
            coreness[v] = max(coreness[v], min_degree)
    return coreness


def bruteforce_maximal_densities(graph: Graph) -> Dict[Hashable, float]:
    """Exact maximal densities r(v) by running Definition II.3 with brute-force layers."""
    from repro.graph.quotient import quotient_graph

    _check_size(graph)
    result: Dict[Hashable, float] = {}
    current = graph.copy()
    while current.num_nodes > 0:
        subset, density = bruteforce_maximal_densest_subset(current)
        for v in subset:
            result[v] = density
        current = quotient_graph(current, subset)
    return result
