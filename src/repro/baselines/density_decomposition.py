"""Exact diminishingly-dense decomposition and maximal densities (Definition II.3).

The decomposition repeatedly extracts the **maximal densest subset** of the current
quotient graph: the first layer ``S_1`` is the maximal densest subset of ``G``, the
second layer is the maximal densest subset of ``G \\ S_1`` (edges into removed
layers become self-loops), and so on until every node has been assigned.  The
*maximal density* ``r(v)`` of a node is the density of the layer it belongs to; the
sequence of layer densities is strictly decreasing (Fact II.4), ``r(v) <= c(v) <=
2 r(v)`` (Lemma III.4 / Corollary III.6), and ``max_v r(v) = ρ*``.

This exact baseline is what the approximation ratios of experiments E1/E2 are
measured against (alongside exact coreness).  It relies on the flow-based
maximal-densest-subset extraction of :mod:`repro.baselines.goldberg`, so it is meant
for graphs up to a few thousand edges; for larger graphs use the Frank–Wolfe
approximation in :mod:`repro.baselines.frank_wolfe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.baselines.goldberg import maximal_densest_subset
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.graph.quotient import quotient_graph


@dataclass(frozen=True)
class DecompositionLayer:
    """One layer ``S_i`` of the diminishingly-dense decomposition."""

    index: int              #: 1-based layer index
    members: frozenset      #: the nodes of the layer
    density: float          #: ``ρ_{G_i}(S_i)`` — the maximal density of its members


@dataclass(frozen=True)
class DenseDecomposition:
    """The full decomposition plus the per-node maximal densities."""

    layers: Tuple[DecompositionLayer, ...]
    maximal_density: Dict[Hashable, float]

    @property
    def num_layers(self) -> int:
        """Number of layers ``k`` (``B_k = V``)."""
        return len(self.layers)

    def layer_of(self, node: Hashable) -> DecompositionLayer:
        """The layer containing ``node``."""
        for layer in self.layers:
            if node in layer.members:
                return layer
        raise AlgorithmError(f"node {node!r} is not covered by the decomposition")


def diminishingly_dense_decomposition(graph: Graph, *, max_layers: int = 10_000,
                                      ) -> DenseDecomposition:
    """Compute the exact diminishingly-dense decomposition of ``graph``."""
    if graph.num_nodes == 0:
        raise AlgorithmError("the decomposition of the empty graph is undefined")
    layers: List[DecompositionLayer] = []
    maximal_density: Dict[Hashable, float] = {}
    current = graph.copy()
    index = 0
    while current.num_nodes > 0:
        index += 1
        if index > max_layers:
            raise AlgorithmError("decomposition exceeded the maximum number of layers")
        result = maximal_densest_subset(current)
        members = set(result.subset)
        if not members:
            # Degenerate guard (zero-weight leftover): everything remaining is one layer.
            members = set(current.nodes())
        density = result.density
        layers.append(DecompositionLayer(index=index, members=frozenset(members),
                                         density=density))
        for v in members:
            maximal_density[v] = density
        current = quotient_graph(current, members)
    return DenseDecomposition(layers=tuple(layers), maximal_density=maximal_density)


def maximal_densities(graph: Graph) -> Dict[Hashable, float]:
    """Shorthand: the exact maximal density ``r(v)`` for every node."""
    return dict(diminishingly_dense_decomposition(graph).maximal_density)


def check_strictly_decreasing(decomposition: DenseDecomposition, *, tol: float = 1e-9) -> bool:
    """Fact II.4 — whether the layer densities strictly decrease (up to float tolerance)."""
    densities = [layer.density for layer in decomposition.layers]
    return all(a > b + tol or (a > b - tol and a >= b) for a, b in zip(densities, densities[1:])) \
        and all(a >= b - tol for a, b in zip(densities, densities[1:]))
