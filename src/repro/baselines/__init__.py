"""Centralized / exact and distributed comparator algorithms."""

from repro.baselines.bahmani import BahmaniResult, bahmani_densest_subset
from repro.baselines.barenboim_elkin import (
    HPartitionResult,
    h_partition_orientation,
    two_phase_orientation,
)
from repro.baselines.bruteforce import (
    bruteforce_coreness,
    bruteforce_max_density,
    bruteforce_maximal_densest_subset,
    bruteforce_maximal_densities,
)
from repro.baselines.charikar import DensestSubsetResult, charikar_peeling
from repro.baselines.density_decomposition import (
    DenseDecomposition,
    DecompositionLayer,
    check_strictly_decreasing,
    diminishingly_dense_decomposition,
    maximal_densities,
)
from repro.baselines.exact_kcore import (
    coreness,
    coreness_unweighted,
    coreness_weighted,
    degeneracy,
    k_core_subgraph,
)
from repro.baselines.exact_orientation import (
    exact_orientation_bruteforce,
    exact_orientation_unweighted,
    greedy_orientation,
    lp_lower_bound,
    optimal_minmax_value,
)
from repro.baselines.frank_wolfe import FrankWolfeResult, frank_wolfe_densities
from repro.baselines.goldberg import maximal_densest_subset, maximum_density
from repro.baselines.lp import (
    LPResult,
    solve_densest_lp,
    solve_orientation_lp,
    verify_strong_duality,
)
from repro.baselines.maxflow import FlowNetwork
from repro.baselines.montresor import MontresorResult, montresor_kcore
from repro.baselines.sarma import SarmaResult, sarma_densest_subset

__all__ = [
    "BahmaniResult",
    "bahmani_densest_subset",
    "HPartitionResult",
    "h_partition_orientation",
    "two_phase_orientation",
    "bruteforce_coreness",
    "bruteforce_max_density",
    "bruteforce_maximal_densest_subset",
    "bruteforce_maximal_densities",
    "DensestSubsetResult",
    "charikar_peeling",
    "DenseDecomposition",
    "DecompositionLayer",
    "check_strictly_decreasing",
    "diminishingly_dense_decomposition",
    "maximal_densities",
    "coreness",
    "coreness_unweighted",
    "coreness_weighted",
    "degeneracy",
    "k_core_subgraph",
    "exact_orientation_bruteforce",
    "exact_orientation_unweighted",
    "greedy_orientation",
    "lp_lower_bound",
    "optimal_minmax_value",
    "FrankWolfeResult",
    "frank_wolfe_densities",
    "maximal_densest_subset",
    "maximum_density",
    "LPResult",
    "solve_densest_lp",
    "solve_orientation_lp",
    "verify_strong_duality",
    "FlowNetwork",
    "MontresorResult",
    "montresor_kcore",
    "SarmaResult",
    "sarma_densest_subset",
]
