"""Exact (weighted) coreness values — the centralized baseline.

The coreness ``c(v)`` is the largest ``k`` such that ``v`` belongs to a subgraph of
minimum weighted degree at least ``k`` (Section I).  The classic peeling algorithm
computes all coreness values exactly:

* repeatedly remove a node of minimum weighted degree in the remaining graph;
* the coreness of the removed node is the maximum, over the removals so far, of the
  minimum degree observed at removal time (the running maximum makes the value
  monotone along the peeling order, which is what the definition requires).

For unit weights this is Batagelj–Zaversnik's ``O(m)`` bucket algorithm
(:func:`coreness_unweighted`); for general weights a heap with lazy deletions is
used (:func:`coreness_weighted`), ``O(m log n)``.  Self-loops contribute their
weight to their endpoint's degree for as long as the node is present (the convention
quotient graphs need).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Tuple

from repro.errors import AlgorithmError
from repro.graph.graph import Graph


def coreness_weighted(graph: Graph) -> Dict[Hashable, float]:
    """Exact weighted coreness for every node (heap-based peeling)."""
    degrees: Dict[Hashable, float] = {v: graph.degree(v) for v in graph.nodes()}
    removed: Dict[Hashable, bool] = {v: False for v in graph.nodes()}
    coreness: Dict[Hashable, float] = {}
    heap: List[Tuple[float, Hashable]] = [(d, _key(v), v) for v, d in degrees.items()]  # type: ignore[misc]
    heapq.heapify(heap)
    running_max = 0.0
    remaining = graph.num_nodes
    while remaining > 0:
        d, _, v = heapq.heappop(heap)
        if removed[v]:
            continue
        if d > degrees[v] + 1e-12:
            # Stale heap entry; the node's degree has decreased since insertion.
            heapq.heappush(heap, (degrees[v], _key(v), v))
            continue
        removed[v] = True
        remaining -= 1
        running_max = max(running_max, degrees[v])
        coreness[v] = running_max
        for u, w in graph.neighbor_weights(v).items():
            if not removed[u]:
                degrees[u] -= w
                heapq.heappush(heap, (degrees[u], _key(u), u))
    return coreness


def coreness_unweighted(graph: Graph) -> Dict[Hashable, int]:
    """Exact coreness for unit-weight graphs (Batagelj–Zaversnik bucket peeling).

    Raises :class:`AlgorithmError` if the graph is not unit-weighted; self-loops are
    rejected as well (use :func:`coreness_weighted` for quotient graphs).
    """
    if not graph.is_unit_weighted():
        raise AlgorithmError("coreness_unweighted requires unit edge weights")
    for v in graph.nodes():
        if graph.self_loop_weight(v) > 0:
            raise AlgorithmError("coreness_unweighted does not support self-loops")
    degrees: Dict[Hashable, int] = {v: sum(1 for _ in graph.neighbors(v)) for v in graph.nodes()}
    max_degree = max(degrees.values(), default=0)
    buckets: List[set] = [set() for _ in range(max_degree + 1)]
    for v, d in degrees.items():
        buckets[d].add(v)
    coreness: Dict[Hashable, int] = {}
    removed: set = set()
    current = 0
    running_max = 0
    processed = 0
    n = graph.num_nodes
    while processed < n:
        while current <= max_degree and not buckets[current]:
            current += 1
        if current > max_degree:
            break
        v = buckets[current].pop()
        removed.add(v)
        processed += 1
        running_max = max(running_max, degrees[v])
        coreness[v] = running_max
        for u in graph.neighbors(v):
            if u in removed:
                continue
            d = degrees[u]
            buckets[d].discard(u)
            degrees[u] = d - 1
            buckets[d - 1].add(u)
        current = max(0, current - 1)
    return coreness


def coreness(graph: Graph) -> Dict[Hashable, float]:
    """Exact coreness, dispatching to the bucket or heap algorithm as appropriate."""
    has_loops = any(graph.self_loop_weight(v) > 0 for v in graph.nodes())
    if graph.is_unit_weighted() and not has_loops:
        return {v: float(c) for v, c in coreness_unweighted(graph).items()}
    return coreness_weighted(graph)


def degeneracy(graph: Graph) -> float:
    """The (weighted) degeneracy: the maximum coreness over all nodes (0 for empty graphs)."""
    values = coreness(graph)
    return max(values.values(), default=0.0)


def k_core_subgraph(graph: Graph, k: float) -> set:
    """The node set of the (weighted) ``k``-core (possibly empty)."""
    values = coreness(graph)
    return {v for v, c in values.items() if c >= k - 1e-12}


def _key(node: Hashable):
    """Deterministic heap tie-breaker for heterogeneous node labels."""
    return (type(node).__name__, repr(node))
