"""Frank–Wolfe approximation of the maximal densities (Danisch, Chan, Sozio; WWW'17).

The maximal densities ``r(v)`` of the diminishingly-dense decomposition are the node
loads of the (unique) optimal solution of the quadratic program

    minimise  Σ_v load(v)²   subject to   α_{e,u} + α_{e,v} = w_e,  α >= 0,
    where load(u) = Σ_{e ∋ u} α_{e,u},

i.e. every edge splits its weight between its endpoints so as to make the load
vector as balanced as possible.  The Frank–Wolfe method solves it with extremely
simple iterations: in iteration ``k`` every edge sends its whole weight to its
currently lighter endpoint (the linear-minimisation oracle), and the running
solution takes a convex combination with step size ``2 / (k + 2)``.

After ``K`` iterations the loads converge to ``r(v)`` at a ``O(1/K)`` rate; this is
the scalable stand-in for the exact flow-based decomposition on graphs where the
latter is too slow (it is also an interesting comparison point for E1, since the
paper's surviving numbers approximate the same quantity from above).

The implementation is fully vectorised over the edge list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class FrankWolfeResult:
    """Approximate maximal densities after a number of Frank–Wolfe iterations."""

    loads: Dict[Hashable, float]   #: approximate ``r(v)`` per node
    iterations: int                #: number of iterations performed
    max_density_estimate: float    #: max load = estimate of ρ*

    def value_of(self, node: Hashable) -> float:
        """Approximate maximal density of ``node``."""
        return self.loads[node]


def frank_wolfe_densities(graph: Graph, iterations: int = 100) -> FrankWolfeResult:
    """Run ``iterations`` Frank–Wolfe steps and return the approximate ``r(v)``.

    Self-loops are handled by permanently charging their weight to their endpoint
    (they have no freedom in the program).
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("maximal densities of the empty graph are undefined")
    if iterations < 1:
        raise AlgorithmError(f"iterations must be >= 1, got {iterations}")

    nodes = list(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)

    endpoints_u = []
    endpoints_v = []
    weights = []
    loop_load = np.zeros(n, dtype=np.float64)
    for u, v, w in graph.edges():
        if u == v:
            loop_load[index[u]] += w
            continue
        endpoints_u.append(index[u])
        endpoints_v.append(index[v])
        weights.append(w)
    eu = np.asarray(endpoints_u, dtype=np.int64)
    ev = np.asarray(endpoints_v, dtype=np.int64)
    w_arr = np.asarray(weights, dtype=np.float64)
    m = len(w_arr)

    # alpha[i] = fraction of edge i's weight currently assigned to endpoint ``u``.
    alpha = np.full(m, 0.5, dtype=np.float64)

    def loads_from(alpha_vec: np.ndarray) -> np.ndarray:
        loads = loop_load.copy()
        if m:
            np.add.at(loads, eu, alpha_vec * w_arr)
            np.add.at(loads, ev, (1.0 - alpha_vec) * w_arr)
        return loads

    for k in range(iterations):
        loads = loads_from(alpha)
        if m == 0:
            break
        # Linear-minimisation oracle: each edge sends everything to its lighter endpoint
        # (ties split evenly, which keeps the iteration deterministic and symmetric).
        lighter_u = loads[eu] < loads[ev]
        heavier_u = loads[eu] > loads[ev]
        direction = np.where(lighter_u, 1.0, np.where(heavier_u, 0.0, 0.5))
        step = 2.0 / (k + 3.0)
        alpha = (1.0 - step) * alpha + step * direction

    final_loads = loads_from(alpha)
    loads_map = {nodes[i]: float(final_loads[i]) for i in range(n)}
    return FrankWolfeResult(loads=loads_map, iterations=iterations,
                            max_density_estimate=float(final_loads.max(initial=0.0)))
