"""Exact densest subset via maximum flow (Goldberg-style construction).

The optimisation ``max_{S ≠ ∅} w(E(S)) / |S|`` is solved with Dinkelbach-style
iterations over the parametric problem ``max_S [w(E(S)) − ρ·|S|]``, each instance of
which reduces to a minimum cut in the *edge–node* network:

* a node for every edge ``e`` and every vertex ``v`` plus a source ``s``/sink ``t``;
* arcs ``s → e`` with capacity ``w_e``, arcs ``e → u`` (for each endpoint ``u`` of
  ``e``) with infinite capacity, arcs ``v → t`` with capacity ``ρ``.

For a cut with source side ``A``, an edge-node can be on the source side only if all
its endpoints are, so ``cut = W − w(E(S)) + ρ|S|`` with ``S = A ∩ V``; minimising the
cut maximises ``w(E(S)) − ρ|S|``.  Self-loops are single-endpoint edges and fit the
same construction.

Starting from ``ρ = ρ(V)`` and repeatedly replacing ``ρ`` by the density of the best
``S`` found strictly improves ρ and terminates at the optimum (Dinkelbach); at the
optimum the *maximal* min-cut source side yields the **maximal densest subset**,
which is what the diminishingly-dense decomposition (Definition II.3) peels off.
"""

from __future__ import annotations

import math
from typing import Hashable, Set, Tuple

from repro.baselines.charikar import DensestSubsetResult
from repro.baselines.maxflow import FlowNetwork
from repro.errors import AlgorithmError
from repro.graph.graph import Graph

_REL_TOL = 1e-9
_MAX_ITERATIONS = 200


def _best_subset_at(graph: Graph, rho: float) -> Set[Hashable]:
    """The maximal maximiser of ``w(E(S)) − ρ|S|`` (may be empty)."""
    network = FlowNetwork()
    source, sink = ("s", "source"), ("t", "sink")
    network.add_node(source)
    network.add_node(sink)
    for v in graph.nodes():
        network.add_node(("v", v))
        network.add_edge(("v", v), sink, rho)
    for idx, (u, v, w) in enumerate(graph.edges()):
        edge_node = ("e", idx)
        network.add_edge(source, edge_node, w)
        network.add_edge(edge_node, ("v", u), math.inf)
        if v != u:
            network.add_edge(edge_node, ("v", v), math.inf)
    network.max_flow(source, sink)
    side = network.max_cut_source_side(sink)
    return {label[1] for label in side if isinstance(label, tuple) and label[0] == "v"}


def maximal_densest_subset(graph: Graph) -> DensestSubsetResult:
    """The (unique) maximal densest subset and its density ``ρ*`` (Fact II.1).

    Dinkelbach iterations: evaluate the parametric cut at the current density; if a
    strictly denser subset exists it becomes the new incumbent, otherwise the
    incumbent density is optimal and one final maximal-cut evaluation at ``ρ*``
    returns the maximal optimiser.
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("densest subset of the empty graph is undefined")
    if graph.total_weight == 0:
        # Every subset has density 0; the maximal densest subset is all of V.
        return DensestSubsetResult(subset=frozenset(graph.nodes()), density=0.0)

    current_set: Set[Hashable] = set(graph.nodes())
    current_density = graph.subset_density(current_set)
    for _ in range(_MAX_ITERATIONS):
        candidate = _best_subset_at(graph, current_density * (1.0 + _REL_TOL))
        if not candidate:
            break
        candidate_density = graph.subset_density(candidate)
        if candidate_density <= current_density * (1.0 + _REL_TOL):
            break
        current_set, current_density = candidate, candidate_density
    else:  # pragma: no cover - defensive: Dinkelbach always terminates quickly
        raise AlgorithmError("densest-subset iterations failed to converge")

    # One final evaluation *at* the optimum to get the maximal optimiser.
    maximal = _best_subset_at(graph, current_density * (1.0 - _REL_TOL))
    if maximal:
        maximal_density = graph.subset_density(maximal)
        if maximal_density >= current_density * (1.0 - _REL_TOL):
            return DensestSubsetResult(subset=frozenset(maximal), density=maximal_density)
    return DensestSubsetResult(subset=frozenset(current_set), density=current_density)


def maximum_density(graph: Graph) -> float:
    """``ρ*`` — the maximum subset density (shorthand for the result's density)."""
    return maximal_densest_subset(graph).density
