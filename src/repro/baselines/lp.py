"""The primal/dual linear programs of Section II, solved with :mod:`scipy.optimize`.

The min-max orientation LP (primal) and the densest-subset LP (dual) are:

    min ρ                                   max Σ_e w_e x_e
    s.t. ρ >= Σ_{e ∋ u} α_{e,u}   ∀u        s.t. x_e <= y_u        ∀u ∈ e
         Σ_{u ∈ e} α_{e,u} >= w_e ∀e             Σ_u y_u  = 1
         α >= 0                                   x, y >= 0

Strong duality makes both optima equal to the maximum subset density ``ρ*``
(Charikar's LP).  These solvers exist to *cross-check* the combinatorial baselines
(flow-based densest subset, Frank–Wolfe loads) on small and medium graphs, and to
demonstrate the primal-dual relationship the paper's algorithm exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import AlgorithmError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class LPResult:
    """Optimum value and (primal) variable values of one of the Section-II LPs."""

    value: float
    variables: Dict[str, np.ndarray]


def _edge_list(graph: Graph) -> Tuple[List[Tuple[Hashable, Hashable, float]], List[Hashable]]:
    edges = [(u, v, w) for u, v, w in graph.edges()]
    nodes = list(graph.nodes())
    return edges, nodes


def solve_orientation_lp(graph: Graph) -> LPResult:
    """Solve the fractional min-max orientation LP (the primal).

    Variables: ``α_{e,u}`` for each incidence (self-loops have a single incidence)
    plus the objective variable ``ρ``.
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("LP needs a non-empty graph")
    edges, nodes = _edge_list(graph)
    node_index = {v: i for i, v in enumerate(nodes)}
    incidences: List[Tuple[int, int]] = []   # (edge index, node index)
    for e_idx, (u, v, _) in enumerate(edges):
        incidences.append((e_idx, node_index[u]))
        if v != u:
            incidences.append((e_idx, node_index[v]))
    num_alpha = len(incidences)
    num_vars = num_alpha + 1   # α's then ρ
    rho_col = num_alpha

    # Objective: minimise ρ.
    c = np.zeros(num_vars)
    c[rho_col] = 1.0

    # Constraint 1 (per node): Σ_{e ∋ u} α_{e,u} - ρ <= 0.
    a_ub = np.zeros((len(nodes), num_vars))
    for col, (_, n_idx) in enumerate(incidences):
        a_ub[n_idx, col] = 1.0
    a_ub[:, rho_col] = -1.0
    b_ub = np.zeros(len(nodes))

    # Constraint 2 (per edge): Σ_{u ∈ e} α_{e,u} >= w_e  →  -Σ α <= -w_e.
    a_edge = np.zeros((len(edges), num_vars))
    for col, (e_idx, _) in enumerate(incidences):
        a_edge[e_idx, col] = -1.0
    b_edge = -np.array([w for _, _, w in edges])

    result = linprog(c, A_ub=np.vstack([a_ub, a_edge]), b_ub=np.concatenate([b_ub, b_edge]),
                     bounds=[(0, None)] * num_vars, method="highs")
    if not result.success:
        raise AlgorithmError(f"orientation LP failed: {result.message}")
    return LPResult(value=float(result.fun),
                    variables={"alpha": result.x[:num_alpha], "rho": result.x[rho_col:]})


def solve_densest_lp(graph: Graph) -> LPResult:
    """Solve Charikar's densest-subset LP (the dual)."""
    if graph.num_nodes == 0:
        raise AlgorithmError("LP needs a non-empty graph")
    edges, nodes = _edge_list(graph)
    node_index = {v: i for i, v in enumerate(nodes)}
    num_edges, num_nodes = len(edges), len(nodes)
    num_vars = num_edges + num_nodes   # x_e then y_u

    # Objective: maximise Σ w_e x_e  →  minimise -Σ w_e x_e.
    c = np.zeros(num_vars)
    for e_idx, (_, _, w) in enumerate(edges):
        c[e_idx] = -w

    # x_e <= y_u for each incidence.
    rows: List[np.ndarray] = []
    for e_idx, (u, v, _) in enumerate(edges):
        for endpoint in {u, v}:
            row = np.zeros(num_vars)
            row[e_idx] = 1.0
            row[num_edges + node_index[endpoint]] = -1.0
            rows.append(row)
    a_ub = np.vstack(rows) if rows else np.zeros((0, num_vars))
    b_ub = np.zeros(len(rows))

    # Σ y_u = 1.
    a_eq = np.zeros((1, num_vars))
    a_eq[0, num_edges:] = 1.0
    b_eq = np.array([1.0])

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                     bounds=[(0, None)] * num_vars, method="highs")
    if not result.success:
        raise AlgorithmError(f"densest-subset LP failed: {result.message}")
    return LPResult(value=float(-result.fun),
                    variables={"x": result.x[:num_edges], "y": result.x[num_edges:]})


def verify_strong_duality(graph: Graph, *, tol: float = 1e-6) -> bool:
    """Whether the two LPs have (numerically) equal optima on ``graph``."""
    primal = solve_orientation_lp(graph)
    dual = solve_densest_lp(graph)
    scale = max(1.0, abs(primal.value), abs(dual.value))
    return abs(primal.value - dual.value) <= tol * scale
