"""Montresor, De Pellegrini & Miorandi's distributed k-core decomposition.

This is the distributed *exact* comparator the paper starts from (reference [23]):
the same compact elimination procedure, but run until the surviving numbers stop
changing — at which point they equal the exact coreness values.  Convergence can
take Θ(n) rounds even on constant-diameter graphs (footnote 2 of the paper), which
is exactly the gap the paper's T = O(log n) early stopping closes at the price of a
2(1+ε) factor.

The implementation reuses the vectorised engine of :mod:`repro.core.surviving` and
simply iterates until a fixed point, reporting how many rounds that took.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

import numpy as np

from repro.core.surviving import iterate_to_fixed_point
from repro.errors import AlgorithmError
from repro.graph.csr import graph_to_csr
from repro.graph.graph import Graph


@dataclass(frozen=True)
class MontresorResult:
    """Exact coreness values plus the number of rounds the protocol needed."""

    coreness: Dict[Hashable, float]
    rounds_to_convergence: int

    def value_of(self, node: Hashable) -> float:
        """Exact coreness of ``node`` as computed by the converged protocol."""
        return self.coreness[node]


def montresor_kcore(graph: Graph, *, max_rounds: int | None = None,
                    tol: float = 1e-12) -> MontresorResult:
    """Run the compact elimination procedure to convergence (exact coreness).

    Parameters
    ----------
    max_rounds:
        Safety cap; defaults to ``n + 1`` which is always sufficient (each round
        before convergence strictly decreases some node's surviving number through
        a finite lattice of attainable values).
    tol:
        Fixed-point tolerance on the surviving-number vector.
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("k-core decomposition of the empty graph is undefined")
    del tol  # the fixed point is detected exactly (the iteration is on a finite lattice)
    csr = graph_to_csr(graph)
    values, rounds = iterate_to_fixed_point(csr, max_rounds=max_rounds)
    labels = csr.labels()
    coreness = {labels[i]: float(values[i]) for i in range(csr.num_nodes)}
    return MontresorResult(coreness=coreness, rounds_to_convergence=max(1, rounds))
