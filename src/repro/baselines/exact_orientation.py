"""Exact and heuristic baselines for the min-max edge orientation problem.

* :func:`lp_lower_bound` — the LP-relaxation optimum, which by the duality argument
  of Section II equals the maximum subset density ``ρ*`` (computed exactly with the
  flow-based densest-subset baseline).  It is a lower bound on every (integral)
  orientation's objective and is the yardstick the paper's approximation guarantee
  is stated against.
* :func:`exact_orientation_unweighted` — for unit-weight graphs the integral optimum
  is ``⌈ρ⌉``-like and computable in polynomial time; we binary-search the smallest
  integer ``k`` for which an orientation with maximum in-degree ``<= k`` exists,
  testing feasibility with a max-flow (edges are unit jobs, nodes are machines of
  capacity ``k``).
* :func:`exact_orientation_bruteforce` — exhaustive search over all ``2^m``
  orientations, for tiny (property-test sized) weighted instances.
* :func:`greedy_orientation` — the natural centralized heuristic that assigns every
  edge (in descending weight order) to its currently lighter endpoint.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.baselines.goldberg import maximum_density
from repro.baselines.maxflow import FlowNetwork
from repro.core.orientation import Orientation, canonical_edge
from repro.errors import AlgorithmError
from repro.graph.graph import Graph


def lp_lower_bound(graph: Graph) -> float:
    """The LP-relaxation optimum ``ρ*`` (maximum subset density) — a lower bound."""
    if graph.num_nodes == 0:
        raise AlgorithmError("the orientation problem needs a non-empty graph")
    return maximum_density(graph)


def _orientation_from_assignment(graph: Graph, owner_of: Dict[Tuple, Hashable]) -> Orientation:
    in_weight: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes()}
    loop_weight: Dict[Hashable, float] = {}
    assignment = {}
    for u, v, w in graph.edges():
        if u == v:
            loop_weight[u] = loop_weight.get(u, 0.0) + w
            in_weight[u] += w
            continue
        key = canonical_edge(u, v)
        owner = owner_of[key]
        assignment[key] = owner
        in_weight[owner] += w
    return Orientation(assignment=assignment, in_weight=in_weight, loop_weight=loop_weight)


def greedy_orientation(graph: Graph) -> Orientation:
    """Assign edges (heaviest first) to their currently lighter endpoint."""
    edges = sorted((e for e in graph.edges() if e[0] != e[1]), key=lambda e: -e[2])
    load: Dict[Hashable, float] = {v: graph.self_loop_weight(v) for v in graph.nodes()}
    owner_of: Dict[Tuple, Hashable] = {}
    for u, v, w in edges:
        owner = u if load[u] <= load[v] else v
        owner_of[canonical_edge(u, v)] = owner
        load[owner] += w
    return _orientation_from_assignment(graph, owner_of)


def _feasible_orientation_unweighted(graph: Graph, k: int) -> Optional[Dict[Tuple, Hashable]]:
    """An orientation with maximum in-degree <= k, or None if none exists (unit weights)."""
    network = FlowNetwork()
    source, sink = ("s",), ("t",)
    network.add_node(source)
    network.add_node(sink)
    non_loop_edges = [(u, v) for u, v, _ in graph.edges() if u != v]
    for v in graph.nodes():
        network.add_edge(("v", v), sink, float(k))
    for idx, (u, v) in enumerate(non_loop_edges):
        network.add_edge(source, ("e", idx), 1.0)
        network.add_edge(("e", idx), ("v", u), 1.0)
        network.add_edge(("e", idx), ("v", v), 1.0)
    value = network.max_flow(source, sink)
    if value < len(non_loop_edges) - 1e-9:
        return None
    owner_of: Dict[Tuple, Hashable] = {}
    for idx, (u, v) in enumerate(non_loop_edges):
        flow_u = network.flow_on(("e", idx), ("v", u))
        owner = u if flow_u > 0.5 else v
        owner_of[canonical_edge(u, v)] = owner
    return owner_of


def exact_orientation_unweighted(graph: Graph) -> Orientation:
    """The exact optimum for unit-weight graphs (binary search + max-flow)."""
    if graph.num_nodes == 0:
        raise AlgorithmError("the orientation problem needs a non-empty graph")
    if not graph.is_unit_weighted():
        raise AlgorithmError("exact_orientation_unweighted requires unit edge weights")
    max_loop = max((graph.self_loop_weight(v) for v in graph.nodes()), default=0.0)
    lo, hi = 0, max(1, int(math.ceil(max(graph.degree(v) for v in graph.nodes()))))
    best: Optional[Dict[Tuple, Hashable]] = None
    while lo < hi:
        mid = (lo + hi) // 2
        candidate = _feasible_orientation_unweighted(graph, mid)
        if candidate is not None:
            best = candidate
            hi = mid
        else:
            lo = mid + 1
    if best is None:
        best = _feasible_orientation_unweighted(graph, lo)
        if best is None:
            raise AlgorithmError("failed to find any feasible orientation")  # pragma: no cover
    orientation = _orientation_from_assignment(graph, best)
    # Self-loops are forced onto their endpoint and may dominate the objective.
    del max_loop
    return orientation


def exact_orientation_bruteforce(graph: Graph, *, max_edges: int = 18) -> Orientation:
    """Exhaustive optimum over all orientations (weighted); only for tiny graphs."""
    non_loop_edges = [(u, v, w) for u, v, w in graph.edges() if u != v]
    if len(non_loop_edges) > max_edges:
        raise AlgorithmError(
            f"brute force limited to {max_edges} edges, got {len(non_loop_edges)}")
    base_load = {v: graph.self_loop_weight(v) for v in graph.nodes()}
    best_value = math.inf
    best_owner: Optional[Dict[Tuple, Hashable]] = None
    for choice in itertools.product((0, 1), repeat=len(non_loop_edges)):
        load = dict(base_load)
        owner_of: Dict[Tuple, Hashable] = {}
        for bit, (u, v, w) in zip(choice, non_loop_edges):
            owner = u if bit == 0 else v
            owner_of[canonical_edge(u, v)] = owner
            load[owner] += w
        value = max(load.values(), default=0.0)
        if value < best_value - 1e-15:
            best_value = value
            best_owner = owner_of
    assert best_owner is not None or not non_loop_edges
    if best_owner is None:
        best_owner = {}
    return _orientation_from_assignment(graph, best_owner)


def optimal_minmax_value(graph: Graph) -> float:
    """The exact optimal objective value, using the cheapest applicable method.

    Unit-weight graphs use the flow-based exact algorithm; small weighted graphs use
    brute force; anything else falls back to the LP lower bound (and the caller
    should treat the value as a lower bound only).
    """
    non_loop = sum(1 for u, v, _ in graph.edges() if u != v)
    if graph.is_unit_weighted():
        return exact_orientation_unweighted(graph).max_in_weight
    if non_loop <= 18:
        return exact_orientation_bruteforce(graph).max_in_weight
    return lp_lower_bound(graph)
