"""Bahmani, Kumar & Vassilvitskii's streaming/MapReduce densest subgraph.

Reference [4] of the paper and the direct inspiration for its analysis: in each
*pass* the algorithm computes the density ``ρ`` of the current surviving subgraph
and removes every node whose weighted degree (within the surviving subgraph) is
below ``2(1+ε)·ρ``; the densest intermediate subgraph seen across passes is a
``2(1+ε)``-approximation of the densest subset, and the number of passes is
``O(log_{1+ε} n)``.

Note the key difference from the paper's distributed algorithm: each pass needs the
**global** density of the surviving subgraph, which in a distributed implementation
costs Ω(D) rounds per pass.  :func:`bahmani_densest_subset` returns the number of
passes so experiment E7 can convert it into the round cost of a naive distributed
port (see :mod:`repro.baselines.sarma`).

Each pass recomputes the surviving subgraph's weight and degrees from scratch; with
``O(log_{1+ε} n)`` passes this keeps the implementation simple and obviously correct
at ``O(m log n)`` total cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Set

from repro.errors import AlgorithmError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class BahmaniResult:
    """Best subgraph found by the pass-based peeling."""

    subset: frozenset
    density: float
    passes: int
    epsilon: float


def _surviving_degrees(graph: Graph, surviving: Set[Hashable]) -> Dict[Hashable, float]:
    """Weighted degrees restricted to the surviving subgraph (self-loops included)."""
    degrees: Dict[Hashable, float] = {}
    for v in surviving:
        total = graph.self_loop_weight(v)
        for u, w in graph.neighbor_weights(v).items():
            if u in surviving:
                total += w
        degrees[v] = total
    return degrees


def bahmani_densest_subset(graph: Graph, epsilon: float = 0.5) -> BahmaniResult:
    """Run the pass-based ``2(1+ε)``-approximation of the densest subset."""
    if graph.num_nodes == 0:
        raise AlgorithmError("densest subset of the empty graph is undefined")
    if epsilon <= 0:
        raise AlgorithmError(f"epsilon must be positive, got {epsilon}")

    surviving: Set[Hashable] = set(graph.nodes())
    best_subset = frozenset(surviving)
    best_density = graph.subset_density(surviving)
    passes = 0
    threshold_factor = 2.0 * (1.0 + epsilon)

    while surviving:
        passes += 1
        density = graph.subset_density(surviving)
        if density > best_density:
            best_density = density
            best_subset = frozenset(surviving)
        degrees = _surviving_degrees(graph, surviving)
        threshold = threshold_factor * density
        to_remove = {v for v in surviving if degrees[v] < threshold}
        if not to_remove:
            # Can only happen on degenerate inputs (e.g. zero-weight subgraphs where
            # the threshold is 0); force progress by removing a minimum-degree node.
            to_remove = {min(surviving, key=lambda v: (degrees[v], repr(v)))}
        surviving -= to_remove

    return BahmaniResult(subset=best_subset, density=best_density, passes=passes,
                         epsilon=epsilon)
