"""Barenboim–Elkin-style two-phase orientation baseline (2(2+ε)-approximation).

Reference [5] of the paper.  The original algorithm computes an H-partition: given a
known upper bound ``A`` on the maximum density/arboricity, repeatedly peel — in
parallel rounds — every node whose remaining degree is at most ``(2+ε)·A``; a node
removed in round ``i`` gets level ``i``, and each of its (at most ``(2+ε)·A``) edges
towards same-or-higher levels is assigned to it.  This yields maximum in-degree at
most ``(2+ε)·A`` in ``O(log n / ε)`` rounds.

The paper's point (Section I-A) is about where ``A`` comes from: learning the true
maximum density costs Ω(D) rounds, so Barenboim–Elkin's first phase estimates it
with (what amounts to) the surviving numbers, and using that estimate degrades the
guarantee to ``2(2+ε)`` — a factor ~2 worse than the paper's primal-dual approach,
which needs no second phase at all.

Two variants are provided for experiment E7:

* :func:`two_phase_orientation` — the honest distributed variant: phase 1 runs the
  compact elimination for ``T`` rounds and uses ``A := max_v b_v`` *of the node's own
  T-hop neighbourhood proxy* (here: the global maximum of the phase-1 values, which
  is the most favourable interpretation for the baseline); phase 2 peels with
  threshold ``(2+ε)·A``.
* :func:`h_partition_orientation` — the idealised variant where the exact maximum
  density ρ* is magically known (the centralized comparator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.orientation import Orientation, canonical_edge
from repro.core.rounds import rounds_for_epsilon
from repro.core.surviving import compact_elimination
from repro.errors import AlgorithmError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class HPartitionResult:
    """Orientation plus the peeling metadata of the H-partition."""

    orientation: Orientation
    levels: Dict[Hashable, int]      #: peeling level of every node
    num_levels: int                  #: number of peeling rounds used
    threshold: float                 #: the per-round degree threshold (2+ε)·A
    phase1_rounds: int               #: rounds spent estimating A (0 for the idealised variant)

    @property
    def max_in_weight(self) -> float:
        """Objective value of the produced orientation."""
        return self.orientation.max_in_weight

    @property
    def total_rounds(self) -> int:
        """Total modelled round complexity (phase 1 + one round per level)."""
        return self.phase1_rounds + self.num_levels


def _h_partition(graph: Graph, threshold: float, *, max_levels: Optional[int] = None,
                 ) -> Tuple[Dict[Hashable, int], int]:
    """Parallel peeling with a fixed degree threshold; returns levels and #rounds.

    Nodes still present whose remaining weighted degree is ``<= threshold`` are all
    removed in the same round.  If at some round nobody qualifies (threshold too
    small for the remaining subgraph), every remaining node is assigned the next
    level so the procedure always terminates — this mirrors the behaviour of the
    original algorithm when the arboricity estimate is too low.
    """
    remaining = {v: graph.self_loop_weight(v) for v in graph.nodes()}
    for u, v, w in graph.edges():
        if u != v:
            remaining[u] += w
            remaining[v] += w
    alive = set(graph.nodes())
    levels: Dict[Hashable, int] = {}
    level = 0
    cap = max_levels if max_levels is not None else graph.num_nodes + 1
    while alive and level < cap:
        level += 1
        peel = {v for v in alive if remaining[v] <= threshold + 1e-12}
        if not peel:
            for v in alive:
                levels[v] = level
            alive.clear()
            break
        for v in peel:
            levels[v] = level
        for v in peel:
            for u, w in graph.neighbor_weights(v).items():
                if u in alive and u not in peel:
                    remaining[u] -= w
        alive -= peel
    for v in alive:   # only reachable if the level cap was hit
        levels[v] = level + 1
    return levels, level


def _orient_by_levels(graph: Graph, levels: Dict[Hashable, int]) -> Orientation:
    """Assign each edge to its lower-level endpoint (ties by identity)."""
    in_weight: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes()}
    loop_weight: Dict[Hashable, float] = {}
    assignment = {}
    for u, v, w in graph.edges():
        if u == v:
            loop_weight[u] = loop_weight.get(u, 0.0) + w
            in_weight[u] += w
            continue
        lu, lv = levels[u], levels[v]
        if lu < lv:
            owner = u
        elif lv < lu:
            owner = v
        else:
            owner = canonical_edge(u, v)[0]
        assignment[canonical_edge(u, v)] = owner
        in_weight[owner] += w
    return Orientation(assignment=assignment, in_weight=in_weight, loop_weight=loop_weight)


def h_partition_orientation(graph: Graph, density_upper_bound: float,
                            epsilon: float = 0.5) -> HPartitionResult:
    """The idealised H-partition orientation with a known density upper bound."""
    if graph.num_nodes == 0:
        raise AlgorithmError("the orientation problem needs a non-empty graph")
    if epsilon <= 0:
        raise AlgorithmError(f"epsilon must be positive, got {epsilon}")
    if density_upper_bound < 0:
        raise AlgorithmError("density_upper_bound must be non-negative")
    threshold = (2.0 + epsilon) * max(density_upper_bound, 1e-12)
    levels, num_levels = _h_partition(graph, threshold)
    orientation = _orient_by_levels(graph, levels)
    return HPartitionResult(orientation=orientation, levels=levels, num_levels=num_levels,
                            threshold=threshold, phase1_rounds=0)


def two_phase_orientation(graph: Graph, epsilon: float = 0.5) -> HPartitionResult:
    """The two-phase distributed baseline: estimate the density, then H-partition.

    Phase 1 runs the compact elimination for ``T = ⌈log_{1+ε} n⌉`` rounds; the
    resulting maximum surviving number over-estimates ρ* by at most ``2(1+ε)``, so
    the phase-2 threshold ``(2+ε)·max_v b_v`` yields a ``2(1+ε)(2+ε)``-approximation
    — the ``2(2+ε')``-type guarantee the paper attributes to this approach.
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("the orientation problem needs a non-empty graph")
    if epsilon <= 0:
        raise AlgorithmError(f"epsilon must be positive, got {epsilon}")
    T = rounds_for_epsilon(graph.num_nodes, epsilon)
    surv = compact_elimination(graph, T, track_kept=False)
    estimate = max(surv.values.values(), default=0.0)
    threshold = (2.0 + epsilon) * max(estimate, 1e-12)
    levels, num_levels = _h_partition(graph, threshold)
    orientation = _orient_by_levels(graph, levels)
    return HPartitionResult(orientation=orientation, levels=levels, num_levels=num_levels,
                            threshold=threshold, phase1_rounds=T)
