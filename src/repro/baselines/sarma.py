"""Sarma, Lall, Nanongkai & Trehan-style distributed densest subset (diameter-bound).

Reference [24] of the paper: a ``2(1+ε)``-approximation of the densest subset in
``O(D · log_{1+ε} n)`` rounds.  Each "pass" of the Bahmani peeling is realised
distributively by (i) aggregating the surviving subgraph's node count and total
edge weight over a global BFS tree (Θ(D) rounds up + Θ(D) rounds down) and then
(ii) removing low-degree nodes locally in one round.

The value of this baseline for experiment E7 is its **round complexity model**: it
answers the same question as the paper's weak densest subset algorithm, but pays the
diameter on every pass — which is exactly the dependence the paper removes.  The
subgraph it returns is computed with the same peeling as
:mod:`repro.baselines.bahmani`; what this module adds is the explicit round
accounting on the actual input graph (using its true hop diameter).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bahmani import BahmaniResult, bahmani_densest_subset
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.graph.properties import hop_diameter


@dataclass(frozen=True)
class SarmaResult:
    """Result of the diameter-dependent distributed densest-subset baseline."""

    subset: frozenset
    density: float
    passes: int
    diameter: int
    rounds: int          #: modelled round complexity: passes * (2*D + 2) + D
    epsilon: float


def sarma_densest_subset(graph: Graph, epsilon: float = 0.5, *,
                         exact_diameter: bool = True) -> SarmaResult:
    """Run the peeling and account for the Θ(D)-per-pass round cost.

    Parameters
    ----------
    exact_diameter:
        Whether to compute the hop diameter exactly (O(n·m)) or with the double-sweep
        heuristic; only affects the reported round count.
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("densest subset of the empty graph is undefined")
    peel: BahmaniResult = bahmani_densest_subset(graph, epsilon)
    diameter = hop_diameter(graph, exact=exact_diameter)
    # One initial BFS-tree construction (D rounds), then per pass: aggregate the
    # surviving count/weight up the tree (D), broadcast the density down (D), and
    # one local elimination round (+2 for the up/down turnaround).
    rounds = diameter + peel.passes * (2 * diameter + 2)
    return SarmaResult(subset=peel.subset, density=peel.density, passes=peel.passes,
                       diameter=diameter, rounds=rounds, epsilon=epsilon)
