"""Session-centric public API: one long-lived coordinator per graph.

The paper's three theorems all run the *same* compact elimination procedure
(Algorithm 2), and a production serving path rarely runs a graph once: repeated
requests with different budgets, λ-grids or problems hit the same graph over
and over.  :class:`Session` makes that the first-class shape — construct it
once per graph, then issue as many parametrised requests as you like:

>>> from repro import Session, load_dataset
>>> session = Session(load_dataset("caveman"))
>>> core = session.coreness(epsilon=0.5)
>>> orient = session.orientation(epsilon=0.5)      # reuses the trajectory
>>> generic = session.solve("coreness", rounds=8)  # problem-registry route

A session owns and amortises, per graph:

* the **CSR view** — built exactly once, shared by every array-engine request;
* the **Λ-grids** — memoised per distinct λ;
* the **surviving-number results** — cached per ``(T, λ, tie_break, track_kept)``;
* the **elimination trajectories** — kept per λ, so a request with a *larger*
  round budget resumes after the cached rounds instead of recomputing rounds
  ``1..T_old`` (and a *smaller* budget is served by slicing).  Resumed and
  sliced runs are bit-identical to cold runs because every round is a
  deterministic function of the previous row (pinned by the test-suite);
* the **problem results** — deduplicated per ``(problem, params)`` through
  :meth:`solve`.

Cached result objects are shared between identical requests — treat them as
read-only.  The caches grow with the number of distinct requests (that is the
amortisation trade); long-lived servers can bound the result caches with
``max_cached_results=`` (LRU eviction) or shed them with
:meth:`Session.clear_cache`.  With a persistent ``store=``
(:class:`~repro.store.ArtifactStore`) the expensive artifacts also survive
process restarts: trajectories are reloaded from disk and resumed
bit-identically.  :attr:`Session.stats` counts builds, hits, resumes, disk
traffic and the executed/reused round split, which is what the cache-reuse
tests and ``scripts/bench_session.py`` observe.
"""

from __future__ import annotations

import inspect
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.rounding import LambdaGrid, grid_for_graph
from repro.core.rounds import resolve_round_budget
from repro.core.surviving import TIE_BREAK_RULES, SurvivingNumbers
from repro.engine.base import Engine, EngineLike, get_engine
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency, csr_fingerprint, graph_to_csr
from repro.graph.delta import (GraphDelta, apply_delta as apply_graph_delta,
                               chain_fingerprint as delta_chain_fingerprint,
                               changed_labels)
from repro.graph.graph import Graph
from repro.obs import trace as obs_trace
from repro.obs.metrics import counter_families, get_registry
from repro.problems import Problem, ProblemLike, get_problem
from repro.store import ArtifactStore
from repro.utils.numeric import canonical_lam

#: Something the ``store=`` parameter accepts: a store instance or its root.
StoreLike = Union[ArtifactStore, str, Path]

#: Always-on per-problem solve latency (process-wide default registry); one
#: ``observe`` per executed :meth:`Session.solve` (cache hits excluded).
SOLVE_SECONDS = get_registry().histogram(
    "repro_solve_latency_seconds",
    "Wall time of one executed Session.solve request",
    labelnames=("problem",))


@dataclass
class SessionStats:
    """Counters of what a :class:`Session` built, reused and executed."""

    csr_builds: int = 0         #: CSR views built (1 per session)
    grid_builds: int = 0        #: Λ-grids built (1 per distinct λ)
    cold_runs: int = 0          #: engine runs with no reusable trajectory
    result_hits: int = 0        #: exact ``(T, λ, tie_break, track_kept)`` cache hits
    trajectory_slices: int = 0  #: requests served entirely from a cached trajectory
    prefix_resumes: int = 0     #: runs resumed after a cached trajectory prefix
    problem_hits: int = 0       #: :meth:`Session.solve` request-cache hits
    rounds_executed: int = 0    #: elimination rounds actually computed
    rounds_reused: int = 0      #: elimination rounds served from caches
                                #: (in-memory trajectories or the artifact store)
    disk_hits: int = 0          #: requests (partially) served from the artifact store
    disk_misses: int = 0        #: store probes that found nothing usable
    disk_writes: int = 0        #: artifacts persisted to the store
    evictions: int = 0          #: cached results dropped by the LRU bound
    incremental_runs: int = 0   #: runs served by the frontier-restricted path
    incremental_fallbacks: int = 0  #: frontier attempts that fell back cold
    frontier_nodes_recomputed: int = 0  #: node-rounds recomputed incrementally
    frontier_peak_nodes: int = 0  #: widest dirty frontier across incremental runs

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the counters."""
        return dict(vars(self))

    def metric_families(self, prefix: str = "repro_session") -> List[tuple]:
        """These counters as metric families (``<prefix>_<name>_total``).

        The adapter that registers session counters into a
        :class:`repro.obs.metrics.MetricsRegistry` (via
        ``register_collector``) instead of being hand-merged into a JSON
        document; works on aggregated totals too via
        :func:`repro.obs.metrics.counter_families`.
        """
        return counter_families(prefix, self.to_dict(), "Session counter")


class Session:
    """Stateful entry point for repeated requests against one graph.

    Parameters
    ----------
    graph:
        The input graph (treated as immutable while the session holds it).
    engine:
        Anything :func:`repro.engine.get_engine` resolves (name, spec string or
        instance); extra keyword ``engine_options`` are handed to the factory.
    lam:
        The session's default Λ-grid parameter, used by :meth:`surviving` and
        :meth:`coreness` when a request does not override it.  The CSR view and
        Λ-grids are built on first use and owned for the session's lifetime, so
        a session that only ever runs the densest pipeline (or a faithful
        engine, which replays rounds per node) never pays for them.
    store:
        Optional persistent artifact store (an
        :class:`~repro.store.ArtifactStore` or its root directory).  The
        session then consults the store before computing — a stored
        elimination trajectory for this graph warm-starts or fully serves a
        request, bit-identically to the in-process warm path — and persists
        what it computes, so a freshly constructed session on a known graph
        resumes from disk.  Disk traffic is counted in :attr:`stats`
        (``disk_hits`` / ``disk_misses`` / ``disk_writes``).  Opening a store
        builds the CSR view once even for the faithful engine (the content
        fingerprint hashes it).  An engine that supports memory-mapped
        storage (the sharded engine) is additionally bound to the store root:
        graphs whose edge arrays exceed its spill threshold — or any graph
        under ``storage="mmap"`` — execute over arrays mapped from
        ``<store>/<fingerprint>/csr/`` instead of RAM (out-of-core mode,
        bit-identical results).
    max_cached_results:
        Optional bound on the in-memory result caches (surviving-number and
        problem results each keep at most this many entries, evicting the
        least recently used).  ``None`` (the default) keeps every distinct
        request for the session's lifetime.
    """

    def __init__(self, graph: Graph, *, engine: EngineLike = "vectorized",
                 lam: float = 0.0, store: Optional[StoreLike] = None,
                 max_cached_results: Optional[int] = None,
                 **engine_options) -> None:
        if graph.num_nodes == 0:
            raise AlgorithmError("a Session needs a non-empty graph")
        if max_cached_results is not None and max_cached_results < 1:
            raise AlgorithmError(
                f"max_cached_results must be >= 1, got {max_cached_results}")
        self.graph = graph
        self.engine: Engine = get_engine(engine, **engine_options)
        # Canonical λ from the very first entry point: -0.0 collapses to 0.0
        # (one cache key in memory AND on disk) and non-finite λ is rejected.
        self._default_lam = canonical_lam(lam)
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(store) if isinstance(store, (str, Path)) else store)
        if self.store is not None and getattr(self.engine, "supports_mmap", False):
            # Out-of-core wiring: an engine that can run over memory-mapped
            # CSR arrays spills into the store's per-fingerprint layout when
            # the graph outgrows its auto-spill threshold (or always, for
            # storage="mmap").  An explicitly configured storage_dir wins.
            self.engine.bind_storage(self.store.root)
        self.max_cached_results = max_cached_results
        self.stats = SessionStats()
        self._csr: Optional[CSRAdjacency] = None
        self._fingerprint: Optional[str] = None
        self._grids: Dict[float, LambdaGrid] = {}
        self._results: "OrderedDict[Tuple[int, float, str, bool], SurvivingNumbers]" \
            = OrderedDict()
        self._trajectories: Dict[float, np.ndarray] = {}
        self._problem_results: "OrderedDict[tuple, object]" = OrderedDict()
        #: rounds known to be on disk per λ (-1: known empty, absent: unknown).
        self._disk_rounds: Dict[float, int] = {}
        # Incremental state (set by apply_delta on the child session): the
        # parent session, the delta that derived this graph from it, the
        # chained lineage fingerprint, and the fallback policy for the
        # frontier-restricted re-solve.  All None/default on root sessions.
        self._parent: Optional["Session"] = None
        self._delta: Optional[GraphDelta] = None
        self._chain_fingerprint: Optional[str] = None
        self._max_frontier_fraction: float = 0.25
        self._frontier_seed: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._array_engine = callable(getattr(self.engine, "trajectory", None))
        # Hints (csr / grid / warm_start) go to any engine whose run()
        # signature declares them — the documented contract — but csr/grid are
        # only *built* for engines that consume them (Engine.consumes_artifacts;
        # the faithful simulator opts out, so it costs nothing).
        run_params = inspect.signature(self.engine.run).parameters
        var_kw = any(p.kind is inspect.Parameter.VAR_KEYWORD
                     for p in run_params.values())
        self._run_hints = {hint for hint in ("csr", "grid", "warm_start")
                           if var_kw or hint in run_params}
        if not getattr(self.engine, "consumes_artifacts", True):
            self._run_hints -= {"csr", "grid"}

    @property
    def default_lam(self) -> float:
        """The session's default λ (read-only: the request caches key on it,
        so mutating it mid-session would serve results computed at the old λ —
        open a new :class:`Session` for a different default)."""
        return self._default_lam

    @property
    def supports_trajectories(self) -> bool:
        """Whether the engine produces per-round trajectories.

        The single capability probe: used internally to decide artifact/hint
        passing, and by analysis helpers to decide whether a session can serve
        a trajectory at all (the faithful simulator cannot).
        """
        return self._array_engine

    # ---------------------------------------------------------------- artifacts
    @property
    def csr(self) -> CSRAdjacency:
        """The session's CSR view of the graph (built on first use, exactly once)."""
        if self._csr is None:
            self.stats.csr_builds += 1
            self._csr = graph_to_csr(self.graph)
        return self._csr

    def grid(self, lam: Optional[float] = None) -> LambdaGrid:
        """The (memoised) Λ-grid for ``lam`` (default: the session's λ)."""
        lam = self.default_lam if lam is None else canonical_lam(lam)
        hit = self._grids.get(lam)
        if hit is None:
            self.stats.grid_builds += 1
            hit = self._grids[lam] = grid_for_graph(self.graph, lam)
        return hit

    @property
    def fingerprint(self) -> str:
        """The content fingerprint addressing this graph in an artifact store.

        Computed (and the CSR view built) on first use, then owned for the
        session's lifetime — the graph is immutable while the session holds it.
        """
        if self._fingerprint is None:
            self._fingerprint = csr_fingerprint(self.csr)
        return self._fingerprint

    @property
    def chain_fingerprint(self) -> str:
        """The lineage address of this session's graph version.

        For a delta-derived session this is the chained fingerprint
        ``H(parent_chain_fp, delta)`` — cheap to mint (no re-hash of the
        mutated graph) and unique per *path* of mutations.  For a root
        session it is simply the content :attr:`fingerprint`, so every
        session has a lineage address and chains can start anywhere.
        """
        if self._chain_fingerprint is not None:
            return self._chain_fingerprint
        return self.fingerprint

    @property
    def parent(self) -> Optional["Session"]:
        """The session this one was derived from via :meth:`apply_delta`
        (None for root sessions)."""
        return self._parent

    @property
    def delta(self) -> Optional[GraphDelta]:
        """The delta that derived this session's graph (None for roots)."""
        return self._delta

    # -------------------------------------------------------------- incremental
    def apply_delta(self, delta: GraphDelta, *,
                    max_frontier_fraction: float = 0.25) -> "Session":
        """A child session over the mutated graph, solving incrementally.

        Applies ``delta`` to this session's graph (which is left untouched)
        and returns a new :class:`Session` that knows its parentage: its
        first solve per λ recomputes only the dirty-node frontier seeded by
        the delta's endpoints, copying the parent's trajectory rows for
        untouched nodes — bit-identical to a cold solve of the mutated graph
        (the contract pinned by ``tests/test_session_equivalence.py``).  When
        a round's frontier exceeds ``max_frontier_fraction * n`` (or the
        parent has no usable trajectory), the child transparently falls back
        to a cold solve; either way the child persists its own artifacts
        under its content fingerprint, so later requests and restarts never
        depend on the parent again.

        With a bound store, the lineage edge
        ``chain_fingerprint -> (parent, delta)`` is recorded via
        :meth:`repro.store.ArtifactStore.record_lineage`, making the chain
        reconstructable (and the delta re-playable) after a restart.

        Chains compose: ``session.apply_delta(d1).apply_delta(d2)`` walks two
        frontier-restricted solves, each against its immediate parent.
        """
        if not isinstance(delta, GraphDelta):
            raise AlgorithmError(
                f"apply_delta expects a GraphDelta, got {type(delta).__name__}")
        if not 0.0 <= float(max_frontier_fraction) <= 1.0:
            raise AlgorithmError(
                f"max_frontier_fraction must be in [0, 1], "
                f"got {max_frontier_fraction!r}")
        child_graph = apply_graph_delta(self.graph, delta)
        child = Session(child_graph, engine=self.engine, lam=self._default_lam,
                        store=self.store,
                        max_cached_results=self.max_cached_results)
        child._parent = self
        child._delta = delta
        child._max_frontier_fraction = float(max_frontier_fraction)
        child._chain_fingerprint = delta_chain_fingerprint(
            self.chain_fingerprint, delta)
        if self.store is not None:
            self.store.record_lineage(
                child._chain_fingerprint, self.chain_fingerprint, delta,
                content_fingerprint=child.fingerprint,
                parent_content_fingerprint=self.fingerprint)
        return child

    def _label_index(self) -> Dict:
        """Label -> integer id map of this session's CSR view (cached)."""
        cached = getattr(self, "_label_index_cache", None)
        if cached is None:
            cached = {lab: i for i, lab in enumerate(self.csr.labels())}
            self._label_index_cache = cached
        return cached

    def _delta_frontier_seed(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(parent_ids, changed)`` for the frontier warm start (cached).

        ``parent_ids[i]`` is the parent CSR id of child node ``i`` (-1 for
        delta-introduced nodes); ``changed`` is the sorted child ids of every
        node the delta touched.  Node order is insertion order and
        :func:`repro.graph.delta.apply_delta` appends new nodes, so the
        common case is the identity prefix — detected with one tuple
        comparison instead of a per-node dict walk.
        """
        if self._frontier_seed is not None:
            return self._frontier_seed
        child_labels = self.csr.labels()
        parent_labels = self._parent.csr.labels()
        pn, n = len(parent_labels), len(child_labels)
        parent_ids = np.full(n, -1, dtype=np.int64)
        if child_labels[:pn] == parent_labels:
            parent_ids[:pn] = np.arange(pn, dtype=np.int64)
        else:  # pragma: no cover - defensive: apply_delta preserves order
            index = self._parent._label_index()
            for i, lab in enumerate(child_labels):
                parent_ids[i] = index.get(lab, -1)
        child_index = self._label_index()
        changed = np.fromiter(
            sorted(child_index[lab] for lab in changed_labels(self._delta)),
            dtype=np.int64)
        self._frontier_seed = (parent_ids, changed)
        return self._frontier_seed

    def _frontier_warm_start(self, lam: float, T: int):
        """A :class:`~repro.engine.kernels.FrontierWarmStart` for this request,
        or None when the incremental path cannot apply.

        Requires a parent trajectory at this λ covering ``T`` rounds (or a
        converged shorter one) — pulled from the parent's memory cache or,
        after a restart, from its artifact store.  The engine must be a
        :class:`~repro.engine.vectorized.TrajectoryEngine` (they all share
        the frontier branch in ``run``); anything else solves cold.
        """
        from repro.engine.kernels import FrontierWarmStart
        from repro.engine.vectorized import TrajectoryEngine

        parent = self._parent
        if parent is None or not isinstance(self.engine, TrajectoryEngine) \
                or not parent.supports_trajectories:
            return None
        ptraj = parent._trajectories.get(lam)
        if parent.store is not None:
            ptraj = parent._adopt_stored_trajectory(lam, T, ptraj)
        if ptraj is None or ptraj.shape[0] < 2:
            return None
        P = ptraj.shape[0] - 1
        if P < T and not np.array_equal(ptraj[P], ptraj[P - 1]):
            # Parent rounds don't cover the request and the parent hasn't
            # reached its fixed point: rows past P are unknown, so the
            # incremental path cannot be bit-exact.  Solve cold.
            return None
        parent_ids, changed = self._delta_frontier_seed()
        return FrontierWarmStart(
            ptraj, parent_ids, changed,
            max_frontier_fraction=self._max_frontier_fraction)

    def _cache_put(self, cache: OrderedDict, key, value) -> None:
        """Insert into an LRU-bounded result cache, evicting the oldest."""
        cache[key] = value
        cache.move_to_end(key)
        if self.max_cached_results is not None:
            while len(cache) > self.max_cached_results:
                cache.popitem(last=False)
                self.stats.evictions += 1

    def _cache_get(self, cache: OrderedDict, key):
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
        return hit

    def clear_cache(self) -> None:
        """Drop every cached result and trajectory, keeping the CSR view and grids.

        The caches grow with the number of distinct requests for the session's
        lifetime (an explicit trade: the session is the amortisation layer);
        long-running servers can call this to shed memory without losing the
        per-graph artifacts the next request needs.  Counters in :attr:`stats`
        are not reset.
        """
        self._results.clear()
        self._trajectories.clear()
        self._problem_results.clear()

    def describe(self) -> str:
        """One-line summary of the session (graph size, engine, caches)."""
        return (f"n={self.graph.num_nodes} m={self.graph.num_edges} "
                f"engine={self.engine.name} lam={self.default_lam:g} "
                f"cached_results={len(self._results)}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Session {self.describe()}>"

    # ---------------------------------------------------------------- surviving
    def surviving(self, *, epsilon: Optional[float] = None,
                  gamma: Optional[float] = None, rounds: Optional[int] = None,
                  lam: Optional[float] = None, tie_break: str = "history",
                  track_kept: bool = False) -> SurvivingNumbers:
        """Run (or reuse) the compact elimination procedure for one request.

        Exactly one of ``epsilon`` (γ = 2(1+ε)), ``gamma`` (γ > 2) or ``rounds``
        must be given.  Results are cached per ``(T, λ, tie_break, track_kept)``;
        on a miss, the cached trajectory for λ (if any) is handed to the engine
        as a warm start, so only rounds beyond the cached budget are computed.
        Returned objects are shared between identical requests — read-only.
        """
        T = resolve_round_budget(self.graph.num_nodes, epsilon, gamma, rounds)
        if tie_break not in TIE_BREAK_RULES:
            raise AlgorithmError(f"unknown tie_break rule {tie_break!r}; "
                                 f"expected one of {TIE_BREAK_RULES}")
        lam = self.default_lam if lam is None else canonical_lam(lam)
        key = (T, lam, tie_break, bool(track_kept))
        hit = self._cache_get(self._results, key)
        if hit is not None:
            self.stats.result_hits += 1
            return hit
        with obs_trace.span("session.surviving", rounds=T, lam=lam,
                            engine=self.engine.name):
            frontier = None
            prefix = self._trajectories.get(lam)
            if self.store is not None and self._array_engine:
                prefix = self._adopt_stored_trajectory(lam, T, prefix)
            if prefix is not None and prefix.shape[0] > T:
                # Fully covered by the cached trajectory: answer from a view
                # without invoking the engine (which would allocate and copy
                # the whole prefix just to be discarded); kept sets, when
                # requested, are recovered from the sliced rows exactly as
                # the engine would.
                result = self._sliced_result(T, lam, prefix,
                                             tie_break=tie_break,
                                             track_kept=track_kept)
                warm = prefix
            else:
                if self.store is not None and not self._array_engine:
                    loaded = self._load_stored_result(T, lam,
                                                      tie_break=tie_break,
                                                      track_kept=track_kept)
                    if loaded is not None:
                        self._cache_put(self._results, key, loaded)
                        return loaded
                # The warm-start hint only goes to engines that will actually
                # consume it (and `warm` only counts as reuse then); engines
                # written against hint-free signatures keep working unchanged,
                # with every round honestly counted as executed.
                warm = prefix if "warm_start" in self._run_hints \
                    and self._engine_takes_prefix() else None
                run_kwargs = {}
                if "csr" in self._run_hints:
                    run_kwargs["csr"] = self.csr
                if "grid" in self._run_hints:
                    run_kwargs["grid"] = self.grid(lam)
                if warm is not None:
                    run_kwargs["warm_start"] = warm
                elif self._parent is not None and self._array_engine \
                        and "warm_start" in self._run_hints:
                    # Delta-derived session with no own trajectory yet: hand
                    # the engine a frontier warm start against the parent's
                    # trajectory.  The engine falls back to a cold run by
                    # itself when the frontier widens past the policy bound.
                    frontier = self._frontier_warm_start(lam, T)
                    if frontier is not None:
                        run_kwargs["warm_start"] = frontier
                result = self.engine.run(self.graph, T, lam=lam,
                                         tie_break=tie_break,
                                         track_kept=track_kept, **run_kwargs)
            self._account(T, warm, result, frontier=frontier)
            if result.trajectory is not None and (
                    prefix is None or result.trajectory.shape[0] > prefix.shape[0]):
                self._trajectories[lam] = result.trajectory
                # Earlier cached results for this λ hold bit-identical
                # prefixes of the new longest array (round determinism);
                # rebind them to views so a budget sweep — ascending or
                # descending — retains one O(T_max * n) trajectory, not
                # O(T_max^2 * n) floats.
                for (cached_T, cached_lam, _, _), cached in self._results.items():
                    if cached_lam == lam and cached.trajectory is not None:
                        cached.trajectory = result.trajectory[:cached_T + 1]
            self._persist(lam, result, tie_break=tie_break,
                          track_kept=track_kept)
            self._cache_put(self._results, key, result)
            return result

    # ------------------------------------------------------------- persistence
    def _adopt_stored_trajectory(self, lam: float, T: int,
                                 prefix: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """The best warm-start prefix for ``(λ, T)``: memory, or disk if longer.

        Probes the store only when the in-memory trajectory cannot fully serve
        the request and the disk is not already known to hold fewer rounds, so
        warm in-process requests never pay I/O (and never count disk misses).
        A usable stored trajectory is adopted into the in-memory cache — from
        then on it slices and resumes exactly like a locally computed one.
        """
        mem_rounds = -1 if prefix is None else prefix.shape[0] - 1
        if mem_rounds >= T:
            return prefix
        known = self._disk_rounds.get(lam)
        if known is not None and known <= mem_rounds:
            return prefix
        stored = self.store.load_trajectory(self.fingerprint, lam)
        if stored is None:
            self._disk_rounds[lam] = -1
            self.stats.disk_misses += 1
            return prefix
        self._disk_rounds[lam] = stored.shape[0] - 1
        if stored.shape[0] - 1 <= mem_rounds:
            self.stats.disk_misses += 1
            return prefix
        self.stats.disk_hits += 1
        self._trajectories[lam] = stored
        return stored

    def _load_stored_result(self, T: int, lam: float, *, tie_break: str,
                            track_kept: bool) -> Optional[SurvivingNumbers]:
        """A stored full result for a non-trajectory engine, or None.

        The reloaded result is value- and kept-identical to the computed one
        (the simulator's per-round message statistics are not persisted); its
        ``T`` rounds count as reused, mirroring the trajectory reuse split.
        """
        loaded = self.store.load_result(self.fingerprint, rounds=T, lam=lam,
                                        tie_break=tie_break, track_kept=track_kept,
                                        labels=self.csr.labels(),
                                        grid=self.grid(lam))
        if loaded is None:
            self.stats.disk_misses += 1
            return None
        self.stats.disk_hits += 1
        self.stats.rounds_reused += T
        return loaded

    def _spilled_rounds(self, lam: float, best: np.ndarray) -> Optional[int]:
        """Rounds the engine already published into the store's own ``.traj``
        file, or None when ``best`` is not a view of that file.

        A spilled-trajectory engine bound to this session's store returns a
        read-only ``np.memmap`` over ``<root>/<fingerprint>/trajectory-lam<λ>
        .traj/rows.bin`` — the rounds-on-disk metadata then comes from the
        append header the engine published round-by-round, and re-writing the
        monolithic ``.npz`` would only duplicate the bytes.
        """
        filename = getattr(best, "filename", None)
        if not isinstance(best, np.memmap) or filename is None:
            return None
        from repro.store.traj import rows_path

        expected = rows_path(self.store.root, self.fingerprint, lam)
        if os.path.realpath(filename) != os.path.realpath(expected):
            return None
        return best.shape[0] - 1

    def _persist(self, lam: float, result: SurvivingNumbers, *, tie_break: str,
                 track_kept: bool) -> None:
        """Persist what this request added: the longest trajectory, or — for
        engines without trajectories — the full result."""
        if self.store is None:
            return
        if self._array_engine:
            best = self._trajectories.get(lam)
            if best is None:
                return
            spilled = self._spilled_rounds(lam, best)
            if spilled is not None:
                # Already on disk, appended round-by-round by the engine; no
                # npz round-trip.  A crash mid-run would have lost at most
                # the last un-published round, never a readable prefix.
                disk = self._disk_rounds.get(lam)
                if disk is None or spilled > disk:
                    self._disk_rounds[lam] = spilled
                    self.stats.disk_writes += 1
                    self.store.record_graph(self.fingerprint,
                                            self.csr.num_nodes,
                                            self.csr.labels())
                return
            disk = self._disk_rounds.get(lam)
            if disk is None:
                # Disk state unknown (memory fully served so far): a cheap
                # metadata read keeps us from clobbering a longer artifact.
                stored = self.store.trajectory_rounds(self.fingerprint, lam)
                disk = self._disk_rounds[lam] = -1 if stored is None else stored
            if best.shape[0] - 1 > disk:
                self.store.save_trajectory(self.fingerprint, lam, best,
                                           labels=self.csr.labels())
                self._disk_rounds[lam] = best.shape[0] - 1
                self.stats.disk_writes += 1
        elif result.trajectory is None:
            self.store.save_result(self.fingerprint, result, lam=lam,
                                   tie_break=tie_break, track_kept=track_kept,
                                   labels=self.csr.labels())
            self.stats.disk_writes += 1

    def _engine_takes_prefix(self) -> bool:
        """Whether the engine can exploit a warm-start prefix.

        An engine whose ``run()`` declares ``warm_start`` is assumed to honour
        the documented contract; trajectory engines additionally expose
        ``_trajectory_accepts_prefix`` so that subclasses written against the
        hint-free ``trajectory()`` signature are not handed (and not credited
        for) a prefix they would recompute anyway.
        """
        probe = getattr(self.engine, "_trajectory_accepts_prefix", None)
        return True if probe is None else bool(probe())

    def _sliced_result(self, T: int, lam: float, prefix: np.ndarray, *,
                       tie_break: str, track_kept: bool) -> SurvivingNumbers:
        """A ``SurvivingNumbers`` read straight off the cached trajectory.

        Delegates to the engines' shared assembly so slice-served results stay
        field-for-field identical to engine-produced ones by construction.
        """
        from repro.engine.vectorized import TrajectoryEngine

        return TrajectoryEngine.assemble(self.csr, prefix[:T + 1], T,
                                         self.grid(lam), tie_break=tie_break,
                                         track_kept=track_kept)

    def _account(self, T: int, warm: Optional[np.ndarray],
                 result: SurvivingNumbers, *, frontier=None) -> None:
        # ``warm`` is the cached trajectory that was actually consumed (served
        # as a slice or handed to a prefix-capable engine) — None whenever the
        # engine ran every round itself, including engines that cannot take
        # the hint.  ``frontier`` is the FrontierWarmStart of an incremental
        # attempt; it records whether the engine used it or fell back cold.
        if frontier is not None:
            if frontier.used:
                self.stats.incremental_runs += 1
                self.stats.frontier_nodes_recomputed += frontier.nodes_recomputed
                self.stats.frontier_peak_nodes = max(
                    self.stats.frontier_peak_nodes, frontier.peak_frontier)
                self.stats.rounds_executed += T
                return
            self.stats.incremental_fallbacks += 1
        if result.trajectory is None or warm is None:
            self.stats.cold_runs += 1
            self.stats.rounds_executed += T
            return
        reused = min(warm.shape[0] - 1, T)
        self.stats.rounds_reused += reused
        self.stats.rounds_executed += T - reused
        if reused >= T:
            self.stats.trajectory_slices += 1
        else:
            self.stats.prefix_resumes += 1

    # ----------------------------------------------------------------- problems
    def solve(self, problem: ProblemLike, **params):
        """Solve a registered problem against this session.

        ``problem`` is anything :func:`repro.problems.get_problem` resolves
        (``"coreness"``, ``"orientation"``, ``"densest"``, an alias, or a
        :class:`~repro.problems.Problem` instance).  Identical requests return
        the *same* cached result object.
        """
        prob = get_problem(problem)
        # Canonicalise λ before any key is derived from it (same spelling in
        # the request cache, the surviving cache and the store) and reject
        # non-finite values at the solve boundary, before any work runs.
        if params.get("lam") is not None:
            params = {**params, "lam": canonical_lam(params["lam"])}
        # An explicit lam at the session default is the same request as an
        # omitted one (surviving() resolves None to the default).
        if params.get("lam") == self._default_lam:
            params = {**params, "lam": None}
        key = self._request_key(prob, params,
                                caller_instance=isinstance(problem, Problem),
                                lineage=self._chain_fingerprint)
        if key is not None:
            hit = self._cache_get(self._problem_results, key)
            if hit is not None:
                self.stats.problem_hits += 1
                return hit
        start = time.perf_counter()
        with obs_trace.span("session.solve", problem=prob.name,
                            n=self.graph.num_nodes):
            result = prob.solve(self, **params)
        SOLVE_SECONDS.observe(time.perf_counter() - start, problem=prob.name)
        if key is not None:
            self._cache_put(self._problem_results, key, result)
        return result

    @staticmethod
    def _request_key(prob: Problem, params: dict, *, caller_instance: bool,
                     lineage: Optional[str] = None) -> Optional[tuple]:
        # The parameter canonicalisation (default-stripping) is the problem's
        # own :meth:`Problem.request_key` — shared with the in-flight dedup of
        # :mod:`repro.serve`.  None (unhashable params) skips request caching.
        base = prob.request_key(params, lineage=lineage)
        if base is None:
            return None
        # Name-resolved problems get a fresh stateless instance per request, so
        # they dedup by class; the class token also keeps a re-registered
        # (shadowed) implementation from serving the old one's cached results.
        # A caller-supplied instance may carry its own configuration, so it
        # dedups per instance — keyed on the object itself, which also keeps
        # it alive (an id() would be reusable after collection).
        return (base, prob if caller_instance else type(prob))

    def coreness(self, *, epsilon: Optional[float] = None,
                 gamma: Optional[float] = None, rounds: Optional[int] = None,
                 lam: Optional[float] = None):
        """Theorem I.1 — :class:`~repro.core.api.CorenessResult` for one budget.

        ``lam`` defaults to the session's λ; see :meth:`surviving` for the
        caching semantics.
        """
        return self.solve("coreness", epsilon=epsilon, gamma=gamma, rounds=rounds,
                          lam=lam)

    def orientation(self, *, epsilon: Optional[float] = None,
                    gamma: Optional[float] = None, rounds: Optional[int] = None,
                    tie_break: str = "history"):
        """Theorem I.2 — :class:`~repro.core.api.OrientationResult` for one budget.

        Always runs with ``Λ = R`` (Lemma III.11), regardless of the session's
        default λ; shares the λ=0 trajectory with coreness requests.
        """
        return self.solve("orientation", epsilon=epsilon, gamma=gamma,
                          rounds=rounds, tie_break=tie_break)

    def densest(self, *, epsilon: Optional[float] = None,
                gamma: Optional[float] = None, rounds: Optional[int] = None,
                acceptance_factor: Optional[float] = None,
                message_accounting: bool = True,
                engine: Optional[str] = None):
        """Theorem I.3 — :class:`~repro.core.densest.WeakDensestResult`.

        Runs the faithful 4-phase pipeline (message accounting included);
        repeated identical requests are served from the request cache.  Pass
        ``message_accounting=False`` to serve Phase 1 from the session's
        cached λ=0 elimination trajectory (shared with coreness / orientation
        requests) instead of re-simulating it — the Phase-1 message statistics
        are skipped, and the reported subsets are unchanged for
        integer/dyadic edge weights (arbitrary float weights carry the usual
        last-ulp caveat of :mod:`repro.engine.kernels`).

        Pass ``engine="array"`` to run phases 2-4 on the batched CSR kernels
        of :mod:`repro.engine.densest_kernels` as well — the whole pipeline
        then executes at array speed over the session's cached CSR view and
        λ=0 trajectory, with the same bit-identity contract and no message
        accounting (see :class:`repro.problems.DensestProblem`).
        """
        return self.solve("densest", epsilon=epsilon, gamma=gamma, rounds=rounds,
                          acceptance_factor=acceptance_factor,
                          message_accounting=message_accounting,
                          engine=engine)
