"""Convergence analyses: approximation ratio as a function of the round budget.

This is the machinery behind the §V empirical claim ("the approximation ratio often
converges to 2 much quicker than what the worst-case analysis suggests") and the E1
and E2 experiment tables: run the vectorised compact elimination once, then compare
each round's surviving numbers against exact coreness values / maximal densities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.ratios import RatioSummary, summarize_ratios
from repro.core.rounds import guarantee_after_rounds
from repro.core.surviving import surviving_numbers_vectorized
from repro.errors import AlgorithmError
from repro.graph.csr import graph_to_csr
from repro.graph.graph import Graph


@dataclass(frozen=True)
class ConvergenceRow:
    """One row of a convergence table (one round budget)."""

    rounds: int
    theoretical_guarantee: float     #: 2·n^(1/T)
    summary: RatioSummary            #: measured ratios against the chosen reference

    @property
    def max_ratio(self) -> float:
        """Worst-node measured ratio after this many rounds."""
        return self.summary.max

    @property
    def mean_ratio(self) -> float:
        """Mean measured ratio after this many rounds."""
        return self.summary.mean


@dataclass(frozen=True)
class ConvergenceTrace:
    """A full convergence table for one graph and one reference quantity."""

    reference_name: str              #: "coreness" or "maximal-density"
    rows: Tuple[ConvergenceRow, ...]

    def rounds_to_reach(self, factor: float) -> Optional[int]:
        """Smallest round budget whose worst-node ratio is within ``factor`` (or None)."""
        for row in self.rows:
            if row.max_ratio <= factor + 1e-9:
                return row.rounds
        return None


def _trajectory_and_labels(graph: Graph, rounds: int, session=None):
    """The ``(rounds + 1, n)`` trajectory plus node labels, via a session if given.

    Routing through a :class:`repro.session.Session` lets repeated analyses of
    the same graph share one CSR view and resume cached trajectory prefixes.
    A session whose engine produces no trajectory (the faithful simulator)
    falls back to the cold vectorized path.
    """
    if session is not None:
        if session.graph is not graph:
            raise AlgorithmError(
                "the given session was opened for a different graph object")
        # Only trajectory-capable engines can serve this — a faithful-engine
        # session would pay the full simulation just to be discarded below —
        # and sessions reject rounds < 1, which the cold path supports (the
        # round-0 row is the initial +inf state).
        if rounds >= 1 and session.supports_trajectories:
            # λ is pinned to 0 so the values match the cold path below (exact
            # surviving numbers) even on sessions whose default λ is non-zero.
            result = session.surviving(rounds=rounds, lam=0.0, track_kept=False)
            return result.trajectory, result.node_order
    # Fallback (no session, or one whose engine cannot serve trajectories):
    # still reuse the session's CSR view when there is one.
    csr = session.csr if session is not None else graph_to_csr(graph)
    return surviving_numbers_vectorized(csr, rounds), csr.labels()


def convergence_trace(graph: Graph, exact: Mapping[Hashable, float], *,
                      max_rounds: int, reference_name: str = "coreness",
                      session=None) -> ConvergenceTrace:
    """Compute the ratio-vs-rounds table for ``graph`` against the ``exact`` map.

    The vectorised engine produces the surviving numbers of every round in one shot;
    round ``t``'s values are then summarised against ``exact``.  Pass the graph's
    :class:`repro.session.Session` as ``session`` to reuse its cached artifacts.
    """
    if max_rounds < 1:
        raise AlgorithmError(f"max_rounds must be >= 1, got {max_rounds}")
    trajectory, labels = _trajectory_and_labels(graph, max_rounds, session)
    rows: List[ConvergenceRow] = []
    n = graph.num_nodes
    for t in range(1, max_rounds + 1):
        estimates = {labels[i]: float(trajectory[t, i]) for i in range(len(labels))}
        summary = summarize_ratios(estimates, exact)
        rows.append(ConvergenceRow(rounds=t,
                                   theoretical_guarantee=guarantee_after_rounds(n, t),
                                   summary=summary))
    return ConvergenceTrace(reference_name=reference_name, rows=tuple(rows))


def values_at_round(graph: Graph, rounds: int, *, session=None) -> Dict[Hashable, float]:
    """Surviving numbers after exactly ``rounds`` rounds (vectorised engine).

    With a :class:`repro.session.Session`, a budget within an already-cached
    trajectory is served by slicing and a larger one resumes the cached prefix.
    """
    trajectory, labels = _trajectory_and_labels(graph, rounds, session)
    return {labels[i]: float(trajectory[rounds, i]) for i in range(len(labels))}
