"""Plain-text table formatting for experiment output.

The benchmark harness prints its tables with these helpers so that the rows reported
in EXPERIMENTS.md can be regenerated verbatim by running the benchmarks.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_cell(value) -> str:
    """Render a table cell: floats get 4 significant digits, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """ASCII table with column alignment (monospace friendly)."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_records(records: Sequence[Mapping[str, object]]) -> str:
    """Table from a list of dict records (columns = union of keys, insertion order)."""
    if not records:
        return "(no rows)"
    headers: List[str] = []
    for record in records:
        for key in record:
            if key not in headers:
                headers.append(key)
    rows = [[record.get(h, "") for h in headers] for record in records]
    return format_table(headers, rows)
