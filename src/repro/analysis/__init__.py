"""Analysis toolkit: ratios, invariants, convergence traces, tables, experiments."""

from repro.analysis.convergence import ConvergenceRow, ConvergenceTrace, convergence_trace, values_at_round
from repro.analysis.invariants import (
    InvariantReport,
    check_coreness_density_relation,
    check_monotone_non_increasing,
    check_orientation_invariants,
    check_sandwich,
    check_weak_densest_definition,
)
from repro.analysis.ratios import (
    RatioSummary,
    fraction_within,
    max_ratio_trajectory,
    per_node_ratios,
    summarize_ratios,
)
from repro.analysis.tables import format_records, format_table

__all__ = [
    "ConvergenceRow",
    "ConvergenceTrace",
    "convergence_trace",
    "values_at_round",
    "InvariantReport",
    "check_coreness_density_relation",
    "check_monotone_non_increasing",
    "check_orientation_invariants",
    "check_sandwich",
    "check_weak_densest_definition",
    "RatioSummary",
    "fraction_within",
    "max_ratio_trajectory",
    "per_node_ratios",
    "summarize_ratios",
    "format_records",
    "format_table",
]
