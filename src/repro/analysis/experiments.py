"""Experiment runners shared by the benchmark harness and EXPERIMENTS.md.

Each ``experiment_*`` / ``ablation_*`` function runs one experiment of the
per-experiment index in DESIGN.md §4 and returns a list of dict records (one per
table row).  The benchmarks in ``benchmarks/`` call these functions, time their
core computation with ``pytest-benchmark`` and print the rows with
:func:`repro.analysis.tables.format_records`; the EXPERIMENTS.md tables are the
printed output of exactly these functions.

All runners are deterministic (fixed dataset seeds, no wall-clock dependence in the
reported numbers).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro import obs

from repro.analysis.convergence import convergence_trace, values_at_round
from repro.analysis.invariants import check_orientation_invariants
from repro.analysis.ratios import summarize_ratios
from repro.baselines.bahmani import bahmani_densest_subset
from repro.baselines.barenboim_elkin import h_partition_orientation, two_phase_orientation
from repro.baselines.charikar import charikar_peeling
from repro.baselines.density_decomposition import maximal_densities
from repro.baselines.exact_kcore import coreness
from repro.baselines.exact_orientation import (
    exact_orientation_unweighted,
    greedy_orientation,
    lp_lower_bound,
)
from repro.baselines.frank_wolfe import frank_wolfe_densities
from repro.baselines.goldberg import maximum_density
from repro.baselines.montresor import montresor_kcore
from repro.baselines.sarma import sarma_densest_subset
from repro.core.orientation import orientation_from_kept
from repro.core.rounds import guarantee_after_rounds, rounds_for_epsilon
from repro.core.surviving import run_compact_elimination
from repro.graph.datasets import load_dataset
from repro.session import Session
from repro.graph.generators.lowerbound import figure1_triple, lemma313_pair
from repro.graph.generators.random_graphs import barabasi_albert, erdos_renyi_gnm
from repro.graph.graph import Graph
from repro.graph.properties import hop_diameter

#: Datasets small enough for the exact flow-based maximal-density decomposition.
_EXACT_DENSITY_EDGE_LIMIT = 2000

#: Default dataset suites per experiment "size".
SMALL_SUITE = ("collab-small", "communities", "caveman", "road-grid")
MEDIUM_SUITE = ("collab-small", "communities", "caveman", "social-ba", "p2p-sparse")


def _dataset_graphs(names: Iterable[str], *, weighted: bool = False) -> Dict[str, Graph]:
    return {name: load_dataset(name, weighted=weighted) for name in names}


# --------------------------------------------------------------------------- E1
def experiment_e1_convergence(dataset_names: Sequence[str] = SMALL_SUITE, *,
                              max_rounds: int = 12) -> List[dict]:
    """E1 — approximation ratio of the surviving numbers vs number of rounds.

    Reference quantities: exact coreness (always) and maximal density (exact for
    small graphs, Frank–Wolfe estimate otherwise — flagged in the ``r_reference``
    column).  This reproduces the §V claim that the worst-node ratio reaches ~2 well
    before the worst-case bound ``2·n^(1/T)`` suggests.
    """
    rows: List[dict] = []
    for name, graph in _dataset_graphs(dataset_names).items():
        exact_core = coreness(graph)
        if graph.num_edges <= _EXACT_DENSITY_EDGE_LIMIT:
            r_values = maximal_densities(graph)
            r_reference = "exact"
        else:
            r_values = frank_wolfe_densities(graph, iterations=200).loads
            r_reference = "frank-wolfe"
        session = Session(graph)  # one CSR/trajectory shared by every budget below
        trace_core = convergence_trace(graph, exact_core, max_rounds=max_rounds,
                                       reference_name="coreness", session=session)
        for row in trace_core.rows:
            estimates = values_at_round(graph, row.rounds, session=session)
            r_summary = summarize_ratios(estimates, r_values)
            rows.append({
                "dataset": name,
                "rounds": row.rounds,
                "guarantee_2n^(1/T)": row.theoretical_guarantee,
                "max_ratio_vs_coreness": row.max_ratio,
                "mean_ratio_vs_coreness": row.mean_ratio,
                "max_ratio_vs_maximal_density": r_summary.max,
                "r_reference": r_reference,
            })
    return rows


# --------------------------------------------------------------------------- E2
def experiment_e2_bound_tightness(dataset_names: Sequence[str] = SMALL_SUITE, *,
                                  epsilon: float = 1.0, max_rounds: int = 20) -> List[dict]:
    """E2 — measured worst-case ratio vs the theoretical bound, and rounds-to-target."""
    rows: List[dict] = []
    target = 2.0 * (1.0 + epsilon)
    for name, graph in _dataset_graphs(dataset_names).items():
        exact_core = coreness(graph)
        trace = convergence_trace(graph, exact_core, max_rounds=max_rounds)
        theory_rounds = rounds_for_epsilon(graph.num_nodes, epsilon)
        at_theory = trace.rows[min(theory_rounds, max_rounds) - 1]
        rows.append({
            "dataset": name,
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "epsilon": epsilon,
            "target_ratio": target,
            "rounds_theory": theory_rounds,
            "rounds_measured_to_target": trace.rounds_to_reach(target),
            "max_ratio_at_theory_rounds": at_theory.max_ratio,
            "guarantee_at_theory_rounds": at_theory.theoretical_guarantee,
            "bound_respected": at_theory.max_ratio <= at_theory.theoretical_guarantee + 1e-9,
        })
    return rows


# --------------------------------------------------------------------------- E3
def experiment_e3_orientation(dataset_names: Sequence[str] = SMALL_SUITE, *,
                              epsilon: float = 0.5, weighted: bool = True) -> List[dict]:
    """E3 — min-max orientation quality of ours vs the LP bound and the baselines."""
    rows: List[dict] = []
    for name, graph in _dataset_graphs(dataset_names, weighted=weighted).items():
        ours = Session(graph).orientation(epsilon=epsilon)
        rho_star = lp_lower_bound(graph)
        greedy = greedy_orientation(graph)
        two_phase = two_phase_orientation(graph, epsilon=epsilon)
        ideal = h_partition_orientation(graph, rho_star, epsilon=epsilon)
        exact_value: Optional[float] = None
        if graph.is_unit_weighted():
            exact_value = exact_orientation_unweighted(graph).max_in_weight
        rows.append({
            "dataset": name,
            "weighted": weighted,
            "rho_star(LP bound)": rho_star,
            "ours_max_in_degree": ours.max_in_weight,
            "ours_ratio_vs_LP": ours.max_in_weight / rho_star if rho_star > 0 else math.inf,
            "ours_guarantee": ours.guarantee,
            "rounds": ours.rounds,
            "greedy_max_in_degree": greedy.max_in_weight,
            "two_phase_max_in_degree": two_phase.max_in_weight,
            "ideal_h_partition": ideal.max_in_weight,
            "exact_unweighted": exact_value if exact_value is not None else "n/a",
        })
    return rows


# --------------------------------------------------------------------------- E4
def experiment_e4_densest(dataset_names: Sequence[str] = SMALL_SUITE, *,
                          epsilon: float = 1.0) -> List[dict]:
    """E4 — weak densest subset quality vs ρ*, Charikar and Bahmani."""
    rows: List[dict] = []
    for name, graph in _dataset_graphs(dataset_names).items():
        result = Session(graph).densest(epsilon=epsilon)
        rho_star = maximum_density(graph)
        charikar = charikar_peeling(graph)
        bahmani = bahmani_densest_subset(graph, epsilon=epsilon)
        rows.append({
            "dataset": name,
            "rho_star": rho_star,
            "ours_best_density": result.best_density,
            "ours_ratio(rho*/density)": rho_star / result.best_density
            if result.best_density > 0 else math.inf,
            "required_ratio(gamma)": result.gamma,
            "num_subsets": len(result.subsets),
            "rounds_total": result.rounds_total,
            "charikar_density": charikar.density,
            "bahmani_density": bahmani.density,
            "subsets_disjoint": result.subsets_are_disjoint(),
        })
    return rows


# --------------------------------------------------------------------------- E5
def experiment_e5_message_size(dataset_name: str = "collab-small", *,
                               lambdas: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.25, 0.5),
                               epsilon: float = 0.5) -> List[dict]:
    """E5 — Λ-rounding: message size (bits) vs accuracy degradation."""
    graph = load_dataset(dataset_name, weighted=True)
    exact_core = coreness(graph)
    T = rounds_for_epsilon(graph.num_nodes, epsilon)
    rows: List[dict] = []
    for lam in lambdas:
        result, run = run_compact_elimination(graph, T, lam=lam, track_kept=False)
        summary = summarize_ratios(result.values, exact_core)
        rows.append({
            "dataset": dataset_name,
            "lambda": lam,
            "rounds": T,
            "grid_size": result.grid.grid_size() if result.grid.grid_size() else "unbounded",
            "max_message_bits": run.stats.max_message_bits,
            "total_megabits": run.stats.total_bits / 1e6,
            "max_ratio_vs_coreness": summary.max,
            "mean_ratio_vs_coreness": summary.mean,
            "lower_bound_violations": summary.lower_bound_violations,
        })
    return rows


# --------------------------------------------------------------------------- E6
def experiment_e6_lower_bound(*, cycle_nodes: int = 64,
                              gamma_depth_pairs: Sequence[tuple] = ((2, 4), (3, 3), (4, 3)),
                              ) -> List[dict]:
    """E6 — the lower-bound constructions of Figure I.1 and Lemma III.13.

    For Figure I.1: the surviving number of the special node ``v`` stays at 2 for
    every round budget below ~n/2 on all three gadgets, although its true coreness
    differs — i.e. no algorithm can be better than 2-approximate in o(n) rounds.
    For Lemma III.13: the root of the γ-ary tree cannot distinguish G from G' until
    the round budget reaches the tree depth.
    """
    rows: List[dict] = []
    gadget_a, gadget_b, gadget_c = figure1_triple(cycle_nodes)
    sessions = {label: Session(g) for label, g in
                (("cycle(a)", gadget_a), ("broken(b)", gadget_b), ("broken(c)", gadget_c))}
    for rounds in (1, 2, cycle_nodes // 4, cycle_nodes // 2, cycle_nodes):
        vals = {}
        for label, session in sessions.items():
            vals[label] = values_at_round(session.graph, rounds, session=session)[0]
        rows.append({
            "construction": f"figure1(n={cycle_nodes})",
            "rounds": rounds,
            "beta_v_on_(a)": vals["cycle(a)"],
            "beta_v_on_(b)": vals["broken(b)"],
            "beta_v_on_(c)": vals["broken(c)"],
            "coreness_v_(a)/(b)/(c)": "2 / 1 / 1",
            "distinguishable": not (vals["cycle(a)"] == vals["broken(b)"] == vals["broken(c)"]),
        })
    for gamma, depth in gamma_depth_pairs:
        pair = lemma313_pair(gamma, depth)
        tree_session = Session(pair.tree)
        clique_session = Session(pair.tree_with_clique)
        for rounds in range(1, depth + 2):
            tree_value = values_at_round(pair.tree, rounds, session=tree_session)[pair.root]
            clique_value = values_at_round(pair.tree_with_clique, rounds,
                                           session=clique_session)[pair.root]
            rows.append({
                "construction": f"lemma313(gamma={gamma}, depth={depth})",
                "rounds": rounds,
                "beta_root_tree": tree_value,
                "beta_root_tree_plus_clique": clique_value,
                "coreness_root_tree": 1.0,
                "coreness_root_clique": float(gamma),
                "distinguishable": abs(tree_value - clique_value) > 1e-12,
            })
    return rows


# --------------------------------------------------------------------------- E7
def experiment_e7_baselines(dataset_names: Sequence[str] = SMALL_SUITE, *,
                            epsilon: float = 1.0) -> List[dict]:
    """E7 — round complexity and quality vs the distributed comparators."""
    rows: List[dict] = []
    for name, graph in _dataset_graphs(dataset_names).items():
        exact_core = coreness(graph)
        session = Session(graph)  # coreness + densest share one graph's session
        ours = session.coreness(epsilon=epsilon)
        ours_summary = summarize_ratios(ours.values, exact_core)
        montresor = montresor_kcore(graph)
        sarma = sarma_densest_subset(graph, epsilon=epsilon, exact_diameter=False)
        densest = session.densest(epsilon=epsilon)
        rho_star = maximum_density(graph) if graph.num_edges <= _EXACT_DENSITY_EDGE_LIMIT \
            else charikar_peeling(graph).density
        rows.append({
            "dataset": name,
            "diameter": hop_diameter(graph, exact=False),
            "ours_rounds(coreness)": ours.rounds,
            "ours_max_ratio": ours_summary.max,
            "montresor_rounds(exact)": montresor.rounds_to_convergence,
            "ours_densest_rounds": densest.rounds_total,
            "sarma_rounds(diameter-bound)": sarma.rounds,
            "ours_densest_density": densest.best_density,
            "sarma_density": sarma.density,
            "rho_star(or 2-approx)": rho_star,
        })
    return rows


# --------------------------------------------------------------------------- E8
def experiment_e8_scaling(sizes: Sequence[int] = (200, 500, 1000, 2000), *,
                          average_degree: int = 6, rounds: int = 10,
                          include_simulation: bool = True,
                          engines: Sequence[str] = ("vectorized", "sharded"),
                          ) -> List[dict]:
    """E8 — engine scaling: wall-clock and message counts vs graph size.

    Every entry of ``engines`` is an engine spec resolved through the registry
    (:func:`repro.engine.get_engine`) and timed on the same graphs; the faithful
    simulator is timed separately (``include_simulation``) because it also
    yields the message-traffic columns a real deployment would pay.
    """
    from repro.engine import get_engine

    rows: List[dict] = []
    resolved = [(spec, get_engine(spec)) for spec in engines]
    for n in sizes:
        graph = barabasi_albert(n, max(1, average_degree // 2), seed=1000 + n)
        record = {
            "n": n,
            "m": graph.num_edges,
            "rounds": rounds,
        }
        for spec, eng in resolved:
            with obs.timed("experiment.engine_run", engine=spec, n=n) as timing:
                eng.run(graph, rounds, track_kept=False)
            record[f"{spec}_seconds"] = timing.seconds
        if include_simulation and n <= 1000:
            with obs.timed("experiment.simulation", n=n) as timing:
                _, run = run_compact_elimination(graph, rounds,
                                                 track_kept=False)
            record["simulation_seconds"] = timing.seconds
            record["messages"] = run.stats.total_messages
            record["total_megabits"] = run.stats.total_bits / 1e6
        rows.append(record)
    return rows


# --------------------------------------------------------------------------- A1
def ablation_a1_tiebreak(dataset_names: Sequence[str] = ("collab-small", "caveman"), *,
                         epsilon: float = 0.5, weighted: bool = True) -> List[dict]:
    """A1 — tie-breaking rule of Algorithm 3 vs the orientation invariants."""
    rows: List[dict] = []
    for name, graph in _dataset_graphs(dataset_names, weighted=weighted).items():
        rho_star = lp_lower_bound(graph)
        T = rounds_for_epsilon(graph.num_nodes, epsilon)
        session = Session(graph)  # the three rules replay one shared trajectory
        for rule in ("history", "stable", "naive"):
            surv = session.surviving(rounds=T, tie_break=rule, track_kept=True)
            report = check_orientation_invariants(graph, surv.values, surv.kept)
            orientation = orientation_from_kept(graph, surv.kept, values=surv.values)
            rows.append({
                "dataset": name,
                "tie_break": rule,
                "invariants_hold": report.holds,
                "violations": len(report.violations),
                "uncovered_edges": orientation.violations,
                "max_in_degree": orientation.max_in_weight,
                "rho_star": rho_star,
                "ratio_vs_LP": orientation.max_in_weight / rho_star if rho_star else math.inf,
            })
    return rows


# --------------------------------------------------------------------------- A2
def ablation_a2_update_variants(*, sizes: Sequence[int] = (100, 1000, 10000),
                                seed: int = 3) -> List[dict]:
    """A2 — O(d log d) sorting Update vs the O(d) counting Update (Remark III.8)."""
    import numpy as np

    from repro.core.update import update_counting, update_sorted

    rng = np.random.default_rng(seed)
    rows: List[dict] = []
    for d in sizes:
        values = rng.integers(0, d, size=d).astype(float).tolist()
        entries = [(i, values[i], 1.0) for i in range(d)]
        with obs.timed("experiment.update_sorted", degree=d) as timing:
            sorted_result = update_sorted(entries)
        sorted_seconds = timing.seconds
        with obs.timed("experiment.update_counting", degree=d) as timing:
            counting_result = update_counting(values)
        counting_seconds = timing.seconds
        rows.append({
            "degree_d": d,
            "sorted_value": sorted_result.value,
            "counting_value": counting_result,
            "agree": abs(sorted_result.value - counting_result) < 1e-9,
            "sorted_seconds": sorted_seconds,
            "counting_seconds": counting_seconds,
            "speedup": sorted_seconds / counting_seconds if counting_seconds > 0 else math.inf,
        })
    return rows
