"""Approximation-ratio metrics (Definition II.5).

A value ``β(v)`` is a γ-approximation of ``s(v)`` when ``s(v) <= β(v) <= γ·s(v)``.
The functions here compare per-node estimate maps against exact maps and summarise
the resulting ratios (max, mean, quantiles, fraction within a target factor), which
is what the E1/E2 experiment tables report.  The convention ``0/0 = 1`` is used for
isolated nodes (both the estimate and the truth are zero).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Sequence

from repro.errors import AlgorithmError
from repro.utils.numeric import safe_ratio


@dataclass(frozen=True)
class RatioSummary:
    """Summary statistics of per-node approximation ratios."""

    count: int
    max: float
    mean: float
    median: float
    p90: float
    min: float
    lower_bound_violations: int   #: nodes where the estimate fell below the exact value

    def within(self, factor: float) -> bool:
        """Whether the *worst* node is within ``factor`` (the paper's guarantee form)."""
        return self.max <= factor + 1e-9


def per_node_ratios(estimates: Mapping[Hashable, float],
                    exact: Mapping[Hashable, float], *,
                    tol: float = 1e-9) -> Dict[Hashable, float]:
    """Per-node ratios ``estimate / exact`` with the 0/0 = 1 convention.

    Raises if the two maps cover different node sets.
    """
    if set(estimates) != set(exact):
        raise AlgorithmError("estimates and exact values must cover the same node set")
    ratios: Dict[Hashable, float] = {}
    for v, est in estimates.items():
        ratios[v] = safe_ratio(est, exact[v])
    del tol
    return ratios


def summarize_ratios(estimates: Mapping[Hashable, float],
                     exact: Mapping[Hashable, float], *,
                     tol: float = 1e-9) -> RatioSummary:
    """Build a :class:`RatioSummary` for the given estimate/exact maps."""
    ratios = per_node_ratios(estimates, exact)
    values = sorted(ratios.values())
    if not values:
        raise AlgorithmError("cannot summarise an empty ratio map")
    violations = sum(1 for v, est in estimates.items()
                     if est < exact[v] * (1.0 - tol) - tol)
    n = len(values)
    finite = [v for v in values if math.isfinite(v)]
    mean = sum(finite) / len(finite) if finite else math.inf
    return RatioSummary(
        count=n,
        max=values[-1],
        mean=mean,
        median=values[n // 2] if n % 2 == 1 else 0.5 * (values[n // 2 - 1] + values[n // 2]),
        p90=values[min(n - 1, int(math.ceil(0.9 * n)) - 1)],
        min=values[0],
        lower_bound_violations=violations,
    )


def fraction_within(estimates: Mapping[Hashable, float], exact: Mapping[Hashable, float],
                    factor: float) -> float:
    """Fraction of nodes whose ratio is at most ``factor``."""
    ratios = per_node_ratios(estimates, exact)
    if not ratios:
        raise AlgorithmError("cannot evaluate an empty ratio map")
    good = sum(1 for r in ratios.values() if r <= factor + 1e-9)
    return good / len(ratios)


def max_ratio_trajectory(trajectories: Sequence[Mapping[Hashable, float]],
                         exact: Mapping[Hashable, float]) -> list:
    """Worst-node ratio after each round, given per-round estimate maps."""
    return [summarize_ratios(est, exact).max for est in trajectories]
