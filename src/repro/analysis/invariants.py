"""Checks of the paper's invariants and theorem statements.

These are used by the tests (including the hypothesis property tests) and by the
ablation benchmarks; each check returns a small report object rather than raising,
so the ablations can *measure* how often an invariant breaks when the algorithm is
deliberately weakened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.graph.graph import Graph


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of an invariant check."""

    name: str
    holds: bool
    violations: Tuple[str, ...] = ()

    def __bool__(self) -> bool:  # allows ``assert check_x(...)`` in tests
        return self.holds


def check_orientation_invariants(graph: Graph, values: Mapping[Hashable, float],
                                 kept: Mapping[Hashable, Sequence[Hashable]], *,
                                 tol: float = 1e-9) -> InvariantReport:
    """Definition III.7: load bound per node and per-edge coverage.

    * Invariant 1: ``Σ_{u ∈ N_v} w(u, v) <= b_v`` for every node ``v``;
    * Invariant 2: for every non-loop edge ``{u, v}``, ``u ∈ N_v`` or ``v ∈ N_u``.
    """
    violations: List[str] = []
    kept_sets = {v: set(neighbors) for v, neighbors in kept.items()}
    for v in graph.nodes():
        load = sum(graph.edge_weight(u, v) for u in kept_sets.get(v, ()) if u != v)
        if load > values.get(v, 0.0) + tol:
            violations.append(f"load({v!r})={load:.6g} exceeds b={values.get(v, 0.0):.6g}")
    for u, v, _ in graph.edges():
        if u == v:
            continue
        if u not in kept_sets.get(v, set()) and v not in kept_sets.get(u, set()):
            violations.append(f"edge ({u!r}, {v!r}) claimed by neither endpoint")
    return InvariantReport(name="orientation-invariants", holds=not violations,
                           violations=tuple(violations))


def check_sandwich(values: Mapping[Hashable, float], coreness: Mapping[Hashable, float],
                   maximal_density: Mapping[Hashable, float], guarantee: float, *,
                   lam: float = 0.0, tol: float = 1e-6) -> InvariantReport:
    """Theorem III.5 / Corollary III.10 sandwich:
    ``r(v)/(1+λ) <= c(v)/(1+λ) <= b_v <= γ·r(v) <= γ·c(v)``."""
    violations: List[str] = []
    slack = 1.0 + lam
    for v, b in values.items():
        c = coreness.get(v, 0.0)
        r = maximal_density.get(v, 0.0)
        if r > c + tol * max(1.0, c):
            violations.append(f"r({v!r})={r:.6g} exceeds c({v!r})={c:.6g}")
        if b < c / slack - tol * max(1.0, c):
            violations.append(f"b({v!r})={b:.6g} below c/(1+λ)={c / slack:.6g}")
        if b > guarantee * r + tol * max(1.0, guarantee * r):
            violations.append(f"b({v!r})={b:.6g} exceeds γ·r={guarantee * r:.6g}")
    return InvariantReport(name="value-sandwich", holds=not violations,
                           violations=tuple(violations))


def check_coreness_density_relation(coreness: Mapping[Hashable, float],
                                    maximal_density: Mapping[Hashable, float], *,
                                    tol: float = 1e-6) -> InvariantReport:
    """Corollary III.6: ``r(v) <= c(v) <= 2·r(v)`` for every node."""
    violations: List[str] = []
    for v, c in coreness.items():
        r = maximal_density.get(v, 0.0)
        if r > c + tol * max(1.0, c):
            violations.append(f"r({v!r})={r:.6g} > c({v!r})={c:.6g}")
        if c > 2.0 * r + tol * max(1.0, r):
            violations.append(f"c({v!r})={c:.6g} > 2r({v!r})={2 * r:.6g}")
    return InvariantReport(name="coreness-vs-maximal-density", holds=not violations,
                           violations=tuple(violations))


def check_weak_densest_definition(graph: Graph, subsets: Mapping[Hashable, frozenset],
                                  best_required_density: float, *,
                                  tol: float = 1e-9) -> InvariantReport:
    """Definition IV.1: disjoint subsets, and at least one with density >= ρ*/γ."""
    violations: List[str] = []
    seen: set = set()
    for leader, members in subsets.items():
        overlap = seen & set(members)
        if overlap:
            violations.append(f"subset of leader {leader!r} overlaps earlier subsets: {overlap!r}")
        seen |= set(members)
    if subsets:
        best = max(graph.subset_density(members) for members in subsets.values() if members)
        if best + tol < best_required_density:
            violations.append(
                f"best reported density {best:.6g} below required {best_required_density:.6g}")
    else:
        if best_required_density > tol:
            violations.append("no subset was reported although a non-trivial density is required")
    return InvariantReport(name="weak-densest-definition", holds=not violations,
                           violations=tuple(violations))


def check_monotone_non_increasing(trajectory, *, tol: float = 1e-9) -> InvariantReport:
    """Surviving numbers never increase from one round to the next (per node)."""
    import numpy as np

    arr = np.asarray(trajectory, dtype=float)
    violations: List[str] = []
    diffs = arr[1:] - arr[:-1]
    finite = np.isfinite(arr[:-1])
    bad = (diffs > tol) & finite
    if bad.any():
        rounds, nodes = np.nonzero(bad)
        for r, v in list(zip(rounds, nodes))[:10]:
            violations.append(f"node column {v} increased at round {r + 1}")
    return InvariantReport(name="monotone-surviving-numbers", holds=not violations,
                           violations=tuple(violations))
