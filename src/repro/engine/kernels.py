"""Per-round NumPy kernels shared by the vectorised execution engines.

These are the innermost loops of the library, extracted from the original
monolithic implementations in :mod:`repro.core.surviving` and
:mod:`repro.core.elimination` so that every engine (see :mod:`repro.engine.base`)
composes the *same* kernels instead of re-implementing them:

* :func:`compact_round_range` — one synchronous round of Algorithm 2 (the compact
  elimination / surviving-number update) for a contiguous *row range* of a CSR
  view;
* :func:`threshold_round_range` — one synchronous round of Algorithm 1 (the
  single-threshold elimination) for a row range;
* :func:`compact_trajectory` — the round loop over an arbitrary shard plan,
  producing the full ``(T+1, n)`` trajectory with monotone early-stopping —
  either as a RAM array or, given an ``out=`` append-trajectory sink
  (:mod:`repro.store.traj`), appended round-by-round to a mapped file with
  only a two-row sliding window resident.

Every kernel takes an explicit ``[lo, hi)`` node range and only materialises the
frontier arrays (gathered neighbour values, sort permutation, prefix sums) for
that range, which is what bounds the peak memory of the sharded engine: with a
shard plan of ``k`` ranges, at most one range's frontier arrays exist at a time
(unless a concurrent executor is supplied, in which case each in-flight shard
owns one set).

Numerical note: within a kernel invocation the per-row prefix sums are derived
from a single cumulative sum over the range (exactly like the original
implementation), so surviving numbers are bit-identical across *any* shard plan
whenever the intermediate weight sums are exactly representable — in particular
for integer and dyadic-rational edge weights, which is what the cross-engine
equivalence suite pins down.  For arbitrary float weights, different shard plans
may differ in the last ulp (and so may the faithful per-node protocol, which
accumulates with Python floats); callers compare with tolerances there.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.rounding import LambdaGrid
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency
from repro.obs import trace as obs_trace
from repro.obs.metrics import get_registry

#: Always-on per-round kernel-time histogram (process-wide default registry).
#: One ``observe`` per round is ~µs against round costs of ms and up.
KERNEL_ROUND_SECONDS = get_registry().histogram(
    "repro_kernel_round_seconds",
    "Wall time of one synchronous elimination round (all shards)")

#: A shard plan: contiguous, disjoint ``[lo, hi)`` node ranges covering ``0..n``.
ShardPlan = Sequence[Tuple[int, int]]


def shard_plan(num_nodes: int, num_shards: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``0..num_nodes`` into ``num_shards`` contiguous near-equal ranges.

    The first ``num_nodes % num_shards`` ranges get one extra node.  A plan for an
    empty graph is the single empty range ``(0, 0)`` so that round loops stay
    uniform.  ``num_shards`` larger than ``num_nodes`` is clamped (empty shards
    would only add overhead).
    """
    if num_shards < 1:
        raise AlgorithmError(f"num_shards must be >= 1, got {num_shards}")
    if num_nodes <= 0:
        return ((0, 0),)
    shards = min(num_shards, num_nodes)
    base, extra = divmod(num_nodes, shards)
    bounds = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return tuple(bounds)


def round_values(grid: LambdaGrid, values: np.ndarray) -> np.ndarray:
    """Λ-round every entry of ``values`` down onto the grid (identity when exact)."""
    if grid.is_exact:
        return values
    return np.array([grid.round_down(x) for x in values], dtype=np.float64)


def compact_round_range(csr: CSRAdjacency, current: np.ndarray, lo: int, hi: int,
                        grid: LambdaGrid) -> np.ndarray:
    """One round of Algorithm 2 for the nodes ``lo..hi-1`` of a CSR view.

    Implements the ``max_k min(S_k, b_(k))`` characterisation of Algorithm 3 (see
    :func:`repro.core.update.update_value_only`) with a single lexsort over the
    range's CSR slice.  ``current`` is the *full* surviving-number vector (a
    node's update reads all of its neighbours, which may live in other shards);
    the return value holds the new surviving numbers for the range only,
    Λ-rounded when the grid is not exact.
    """
    start, stop = int(csr.indptr[lo]), int(csr.indptr[hi])
    local_n = hi - lo
    loops = csr.loops[lo:hi]
    counts = np.diff(csr.indptr[lo:hi + 1])
    rows = np.repeat(np.arange(local_n), counts)
    vals = current[csr.indices[start:stop]]
    # Sort each row's entries by descending neighbour value.  ``lexsort`` sorts by
    # the last key first, so (−vals, rows) yields: primary = row, secondary = −val.
    order = np.lexsort((-vals, rows))
    sorted_vals = vals[order]
    sorted_w = csr.weights[start:stop][order]
    # Prefix sums of weights *within* each row, offset by the node's self-loop.
    flat_cs = np.cumsum(sorted_w)
    row_starts = csr.indptr[lo:hi] - start
    nonempty = counts > 0
    before_row = np.zeros(local_n, dtype=np.float64)
    before_row[nonempty] = flat_cs[row_starts[nonempty]] - sorted_w[row_starts[nonempty]]
    within_cs = flat_cs - np.repeat(before_row, counts) + np.repeat(loops, counts)
    candidates = np.minimum(within_cs, sorted_vals)
    new = loops.copy()  # a node with no neighbours keeps only its self-loop weight
    if len(candidates):
        seg_max = np.full(local_n, -np.inf, dtype=np.float64)
        seg_max[nonempty] = np.maximum.reduceat(candidates, row_starts[nonempty])
        new = np.maximum(new, np.where(nonempty, seg_max, loops))
    return round_values(grid, new)


def compact_round(csr: CSRAdjacency, current: np.ndarray, grid: LambdaGrid) -> np.ndarray:
    """One full round of Algorithm 2 over every node (single-range kernel call)."""
    return compact_round_range(csr, current, 0, csr.num_nodes, grid)


def init_trajectory(num_nodes: int, rounds: int,
                    prefix: Optional[np.ndarray] = None,
                    out=None) -> Tuple[object, int]:
    """Allocate a ``(rounds + 1, n)`` trajectory, seeded from an optional prefix.

    Returns ``(trajectory, start)``: row 0 is the initial ``+inf`` state, rows
    ``1..start`` are copied verbatim from ``prefix`` (clamped to ``rounds``),
    and the round loop should resume at ``start + 1``.  Shared by every
    trajectory executor (:func:`compact_trajectory` and the process-parallel
    path in :mod:`repro.engine.shm`) so prefix semantics cannot drift between
    them.

    When ``out`` is an :class:`~repro.store.traj.AppendTrajectory`, no RAM
    array is allocated: the first element of the return value is ``out``
    itself, seeded so its on-disk rows hold the same ``start + 1`` rows the
    in-memory path would, and ``start`` additionally resumes from rows
    *already published on disk* (the file is its own warm start, so a prefix
    shorter than the file — or none at all — still skips the completed
    rounds).
    """
    if rounds < 0:
        raise AlgorithmError(f"rounds must be non-negative, got {rounds}")
    if prefix is not None and (
            prefix.ndim != 2 or prefix.shape[1] != num_nodes or prefix.shape[0] < 1):
        raise AlgorithmError(
            f"trajectory prefix of shape {getattr(prefix, 'shape', None)} does not "
            f"match a {num_nodes}-node CSR view")
    if out is not None:
        return out, min(out.ensure_prefix(prefix), rounds)
    trajectory = np.full((rounds + 1, num_nodes), np.inf, dtype=np.float64)
    start = 0
    if prefix is not None:
        start = min(prefix.shape[0] - 1, rounds)
        trajectory[:start + 1] = prefix[:start + 1]
    return trajectory, start


def compact_trajectory(csr: CSRAdjacency, rounds: int, *, lam: float = 0.0,
                       plan: Optional[ShardPlan] = None,
                       shard_map: Optional[Callable] = None,
                       prefix: Optional[np.ndarray] = None,
                       out=None) -> np.ndarray:
    """The full Algorithm 2 trajectory of surviving numbers over a shard plan.

    Returns an array of shape ``(rounds + 1, n)``: row 0 is the initial ``+inf``
    state, row ``t`` holds every node's surviving number after ``t`` rounds.
    Because the process is monotone, once a fixed point is reached the remaining
    rows simply repeat it.

    Parameters
    ----------
    plan:
        Contiguous node ranges executed one after another within each round
        (default: a single range covering all nodes).  Synchronous-round semantics
        are preserved because every shard reads the *previous* round's full
        vector and writes only its own range.
    shard_map:
        Optional parallel map (e.g. ``concurrent.futures.Executor.map``) applied
        to the per-shard kernel calls of one round; ``None`` runs the shards
        sequentially, which caps peak memory at one shard's frontier arrays.
    prefix:
        Optional previously computed trajectory of the *same* CSR view and λ (an
        output of this function).  Its rows are copied verbatim and the round
        loop resumes after the last one, so a request with a larger budget pays
        only for the missing rounds.  Each round is a deterministic function of
        the previous row, hence the resumed trajectory is bit-identical to a
        cold run (the cross-engine equivalence suite pins this).  A prefix
        longer than ``rounds`` simply yields the sliced trajectory.
    out:
        Optional :class:`~repro.store.traj.AppendTrajectory`: completed rounds
        are appended (and published) to the mapped file instead of filling a
        RAM array, only a sliding window of two rows stays resident, and the
        return value is a read-only ``np.memmap`` over the published prefix —
        bit-identical rows, since each round runs the very same kernel calls
        on the very same previous-row vector.
    """
    n = csr.num_nodes
    grid = LambdaGrid(lam=lam)
    bounds = tuple(plan) if plan is not None else ((0, n),)
    trajectory, start = init_trajectory(n, rounds, prefix, out=out)
    current = out.row(start) if out is not None else trajectory[start].copy()
    # One tracer/context fetch per call; per-round work stays a None-check
    # when tracing is disabled.  Shard spans recorded from pool threads pass
    # the caller's context explicitly (thread-local stacks don't cross).
    tracer = obs_trace.active()
    parent = obs_trace.current_context() if tracer is not None else None
    for t in range(start + 1, rounds + 1):
        round_unix = time.time() if tracer is not None else 0.0
        round_perf = time.perf_counter()
        if len(bounds) == 1:
            lo, hi = bounds[0]
            new = compact_round_range(csr, current, lo, hi, grid)
        else:
            new = np.empty(n, dtype=np.float64)
            if shard_map is not None:
                if tracer is None:
                    run_shard = (lambda b, _cur=current:
                                 compact_round_range(csr, _cur, b[0], b[1], grid))
                else:
                    def run_shard(b, _cur=current, _t=t):
                        shard_unix = time.time()
                        shard_perf = time.perf_counter()
                        chunk = compact_round_range(csr, _cur, b[0], b[1], grid)
                        tracer.record_span(
                            "kernel.shard", start_unix=shard_unix,
                            duration=time.perf_counter() - shard_perf,
                            parent=parent,
                            attrs={"lo": b[0], "hi": b[1], "round": _t})
                        return chunk
                chunks = shard_map(run_shard, bounds)
                for (lo, hi), chunk in zip(bounds, chunks):
                    new[lo:hi] = chunk
            else:
                for lo, hi in bounds:
                    new[lo:hi] = compact_round_range(csr, current, lo, hi, grid)
        round_seconds = time.perf_counter() - round_perf
        KERNEL_ROUND_SECONDS.observe(round_seconds)
        if tracer is not None:
            tracer.record_span(
                "kernel.round_range", start_unix=round_unix,
                duration=round_seconds, parent=parent,
                attrs={"round": t, "shards": len(bounds), "n": n})
        if out is not None:
            out.append_row(new)
        else:
            trajectory[t] = new
        if np.array_equal(new, current):
            if out is not None:
                out.fill_to(rounds, new)
            else:
                trajectory[t:] = new
            break
        current = new
    return out.as_array(rounds) if out is not None else trajectory


class FrontierWarmStart:
    """Warm start for a delta-derived graph: recompute only the dirty frontier.

    Carries everything :func:`frontier_trajectory` needs to re-solve a child
    graph incrementally against its parent's trajectory:

    * ``parent_trajectory`` — the parent's ``(P + 1, parent_n)`` trajectory
      for the same λ;
    * ``parent_ids`` — int64 ``(n,)``: the parent integer id of every child
      node, ``-1`` for nodes the delta introduced;
    * ``changed`` — sorted int64 child ids whose update rule differs from the
      parent (delta edge endpoints, re-weighted/removed edge endpoints, new
      nodes) — the permanent seed of the frontier;
    * ``max_frontier_fraction`` — the fallback policy: when the dirty set of
      any round exceeds this fraction of ``n``, the incremental path bails
      out (returns ``None``) and the caller runs a cold solve instead.

    After the attempt the object reports what happened: ``used`` (the
    incremental path produced the trajectory), ``fallback_reason`` (why it
    did not), ``peak_frontier`` and ``nodes_recomputed`` (the work actually
    done — the rest of the rows were copied from the parent).
    """

    __slots__ = ("parent_trajectory", "parent_ids", "changed",
                 "max_frontier_fraction", "used", "fallback_reason",
                 "peak_frontier", "nodes_recomputed")

    def __init__(self, parent_trajectory: np.ndarray, parent_ids: np.ndarray,
                 changed: np.ndarray, *,
                 max_frontier_fraction: float = 0.25) -> None:
        fraction = float(max_frontier_fraction)
        if not 0.0 <= fraction <= 1.0:
            raise AlgorithmError(f"max_frontier_fraction must be in [0, 1], "
                                 f"got {fraction!r}")
        self.parent_trajectory = np.asarray(parent_trajectory)
        self.parent_ids = np.asarray(parent_ids, dtype=np.int64)
        self.changed = np.unique(np.asarray(changed, dtype=np.int64))
        self.max_frontier_fraction = fraction
        self.used = False
        self.fallback_reason: Optional[str] = None
        self.peak_frontier = 0
        self.nodes_recomputed = 0

    def _fallback(self, reason: str) -> None:
        self.used = False
        self.fallback_reason = reason


def _gathered_sub_csr(csr: CSRAdjacency, ids: np.ndarray):
    """A CSR view of just the rows ``ids``, indices still in full node space.

    Per-row adjacency order is preserved, so the lexsort tie resolution
    inside :func:`compact_round_range` is identical to a full-range call —
    the gathered rows run through the *same shared kernel* as every other
    engine path.
    """
    from types import SimpleNamespace

    starts = np.asarray(csr.indptr)[ids]
    counts = np.asarray(csr.indptr)[ids + 1] - starts
    sub_indptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum(counts, out=sub_indptr[1:])
    positions = np.repeat(starts - sub_indptr[:-1], counts) \
        + np.arange(int(sub_indptr[-1]), dtype=np.int64)
    return SimpleNamespace(indptr=sub_indptr,
                           indices=np.asarray(csr.indices)[positions],
                           weights=np.asarray(csr.weights)[positions],
                           loops=np.asarray(csr.loops)[ids])


def frontier_trajectory(csr: CSRAdjacency, rounds: int, *, lam: float = 0.0,
                        warm: FrontierWarmStart) -> Optional[np.ndarray]:
    """Incremental Algorithm 2 trajectory of a delta-derived graph.

    Exploits the locality of the compact elimination rule: a node's round-``t``
    value depends only on its *neighbours'* round-``t-1`` values (and its own
    static loops/weights), never on its own previous value.  So a node whose
    adjacency is unchanged and whose neighbours all carry parent-identical
    values can copy the parent's row entry verbatim.  Per round the dirty set

        ``dirty_t = changed ∪ N(diff_{t-1})``

    is recomputed through :func:`compact_round_range` on a gathered sub-CSR
    (full-space indices, per-row order preserved), where ``diff_{t-1}`` is the
    set of nodes whose recomputed round-``t-1`` value actually differs from
    the parent's; everything else is copied from ``warm.parent_trajectory``.

    Returns the full ``(rounds + 1, n)`` trajectory, or ``None`` when the
    incremental path cannot (parent trajectory too short and not converged)
    or should not (frontier exceeded ``max_frontier_fraction·n``) run — the
    caller then falls back to a cold solve.  ``warm`` records the outcome.

    Bit-identity caveat: like the shard-plan invariance of
    :func:`compact_round_range`, copied-vs-recomputed equality is exact for
    integer/dyadic-rational weights (the domain the equivalence suite pins);
    arbitrary float weights carry the usual last-ulp caveat.
    """
    if rounds < 0:
        raise AlgorithmError(f"rounds must be non-negative, got {rounds}")
    n = csr.num_nodes
    grid = LambdaGrid(lam=lam)
    ptraj = warm.parent_trajectory
    parent_ids = warm.parent_ids
    if parent_ids.shape != (n,):
        raise AlgorithmError(f"parent_ids of shape {parent_ids.shape} does "
                             f"not match a {n}-node CSR view")
    P = ptraj.shape[0] - 1
    if P < 1:
        warm._fallback("parent trajectory has no computed rounds")
        return None
    if rounds > P and not np.array_equal(ptraj[P], ptraj[P - 1]):
        warm._fallback(f"parent trajectory covers {P} < {rounds} rounds "
                       f"and has not converged")
        return None
    limit = int(warm.max_frontier_fraction * n)
    changed = warm.changed
    if changed.size and (changed[0] < 0 or changed[-1] >= n):
        raise AlgorithmError("changed ids out of range")
    has_parent = parent_ids >= 0
    gather_ids = parent_ids[has_parent]

    tracer = obs_trace.active()
    parent_ctx = obs_trace.current_context() if tracer is not None else None
    trajectory = np.full((rounds + 1, n), np.inf, dtype=np.float64)
    dirty = changed
    current = trajectory[0]
    for t in range(1, rounds + 1):
        if dirty.size > limit:
            warm._fallback(f"frontier of {dirty.size} nodes exceeds "
                           f"{warm.max_frontier_fraction:g} of n={n} "
                           f"at round {t}")
            return None
        warm.peak_frontier = max(warm.peak_frontier, int(dirty.size))
        round_unix = time.time() if tracer is not None else 0.0
        round_perf = time.perf_counter()
        row = trajectory[t]
        # Untouched nodes: the parent's row verbatim (the fixed-point row
        # once the parent converged — f(x) = x, so the copy stays exact).
        row[has_parent] = ptraj[min(t, P)][gather_ids]
        if dirty.size:
            new_vals = compact_round_range(_gathered_sub_csr(csr, dirty),
                                           current, 0, len(dirty), grid)
            diff_mask = new_vals != row[dirty]
            row[dirty] = new_vals
            warm.nodes_recomputed += int(dirty.size)
        else:
            diff_mask = np.zeros(0, dtype=bool)
        round_seconds = time.perf_counter() - round_perf
        KERNEL_ROUND_SECONDS.observe(round_seconds)
        if tracer is not None:
            tracer.record_span(
                "kernel.frontier_round", start_unix=round_unix,
                duration=round_seconds, parent=parent_ctx,
                attrs={"round": t, "dirty": int(dirty.size), "n": n})
        if np.array_equal(row, current):
            trajectory[t:] = row  # child fixed point: remaining rows repeat
            break
        if diff_mask.any():
            diff_ids = dirty[diff_mask]
            starts = np.asarray(csr.indptr)[diff_ids]
            counts = np.asarray(csr.indptr)[diff_ids + 1] - starts
            positions = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                counts) + np.arange(int(counts.sum()), dtype=np.int64)
            neighbours = np.asarray(csr.indices)[positions]
            dirty = np.unique(np.concatenate((changed, neighbours)))
        else:
            dirty = changed
        current = row
    warm.used = True
    return trajectory


def threshold_round_range(csr: CSRAdjacency, alive: np.ndarray, threshold: float,
                          lo: int, hi: int) -> np.ndarray:
    """One round of Algorithm 1 (single-threshold elimination) for ``lo..hi-1``.

    ``alive`` is the full survival mask after the previous round; the return value
    is the new mask restricted to the range: a node stays alive iff it was alive
    and its weighted degree towards surviving neighbours (plus its self-loop) is
    at least ``threshold``.
    """
    start, stop = int(csr.indptr[lo]), int(csr.indptr[hi])
    local_n = hi - lo
    counts = np.diff(csr.indptr[lo:hi + 1])
    rows = np.repeat(np.arange(local_n), counts)
    contrib = np.where(alive[csr.indices[start:stop]], csr.weights[start:stop], 0.0)
    deg = np.zeros(local_n, dtype=np.float64)
    np.add.at(deg, rows, contrib)
    deg += csr.loops[lo:hi]
    return alive[lo:hi] & (deg >= threshold)


def restricted_threshold_round_range(csr: CSRAdjacency, alive: np.ndarray,
                                     leaders: np.ndarray, thresholds: np.ndarray,
                                     lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
    """One round of Algorithm 5 (tree-restricted elimination) for ``lo..hi-1``.

    The per-tree variant of :func:`threshold_round_range`: a node's degree only
    counts surviving neighbours that adopted the *same leader* (``leaders`` is
    the full per-node leader-id vector from Phase 2), and the threshold is
    per-node (the leader's surviving number ``b_u``, gathered by the caller).
    Returns ``(new_alive, deg)`` for the range: the survival mask after the
    round and the restricted weighted degree that was compared against the
    threshold — the ``deg_v[t]`` record that Phase 4 aggregates.  Nodes that
    were already inactive record a degree of 0.0, matching the faithful
    protocol (inactive nodes never execute the round body).
    """
    start, stop = int(csr.indptr[lo]), int(csr.indptr[hi])
    local_n = hi - lo
    counts = np.diff(csr.indptr[lo:hi + 1])
    rows = np.repeat(np.arange(local_n), counts)
    src = csr.indices[start:stop]
    same = leaders[src] == leaders[lo:hi][rows]
    contrib = np.where(alive[src] & same, csr.weights[start:stop], 0.0)
    deg = np.zeros(local_n, dtype=np.float64)
    np.add.at(deg, rows, contrib)
    deg += csr.loops[lo:hi]
    alive_range = alive[lo:hi]
    deg = np.where(alive_range, deg, 0.0)
    return alive_range & (deg >= thresholds[lo:hi]), deg


def threshold_masks(csr: CSRAdjacency, threshold: float, rounds: int, *,
                    plan: Optional[ShardPlan] = None) -> np.ndarray:
    """Per-round survival masks of Algorithm 1 (shape ``(rounds + 1, n)``).

    Row ``t`` is the survival mask after ``t`` rounds (row 0 is all-True).  Stops
    early (repeating the last row) once the mask stops changing, since the
    process is monotone.
    """
    if rounds < 0:
        raise AlgorithmError(f"rounds must be non-negative, got {rounds}")
    n = csr.num_nodes
    bounds = tuple(plan) if plan is not None else ((0, n),)
    masks = np.ones((rounds + 1, n), dtype=bool)
    current = masks[0].copy()
    for t in range(1, rounds + 1):
        new = np.empty(n, dtype=bool)
        for lo, hi in bounds:
            new[lo:hi] = threshold_round_range(csr, current, threshold, lo, hi)
        masks[t] = new
        if np.array_equal(new, current):
            masks[t:] = new
            break
        current = new
    return masks
