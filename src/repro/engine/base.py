"""The :class:`Engine` protocol and the engine registry.

An *engine* is an interchangeable executor of Algorithm 2 (the compact
elimination procedure): given a graph and a round budget it produces a
:class:`~repro.core.surviving.SurvivingNumbers`.  All engines are required — and
property-tested — to compute the same surviving numbers, kept sets and
orientations; they differ only in *how* the synchronous rounds are executed:

============  ===============================================================
name          implementation
============  ===============================================================
``faithful``  the per-node message-passing protocol on the distsim simulator
              (reference semantics, message statistics; alias ``simulation``)
``vectorized``  NumPy kernels over the whole CSR view in one shot per round
              (alias ``numpy``)
``sharded``   the same kernels executed shard-by-shard over contiguous node
              ranges, bounding peak memory to one shard's frontier arrays;
              optionally fanned out over a thread pool
              (``parallel=thread``) or — breaking the GIL ceiling — over a
              shared-memory process pool (``parallel=process``); with
              ``storage=mmap`` the CSR arrays stream from memory-mapped
              files on disk (out-of-core; see :mod:`repro.graph.mmap_csr`),
              and with ``trajectory_storage=mmap`` (alias ``traj=mmap``) the
              output trajectory is appended to an on-disk ``.traj`` buffer
              (see :mod:`repro.store.traj`)
============  ===============================================================

Engines are resolved by name through :func:`get_engine`, which also accepts an
*engine spec* carrying inline options, e.g. ``"sharded:4"`` (4 shards),
``"sharded:shards=4,workers=2"``, ``"sharded:workers=4,parallel=process"`` or
``"sharded:storage=mmap"``.  Third-party backends can hook in with
:func:`register_engine`; the registry is the extension point for every future
execution backend (multiprocessing, GPU, out-of-core...).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

from repro.errors import AlgorithmError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rounding import LambdaGrid
    from repro.core.surviving import SurvivingNumbers
    from repro.graph.csr import CSRAdjacency
    from repro.graph.graph import Graph


class Engine(ABC):
    """Executor of the compact elimination procedure (Algorithm 2)."""

    #: canonical registry name of the engine
    name: str = "abstract"

    #: whether the engine consumes precomputed csr/grid artifacts; engines
    #: that ignore them by design (the faithful simulator) set this False so
    #: callers like :class:`repro.session.Session` never build them in vain.
    consumes_artifacts: bool = True

    @abstractmethod
    def run(self, graph: "Graph", rounds: int, *, lam: float = 0.0,
            tie_break: str = "history", track_kept: bool = True,
            csr: Optional["CSRAdjacency"] = None,
            grid: Optional["LambdaGrid"] = None,
            warm_start=None) -> "SurvivingNumbers":
        """Run Algorithm 2 for ``rounds`` rounds and return the surviving numbers.

        ``csr`` and ``grid`` are optional precomputed artifacts (a CSR view of
        ``graph`` and its Λ-grid); :class:`~repro.session.Session` and the
        :class:`~repro.engine.batch.BatchRunner` pass them so that many requests
        on the same graph share one CSR view and memoised grids.  ``warm_start``
        is an optional trajectory array from an earlier run with the *same*
        graph and λ: trajectory engines resume the round loop after its last row
        instead of recomputing rounds ``1..T_old`` (bit-identical by round
        determinism).  Engines that do not consume these hints ignore them —
        they are pure optimisations, never a semantic change.
        """

    def describe(self) -> str:
        """One-line human-readable description (used by the CLI)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


#: Something :func:`get_engine` accepts: a name/spec string or an Engine instance.
EngineLike = Union[str, Engine]

EngineFactory = Callable[..., Engine]

_FACTORIES: Dict[str, EngineFactory] = {}
_ALIASES: Dict[str, str] = {}
_SHORTHAND: Dict[str, str] = {}


def register_engine(name: str, factory: EngineFactory, *,
                    aliases: Tuple[str, ...] = (),
                    shorthand_option: Optional[str] = None) -> None:
    """Register an engine factory under ``name`` (plus optional aliases).

    ``factory(**options)`` must return an :class:`Engine`.  ``shorthand_option``
    names the keyword a bare value in an engine spec maps to (e.g. ``"sharded:4"``
    with ``shorthand_option="num_shards"`` resolves to ``num_shards=4``).
    Re-registering a name replaces the previous factory, which lets tests and
    downstream code shadow a builtin.
    """
    canonical = name.strip().lower()
    if not canonical:
        raise AlgorithmError("engine name must be non-empty")
    _FACTORIES[canonical] = factory
    for alias in aliases:
        _ALIASES[alias.strip().lower()] = canonical
    if shorthand_option is not None:
        _SHORTHAND[canonical] = shorthand_option


def available_engines() -> Tuple[str, ...]:
    """The canonical names of all registered engines, sorted."""
    return tuple(sorted(_FACTORIES))


def _coerce(token: str):
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def parse_engine_spec(spec: str) -> Tuple[str, Dict[str, object]]:
    """Split an engine spec string into ``(name, options)``.

    Grammar: ``name[:opt[,opt...]]`` where each ``opt`` is either ``key=value``
    or a bare value (mapped through the engine's registered shorthand option).
    Values are coerced to int/float when they parse as one.
    """
    name, _, option_text = spec.partition(":")
    name = name.strip().lower()
    options: Dict[str, object] = {}
    if option_text:
        canonical = _ALIASES.get(name, name)
        for token in option_text.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                options[key.strip()] = _coerce(value.strip())
            else:
                shorthand = _SHORTHAND.get(canonical)
                if shorthand is None:
                    raise AlgorithmError(
                        f"engine {canonical!r} takes no positional option "
                        f"(got {token!r} in spec {spec!r}); use key=value")
                options[shorthand] = _coerce(token)
    return name, options


def get_engine(engine: EngineLike = "vectorized", **options) -> Engine:
    """Resolve ``engine`` to an :class:`Engine` instance.

    ``engine`` may be an :class:`Engine` instance (returned as-is; extra options
    are rejected), a canonical name or alias (``"faithful"``/``"simulation"``,
    ``"vectorized"``/``"numpy"``, ``"sharded"``), or a spec string with inline
    options such as ``"sharded:4"``.  Keyword ``options`` are merged over the
    inline ones and handed to the engine factory.

    Raises
    ------
    AlgorithmError
        For unknown engine names or invalid options.
    """
    if isinstance(engine, Engine):
        if options:
            raise AlgorithmError(
                f"options {sorted(options)!r} cannot be applied to an already-"
                f"constructed engine instance {engine!r}")
        return engine
    if not isinstance(engine, str):
        raise AlgorithmError(
            f"engine must be a name string or an Engine instance, got {engine!r}")
    name, spec_options = parse_engine_spec(engine)
    canonical = _ALIASES.get(name, name)
    factory = _FACTORIES.get(canonical)
    if factory is None:
        raise AlgorithmError(
            f"unknown engine {name!r}; expected one of {', '.join(available_engines())} "
            f"(aliases: {', '.join(sorted(_ALIASES))})")
    merged = {**spec_options, **options}
    try:
        return factory(**merged)
    except TypeError as exc:
        raise AlgorithmError(
            f"invalid options {merged!r} for engine {canonical!r}: {exc}") from exc


# ----------------------------------------------------------------- builtins
# The builtin factories import their modules lazily so that importing the
# registry (which `repro.core.surviving` does at import time, for the kernels)
# never recurses back into the core modules the engines are built from.

def _make_faithful(**options) -> Engine:
    from repro.engine.faithful import FaithfulEngine

    return FaithfulEngine(**options)


def _make_vectorized(**options) -> Engine:
    from repro.engine.vectorized import VectorizedEngine

    return VectorizedEngine(**options)


#: Friendly spelling aliases accepted in sharded engine specs.
_SHARDED_OPTION_ALIASES = {"shards": "num_shards", "workers": "max_workers",
                           "dir": "storage_dir", "spill": "spill_bytes",
                           "traj": "trajectory_storage"}


def _make_sharded(**options) -> Engine:
    from repro.engine.sharded import ShardedEngine

    return ShardedEngine(**{_SHARDED_OPTION_ALIASES.get(k, k): v
                            for k, v in options.items()})


register_engine("faithful", _make_faithful, aliases=("simulation", "distsim"))
register_engine("vectorized", _make_vectorized, aliases=("numpy",))
register_engine("sharded", _make_sharded, shorthand_option="num_shards")
