"""The ``vectorized`` engine — whole-graph NumPy kernels, one call per round.

Also home of :class:`TrajectoryEngine`, the shared base class for every engine
that computes the full per-round trajectory on a CSR view (the sharded engine
subclasses it with a different round executor).
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.engine.base import Engine
from repro.engine.kernels import (FrontierWarmStart, compact_trajectory,
                                  frontier_trajectory)
from repro.errors import AlgorithmError
from repro.obs import trace as obs_trace


class TrajectoryEngine(Engine):
    """Base class for CSR-trajectory engines (vectorized, sharded, ...).

    Subclasses implement :meth:`trajectory`; this class handles argument
    validation, CSR conversion, label mapping and the recovery of the auxiliary
    orientation subsets from the trajectory.
    """

    def run(self, graph, rounds, *, lam=0.0, tie_break="history", track_kept=True,
            csr=None, grid=None, warm_start=None):
        from repro.core.rounding import grid_for_graph
        from repro.core.surviving import TIE_BREAK_RULES
        from repro.graph.csr import graph_to_csr

        if tie_break not in TIE_BREAK_RULES:
            raise AlgorithmError(
                f"unknown tie_break rule {tie_break!r}; expected one of {TIE_BREAK_RULES}")
        if rounds < 1:
            raise AlgorithmError(f"rounds must be >= 1, got {rounds}")
        if csr is None:
            csr = graph_to_csr(graph)
        if grid is None:
            grid = grid_for_graph(graph, lam)
        with obs_trace.span("engine.run", engine=self.name, rounds=rounds,
                            lam=lam, n=csr.num_nodes):
            if isinstance(warm_start, FrontierWarmStart):
                # Delta-derived graph: try the frontier-restricted re-solve
                # against the parent trajectory.  It shares the per-round
                # kernel with every trajectory engine, so one branch here
                # covers the vectorized engine and all sharded modes; a None
                # return (parent too short, frontier too wide) falls through
                # to the ordinary cold path below.
                trajectory = frontier_trajectory(csr, rounds, lam=lam,
                                                 warm=warm_start)
                if trajectory is not None:
                    return self.assemble(csr, trajectory, rounds, grid,
                                         tie_break=tie_break,
                                         track_kept=track_kept)
                warm_start = None
            if warm_start is not None and self._trajectory_accepts_prefix():
                trajectory = self.trajectory(csr, rounds, lam=lam,
                                             prefix=warm_start)
            else:
                # Subclasses written against the original hint-free
                # trajectory() signature keep working: they just recompute
                # every round.
                trajectory = self.trajectory(csr, rounds, lam=lam)
            return self.assemble(csr, trajectory, rounds, grid,
                                 tie_break=tie_break, track_kept=track_kept)

    def _trajectory_accepts_prefix(self) -> bool:
        cached = getattr(self, "_prefix_support", None)
        if cached is None:
            params = inspect.signature(self.trajectory).parameters
            cached = "prefix" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values())
            self._prefix_support = cached
        return cached

    @staticmethod
    def assemble(csr, trajectory, rounds, grid, *, tie_break="history",
                 track_kept=True):
        """Build the :class:`SurvivingNumbers` for a computed trajectory.

        The single assembly path for trajectory-backed results: the engines
        call it after computing rounds, and :class:`repro.session.Session`
        calls it when a request is served entirely from a cached trajectory —
        keeping both field-for-field identical by construction.
        """
        from repro.core.surviving import SurvivingNumbers

        labels = csr.labels()
        values = {labels[i]: float(trajectory[rounds, i]) for i in range(csr.num_nodes)}
        kept = {v: () for v in labels}
        if track_kept:
            from repro.core.orientation import kept_sets_from_trajectory

            kept = kept_sets_from_trajectory(csr, trajectory, tie_break=tie_break)
        return SurvivingNumbers(values=values, kept=kept, rounds=rounds, grid=grid,
                                num_nodes=csr.num_nodes, trajectory=trajectory,
                                node_order=labels)

    def trajectory(self, csr, rounds, *, lam=0.0, prefix=None) -> np.ndarray:
        """The ``(rounds + 1, n)`` per-round surviving-number trajectory.

        ``prefix`` is an optional earlier trajectory of the same CSR view and λ;
        subclasses resume after its last row (see
        :func:`repro.engine.kernels.compact_trajectory`).
        """
        raise NotImplementedError


class VectorizedEngine(TrajectoryEngine):
    """Fast path: every round is a single whole-graph kernel invocation."""

    name = "vectorized"

    def trajectory(self, csr, rounds, *, lam=0.0, prefix=None) -> np.ndarray:
        return compact_trajectory(csr, rounds, lam=lam, prefix=prefix)

    def describe(self) -> str:
        return "vectorized (whole-graph NumPy kernels)"
