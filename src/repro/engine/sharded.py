"""The ``sharded`` engine — per-round kernels over contiguous CSR node ranges.

The CSR arrays are partitioned into ``num_shards`` contiguous node-range shards;
each synchronous round executes the compact-elimination kernel shard-by-shard,
every shard reading the previous round's full surviving-number vector and
writing only its own range.  Synchronous-round semantics are therefore exact,
while peak memory for the frontier arrays (gathered neighbour values, sort
permutation, prefix sums — the ``O(m)`` part) is bounded by the largest shard
instead of the whole graph.

With ``max_workers`` set, the shards of one round are dispatched onto a
``concurrent.futures.ThreadPoolExecutor`` (NumPy releases the GIL in the sort
and reduction kernels, so threads give real parallelism without pickling the
CSR arrays); the one-shard-at-a-time memory bound then becomes
``max_workers``-shards-at-a-time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.kernels import compact_trajectory, shard_plan
from repro.engine.vectorized import TrajectoryEngine
from repro.errors import AlgorithmError

#: Target number of nodes per shard when ``num_shards`` is not given.
DEFAULT_SHARD_NODES = 16384


class ShardedEngine(TrajectoryEngine):
    """Bounded-memory engine: rounds execute shard-by-shard over node ranges.

    Parameters
    ----------
    num_shards:
        Number of contiguous node-range shards (clamped to ``n``).  ``None``
        sizes shards automatically to about :data:`DEFAULT_SHARD_NODES` nodes.
    max_workers:
        When given (>= 1), shards of a round run on a thread pool of this size;
        ``None`` (default) runs them sequentially, which caps peak frontier
        memory at a single shard.
    """

    name = "sharded"

    def __init__(self, num_shards: Optional[int] = None,
                 max_workers: Optional[int] = None) -> None:
        if num_shards is not None and num_shards < 1:
            raise AlgorithmError(f"num_shards must be >= 1, got {num_shards}")
        if max_workers is not None and max_workers < 1:
            raise AlgorithmError(f"max_workers must be >= 1, got {max_workers}")
        self.num_shards = num_shards
        self.max_workers = max_workers

    def plan_for(self, num_nodes: int):
        """The shard plan (contiguous ``[lo, hi)`` ranges) used for ``num_nodes``."""
        if self.num_shards is not None:
            shards = self.num_shards
        else:
            shards = max(1, -(-num_nodes // DEFAULT_SHARD_NODES))
        return shard_plan(num_nodes, shards)

    def trajectory(self, csr, rounds, *, lam=0.0, prefix=None) -> np.ndarray:
        plan = self.plan_for(csr.num_nodes)
        if self.max_workers is not None and len(plan) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return compact_trajectory(csr, rounds, lam=lam, plan=plan,
                                          shard_map=pool.map, prefix=prefix)
        return compact_trajectory(csr, rounds, lam=lam, plan=plan, prefix=prefix)

    def describe(self) -> str:
        shards = self.num_shards if self.num_shards is not None \
            else f"auto(~{DEFAULT_SHARD_NODES} nodes)"
        workers = self.max_workers if self.max_workers is not None else "sequential"
        return f"sharded (shards={shards}, workers={workers})"
