"""The ``sharded`` engine — per-round kernels over contiguous CSR node ranges.

The CSR arrays are partitioned into ``num_shards`` contiguous node-range shards;
each synchronous round executes the compact-elimination kernel shard-by-shard,
every shard reading the previous round's full surviving-number vector and
writing only its own range.  Synchronous-round semantics are therefore exact,
while peak memory for the frontier arrays (gathered neighbour values, sort
permutation, prefix sums — the ``O(m)`` part) is bounded by the largest shard
instead of the whole graph.

Three execution modes, selected by ``parallel``:

* ``None`` (default) — shards of a round run sequentially, which caps peak
  frontier memory at a single shard;
* ``"thread"`` — shards are dispatched onto a
  ``concurrent.futures.ThreadPoolExecutor`` (NumPy releases the GIL in the
  sort and reduction kernels, so threads give partial parallelism without
  pickling the CSR arrays) — the GIL still serialises the Python-level parts;
* ``"process"`` — the CSR arrays and the per-round value vector live in
  ``multiprocessing.shared_memory`` blocks and shard ranges are dispatched
  onto a reusable ``ProcessPoolExecutor`` (workers re-attach by name, zero
  pickling of graph data; see :mod:`repro.engine.shm`), which breaks the GIL
  ceiling entirely.

Orthogonally, ``storage`` selects where the CSR arrays *live* during the run:

* ``None`` (auto) — in memory, unless a storage directory has been bound (a
  :class:`~repro.session.Session` with a persistent store binds its root) and
  the edge arrays exceed ``spill_bytes``, in which case the run spills;
* ``"memory"`` — always in memory, never spills;
* ``"mmap"`` — the out-of-core mode: the arrays are materialised once under
  ``<storage_dir>/<fingerprint>/csr/`` (:mod:`repro.graph.mmap_csr` — the
  artifact store's per-fingerprint layout, written atomically and revalidated
  by content fingerprint) and the round kernels execute over read-only
  ``np.memmap`` views, so resident memory stays O(n + shard frontier) while
  the O(m) arrays page in from disk on demand.  In ``parallel="process"``
  mode the workers map the *same files by path* instead of attaching CSR
  shared-memory blocks — only the two double-buffered value vectors stay in
  shared memory.

A third axis, ``trajectory_storage``, selects where the *output* — the
``(T+1) × n`` elimination trajectory, the single largest allocation at scale —
lives during the run:

* ``None`` (auto) — in memory, unless a storage directory is bound and the
  full trajectory would exceed ``spill_bytes``;
* ``"memory"`` — always a RAM array;
* ``"mmap"`` — completed rounds are *appended* to
  ``<storage_dir>/<fingerprint>/trajectory-lam<λ>.traj/`` (the append-only
  artifact of :mod:`repro.store.traj`, published with atomic header updates),
  only a sliding window of two rows stays resident, and the returned
  trajectory is a read-only ``np.memmap`` over the published prefix.  The
  rows already on disk are their own warm start: a fresh engine pointed at
  the same directory resumes after the last published round, which is also
  what makes a crash-interrupted run recoverable (at most the un-published
  round is lost, never a readable prefix).  In ``parallel="process"`` mode
  the workers map the same ``rows.bin`` by path and write their shard's
  row-slice directly — the full-trajectory never round-trips through the
  parent.

All modes produce bit-identical trajectories: the kernels run the same float64
operations in the same order whether their operands are in RAM, shared memory
or a mapped file (the cross-engine equivalence suite pins this down to the
float64 representation).
"""

from __future__ import annotations

import os
import tempfile
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Optional

import numpy as np

from repro.engine.kernels import compact_trajectory, shard_plan
from repro.engine.vectorized import TrajectoryEngine
from repro.errors import AlgorithmError
from repro.obs import trace as obs_trace

#: Target number of nodes per shard when ``num_shards`` is not given.
DEFAULT_SHARD_NODES = 16384

#: Accepted values of the ``parallel`` option (``None`` = sequential shards).
PARALLEL_MODES = (None, "thread", "process")

#: Accepted values of the ``storage`` option (``None`` = auto: spill to a
#: bound directory only when the edge arrays exceed the threshold).
STORAGE_MODES = (None, "memory", "mmap")

#: Accepted values of the ``trajectory_storage`` option (``None`` = auto:
#: spill to a bound directory only when the full trajectory exceeds the
#: threshold).
TRAJECTORY_STORAGE_MODES = (None, "memory", "mmap")

#: Auto-spill threshold: edge arrays (indices + weights) beyond this many
#: bytes run memory-mapped when a storage directory is bound (256 MiB).
DEFAULT_SPILL_BYTES = 256 * 1024 * 1024

#: Most-recently-used mapped graphs an engine keeps open at once.  Each
#: cached view pins four ``np.memmap`` file descriptors, so an engine shared
#: across many graphs (a long-lived BatchRunner) must not grow unboundedly;
#: an evicted view simply re-opens (cheap revalidation) on its next request.
MAX_MAPPED_GRAPHS = 8


class ShardedEngine(TrajectoryEngine):
    """Bounded-memory engine: rounds execute shard-by-shard over node ranges.

    Parameters
    ----------
    num_shards:
        Number of contiguous node-range shards (clamped to ``n``).  ``None``
        sizes shards automatically to about :data:`DEFAULT_SHARD_NODES` nodes —
        except in a parallel mode, where at least ``max_workers`` shards are
        planned so every worker has a range to own.
    max_workers:
        Pool size for the parallel modes.  ``None`` defaults to the machine's
        CPU count when ``parallel`` is set; setting it without ``parallel``
        keeps the historical behaviour of a thread pool of that size.
    parallel:
        ``None`` (sequential, the memory-bounded default), ``"thread"`` or
        ``"process"`` — see the module docstring.
    storage:
        ``None`` (auto-spill when a directory is bound and the graph is big),
        ``"memory"`` (never spill) or ``"mmap"`` (always run over mapped
        arrays) — see the module docstring.
    storage_dir:
        Root directory for the mapped arrays (the artifact-store root when a
        session binds one).  ``storage="mmap"`` without a directory maps into
        a private temporary directory owned by the engine instance.
    spill_bytes:
        Auto-spill threshold in bytes (default :data:`DEFAULT_SPILL_BYTES`);
        consulted by the auto modes of both ``storage`` (against the edge
        arrays) and ``trajectory_storage`` (against the full trajectory).
    trajectory_storage:
        ``None`` (auto-spill when a directory is bound and the trajectory is
        big), ``"memory"`` (always a RAM array) or ``"mmap"`` (append rounds
        to the on-disk ``.traj`` buffer) — see the module docstring.
    """

    name = "sharded"

    #: Session wiring hook: engines exposing this accept a bound storage root.
    supports_mmap = True

    def __init__(self, num_shards: Optional[int] = None,
                 max_workers: Optional[int] = None,
                 parallel: Optional[str] = None,
                 storage: Optional[str] = None,
                 storage_dir=None,
                 spill_bytes: Optional[int] = None,
                 trajectory_storage: Optional[str] = None) -> None:
        if num_shards is not None and num_shards < 1:
            raise AlgorithmError(f"num_shards must be >= 1, got {num_shards}")
        if max_workers is not None and max_workers < 1:
            raise AlgorithmError(f"max_workers must be >= 1, got {max_workers}")
        if isinstance(parallel, str):
            parallel = parallel.strip().lower() or None
            if parallel == "none":
                parallel = None
        if parallel not in PARALLEL_MODES:
            raise AlgorithmError(
                f"unknown parallel mode {parallel!r}; expected one of "
                f"{', '.join(repr(m) for m in PARALLEL_MODES)}")
        if isinstance(storage, str):
            storage = storage.strip().lower() or None
            if storage in ("none", "auto"):
                storage = None
        if storage not in STORAGE_MODES:
            raise AlgorithmError(
                f"unknown storage mode {storage!r}; expected one of "
                f"'memory', 'mmap' or 'auto'")
        if isinstance(trajectory_storage, str):
            trajectory_storage = trajectory_storage.strip().lower() or None
            if trajectory_storage in ("none", "auto"):
                trajectory_storage = None
        if trajectory_storage not in TRAJECTORY_STORAGE_MODES:
            raise AlgorithmError(
                f"unknown trajectory_storage mode {trajectory_storage!r}; "
                f"expected one of 'memory', 'mmap' or 'auto'")
        if spill_bytes is not None and spill_bytes < 0:
            raise AlgorithmError(f"spill_bytes must be >= 0, got {spill_bytes}")
        if parallel is None and max_workers is not None:
            parallel = "thread"  # historical spelling: workers implied threads
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.parallel = parallel
        self.storage = storage
        self.trajectory_storage = trajectory_storage
        self.storage_dir = Path(storage_dir) if storage_dir is not None else None
        self.spill_bytes = DEFAULT_SPILL_BYTES if spill_bytes is None \
            else int(spill_bytes)
        self._private_dir: Optional[tempfile.TemporaryDirectory] = None
        #: whether storage_dir came from bind_storage (a session's store)
        #: rather than the constructor — rebinding to a *different* store is
        #: then a configuration error, not something to silently ignore.
        self._bound_dir = False
        #: fingerprint -> MappedCSR views this engine already opened (LRU,
        #: at most MAX_MAPPED_GRAPHS); the revalidation in materialize_csr is
        #: cheap but re-opening maps per round-loop call is not free, and
        #: repeated requests on one graph are the session layer's whole shape.
        self._mapped_cache: "OrderedDict[str, object]" = OrderedDict()
        #: id(csr) -> (weakref to the csr, fingerprint): hashing the O(m)
        #: arrays once per *graph* instead of once per call.  The weakref
        #: guards against id() reuse after a graph is collected.
        self._fingerprints: dict = {}
        #: lazily created thread pool, reused across trajectory() calls (a
        #: fresh pool per call pays thread spawn/teardown on every warm
        #: request); close() or garbage collection shuts it down.
        self._thread_pool = None
        self._pool_finalizer = None

    # ------------------------------------------------------------------ storage
    def bind_storage(self, root, *, spill_bytes: Optional[int] = None) -> None:
        """Give the engine a directory for memory-mapped CSR arrays.

        Called by :class:`~repro.session.Session` when a persistent store is
        configured, so out-of-core runs spill into the store's own
        per-fingerprint layout.  An explicitly constructed ``storage_dir``
        wins — binding never overrides it — but binding one engine instance
        to *two different* stores is a configuration error (the second
        store's sessions would silently spill into the first store's root,
        which its ``purge``/``evict`` then own) and raises.
        """
        root = Path(root)
        if self.storage_dir is None:
            self.storage_dir = root
            self._bound_dir = True
        elif self._bound_dir and self.storage_dir != root:
            raise AlgorithmError(
                f"engine already spills into {self.storage_dir}; one engine "
                f"instance cannot serve a second store at {root} — construct "
                f"a separate engine (or pass storage_dir=) per store")
        if spill_bytes is not None:
            self.spill_bytes = int(spill_bytes)

    def _storage_root(self) -> Path:
        """The directory mapped arrays live under (private tmp as last resort)."""
        if self.storage_dir is not None:
            return self.storage_dir
        if self._private_dir is None:
            self._private_dir = tempfile.TemporaryDirectory(prefix="repro-mmap-")
        return Path(self._private_dir.name)

    def _uses_mmap(self, csr) -> bool:
        """Whether this run executes over mapped arrays (see module docstring)."""
        if self.storage == "mmap":
            return True
        if self.storage == "memory":
            return False
        if self.storage_dir is None:
            return False
        from repro.graph.mmap_csr import csr_edge_bytes

        return csr_edge_bytes(csr) >= self.spill_bytes

    def _uses_traj_mmap(self, csr, rounds: int) -> bool:
        """Whether this run appends its trajectory to a mapped ``.traj`` file."""
        if self.trajectory_storage == "mmap":
            return True
        if self.trajectory_storage == "memory":
            return False
        if self.storage_dir is None:
            return False
        return (int(rounds) + 1) * csr.num_nodes * 8 >= self.spill_bytes

    def _trajectory_sink(self, csr, rounds: int, lam: float):
        """The :class:`~repro.store.traj.AppendTrajectory` sink, or None.

        Keyed by the CSR content fingerprint and canonical λ under the same
        per-fingerprint root the mapped CSR arrays use, so a session's store
        and the engine read/write the very same file.
        """
        if csr.num_nodes < 1 or not self._uses_traj_mmap(csr, rounds):
            return None
        from repro.store.traj import AppendTrajectory

        fingerprint = getattr(csr, "fingerprint", None) or self._fingerprint_of(csr)
        return AppendTrajectory.open(self._storage_root(), fingerprint, lam,
                                     num_nodes=csr.num_nodes)

    def _fingerprint_of(self, csr) -> str:
        """The (memoised) content fingerprint of ``csr``.

        Hashing the O(m) arrays every call would dominate warm requests on
        exactly the graphs this mode targets, so the digest is computed once
        per live CSR object; a weakref detects id() reuse after collection.
        """
        from repro.graph.csr import csr_fingerprint

        key = id(csr)
        hit = self._fingerprints.get(key)
        if hit is not None and hit[0]() is csr:
            return hit[1]
        fingerprint = csr_fingerprint(csr)
        # Opportunistically drop entries whose csr was collected (their ids
        # may be reused by unrelated objects, and the dict must not grow
        # with every graph the engine ever saw).
        dead = [k for k, (ref, _) in self._fingerprints.items() if ref() is None]
        for k in dead:
            del self._fingerprints[k]
        self._fingerprints[key] = (weakref.ref(csr), fingerprint)
        return fingerprint

    def _mapped_view(self, csr):
        """The (LRU-cached) :class:`~repro.graph.mmap_csr.MappedCSR` of ``csr``."""
        from repro.graph.mmap_csr import mmap_csr

        fingerprint = self._fingerprint_of(csr)
        hit = self._mapped_cache.get(fingerprint)
        if hit is None:
            hit = mmap_csr(csr, self._storage_root(), fingerprint=fingerprint)
            self._mapped_cache[fingerprint] = hit
            while len(self._mapped_cache) > MAX_MAPPED_GRAPHS:
                self._mapped_cache.popitem(last=False)  # drops 4 memmap fds
        else:
            self._mapped_cache.move_to_end(fingerprint)
        return hit

    # ---------------------------------------------------------------- execution
    def effective_workers(self) -> int:
        """The pool size a parallel mode will actually use."""
        if self.parallel is None:
            return 1
        if self.max_workers is not None:
            return self.max_workers
        return max(1, os.cpu_count() or 1)

    def plan_for(self, num_nodes: int):
        """The shard plan (contiguous ``[lo, hi)`` ranges) used for ``num_nodes``."""
        if self.num_shards is not None:
            shards = self.num_shards
        else:
            shards = max(1, -(-num_nodes // DEFAULT_SHARD_NODES))
            if self.parallel is not None:
                # Auto-sizing must not starve the pool: plan at least one
                # range per worker (still clamped to n inside shard_plan).
                shards = max(shards, self.effective_workers())
        return shard_plan(num_nodes, shards)

    def _ensure_thread_pool(self):
        """The engine's reusable thread pool (created on first parallel run).

        One pool per engine instance, shut down by :meth:`close` — and, as a
        backstop, by a ``weakref.finalize`` when the engine is collected — so
        warm requests stop paying thread spawn/teardown per ``trajectory()``
        call.
        """
        pool = self._thread_pool
        if pool is None:
            from concurrent.futures import ThreadPoolExecutor

            pool = ThreadPoolExecutor(max_workers=self.effective_workers(),
                                      thread_name_prefix="repro-sharded")
            self._thread_pool = pool
            self._pool_finalizer = weakref.finalize(
                self, pool.shutdown, wait=False)
        return pool

    def close(self) -> None:
        """Release pooled resources (idempotent; the engine stays usable)."""
        pool, self._thread_pool = self._thread_pool, None
        if pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            pool.shutdown(wait=True)

    def trajectory(self, csr, rounds, *, lam=0.0, prefix=None) -> np.ndarray:
        plan = self.plan_for(csr.num_nodes)
        view, csr_files = csr, None
        if self._uses_mmap(csr):
            view = self._mapped_view(csr)
            csr_files = view.file_specs()
        sink = self._trajectory_sink(view, rounds, lam)
        try:
            with obs_trace.span(
                    "engine.trajectory", shards=len(plan),
                    parallel=self.parallel or "sequential",
                    storage="mmap" if csr_files is not None else "memory",
                    trajectory="mmap" if sink is not None else "memory"):
                if self.parallel is not None and len(plan) > 1:
                    if self.parallel == "process":
                        from repro.engine.shm import process_trajectory

                        return process_trajectory(
                            view, rounds, lam=lam, plan=plan,
                            max_workers=self.effective_workers(),
                            prefix=prefix, csr_files=csr_files, traj_out=sink)
                    pool = self._ensure_thread_pool()
                    return compact_trajectory(view, rounds, lam=lam, plan=plan,
                                              shard_map=pool.map, prefix=prefix,
                                              out=sink)
                return compact_trajectory(view, rounds, lam=lam, plan=plan,
                                          prefix=prefix, out=sink)
        finally:
            if sink is not None:
                sink.close()

    def describe(self) -> str:
        shards = self.num_shards if self.num_shards is not None \
            else f"auto(~{DEFAULT_SHARD_NODES} nodes)"
        if self.parallel is None:
            workers = "sequential"
        else:
            workers = f"{self.parallel}x{self.effective_workers()}"
        storage = self.storage or (
            "auto" if self.storage_dir is not None else "memory")
        trajectory = self.trajectory_storage or (
            "auto" if self.storage_dir is not None else "memory")
        return (f"sharded (shards={shards}, workers={workers}, "
                f"storage={storage}, trajectory={trajectory})")
