"""The ``sharded`` engine — per-round kernels over contiguous CSR node ranges.

The CSR arrays are partitioned into ``num_shards`` contiguous node-range shards;
each synchronous round executes the compact-elimination kernel shard-by-shard,
every shard reading the previous round's full surviving-number vector and
writing only its own range.  Synchronous-round semantics are therefore exact,
while peak memory for the frontier arrays (gathered neighbour values, sort
permutation, prefix sums — the ``O(m)`` part) is bounded by the largest shard
instead of the whole graph.

Three execution modes, selected by ``parallel``:

* ``None`` (default) — shards of a round run sequentially, which caps peak
  frontier memory at a single shard;
* ``"thread"`` — shards are dispatched onto a
  ``concurrent.futures.ThreadPoolExecutor`` (NumPy releases the GIL in the
  sort and reduction kernels, so threads give partial parallelism without
  pickling the CSR arrays) — the GIL still serialises the Python-level parts;
* ``"process"`` — the CSR arrays and the per-round value vector live in
  ``multiprocessing.shared_memory`` blocks and shard ranges are dispatched
  onto a reusable ``ProcessPoolExecutor`` (workers re-attach by name, zero
  pickling of graph data; see :mod:`repro.engine.shm`), which breaks the GIL
  ceiling entirely.

All three modes produce bit-identical trajectories (the cross-engine
equivalence suite pins this down to the float64 representation).
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.engine.kernels import compact_trajectory, shard_plan
from repro.engine.vectorized import TrajectoryEngine
from repro.errors import AlgorithmError

#: Target number of nodes per shard when ``num_shards`` is not given.
DEFAULT_SHARD_NODES = 16384

#: Accepted values of the ``parallel`` option (``None`` = sequential shards).
PARALLEL_MODES = (None, "thread", "process")


class ShardedEngine(TrajectoryEngine):
    """Bounded-memory engine: rounds execute shard-by-shard over node ranges.

    Parameters
    ----------
    num_shards:
        Number of contiguous node-range shards (clamped to ``n``).  ``None``
        sizes shards automatically to about :data:`DEFAULT_SHARD_NODES` nodes —
        except in a parallel mode, where at least ``max_workers`` shards are
        planned so every worker has a range to own.
    max_workers:
        Pool size for the parallel modes.  ``None`` defaults to the machine's
        CPU count when ``parallel`` is set; setting it without ``parallel``
        keeps the historical behaviour of a thread pool of that size.
    parallel:
        ``None`` (sequential, the memory-bounded default), ``"thread"`` or
        ``"process"`` — see the module docstring.
    """

    name = "sharded"

    def __init__(self, num_shards: Optional[int] = None,
                 max_workers: Optional[int] = None,
                 parallel: Optional[str] = None) -> None:
        if num_shards is not None and num_shards < 1:
            raise AlgorithmError(f"num_shards must be >= 1, got {num_shards}")
        if max_workers is not None and max_workers < 1:
            raise AlgorithmError(f"max_workers must be >= 1, got {max_workers}")
        if isinstance(parallel, str):
            parallel = parallel.strip().lower() or None
            if parallel == "none":
                parallel = None
        if parallel not in PARALLEL_MODES:
            raise AlgorithmError(
                f"unknown parallel mode {parallel!r}; expected one of "
                f"{', '.join(repr(m) for m in PARALLEL_MODES)}")
        if parallel is None and max_workers is not None:
            parallel = "thread"  # historical spelling: workers implied threads
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.parallel = parallel

    def effective_workers(self) -> int:
        """The pool size a parallel mode will actually use."""
        if self.parallel is None:
            return 1
        if self.max_workers is not None:
            return self.max_workers
        return max(1, os.cpu_count() or 1)

    def plan_for(self, num_nodes: int):
        """The shard plan (contiguous ``[lo, hi)`` ranges) used for ``num_nodes``."""
        if self.num_shards is not None:
            shards = self.num_shards
        else:
            shards = max(1, -(-num_nodes // DEFAULT_SHARD_NODES))
            if self.parallel is not None:
                # Auto-sizing must not starve the pool: plan at least one
                # range per worker (still clamped to n inside shard_plan).
                shards = max(shards, self.effective_workers())
        return shard_plan(num_nodes, shards)

    def trajectory(self, csr, rounds, *, lam=0.0, prefix=None) -> np.ndarray:
        plan = self.plan_for(csr.num_nodes)
        if self.parallel is not None and len(plan) > 1:
            if self.parallel == "process":
                from repro.engine.shm import process_trajectory

                return process_trajectory(csr, rounds, lam=lam, plan=plan,
                                          max_workers=self.effective_workers(),
                                          prefix=prefix)
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=self.effective_workers()) as pool:
                return compact_trajectory(csr, rounds, lam=lam, plan=plan,
                                          shard_map=pool.map, prefix=prefix)
        return compact_trajectory(csr, rounds, lam=lam, plan=plan, prefix=prefix)

    def describe(self) -> str:
        shards = self.num_shards if self.num_shards is not None \
            else f"auto(~{DEFAULT_SHARD_NODES} nodes)"
        if self.parallel is None:
            workers = "sequential"
        else:
            workers = f"{self.parallel}x{self.effective_workers()}"
        return f"sharded (shards={shards}, workers={workers})"
