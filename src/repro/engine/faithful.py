"""The ``faithful`` engine — the per-node protocol on the distsim simulator.

This is the reference implementation of Algorithm 2: every node is an actual
:class:`~repro.core.surviving.CompactEliminationProtocol` instance exchanging
messages on the synchronous simulator, so message counts/sizes are accounted and
fault models apply.  It is orders of magnitude slower than the array engines and
is used for semantics (the equivalence suite pins the array engines to it) and
for the message-size experiments.
"""

from __future__ import annotations

from repro.engine.base import Engine
from repro.obs import trace as obs_trace


class FaithfulEngine(Engine):
    """Reference engine: the faithful per-node message-passing protocol."""

    name = "faithful"
    consumes_artifacts = False   # the simulator replays per node; csr/grid unused

    def run(self, graph, rounds, *, lam=0.0, tie_break="history", track_kept=True,
            csr=None, grid=None, warm_start=None):
        from repro.core.surviving import run_compact_elimination

        # csr/grid/warm_start hints are ignored: the simulator replays every
        # round per node anyway (the message accounting depends on it).
        with obs_trace.span("engine.run", engine=self.name, rounds=rounds,
                            lam=lam):
            result, _ = run_compact_elimination(graph, rounds, lam=lam,
                                                tie_break=tie_break,
                                                track_kept=track_kept)
        return result

    def describe(self) -> str:
        return "faithful (per-node simulator, message statistics)"
