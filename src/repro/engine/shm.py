"""Process-parallel round execution over shared-memory CSR blocks.

The thread-pool mode of the sharded engine is capped by the GIL for the
non-NumPy parts of a round (Python-level dispatch, small-shard overheads).
This module breaks that ceiling: the CSR arrays (``indptr`` / ``indices`` /
``weights`` / ``loops``) and two per-round surviving-number buffers are placed
in :mod:`multiprocessing.shared_memory` blocks, and the shard ranges of every
round are dispatched onto a reusable :class:`~concurrent.futures.ProcessPoolExecutor`.

Zero graph data is ever pickled:

* workers receive the block *names* once (through the pool initializer) and
  re-attach by name on their first task, caching the mapped arrays for the
  life of the process;
* in the out-of-core mode (``csr_files``, see
  :mod:`repro.graph.mmap_csr`) the CSR arrays are not copied into shared
  memory at all: workers receive *file paths* instead of block names and
  ``np.memmap`` the same on-disk arrays the parent mapped, so the graph
  occupies one page-cache copy regardless of the worker count — only the two
  double-buffered value vectors stay in shared memory;
* a task is the tuple ``(lo, hi, src)`` — a shard range plus which of the two
  value buffers holds the previous round's vector;
* the worker writes its shard's new values straight into the *other* value
  buffer, so results do not travel back through the result pickle either
  (double buffering also means no copy between rounds: the parent just flips
  ``src``).

Synchronous-round semantics are exact — every worker reads the previous
round's full vector and writes only its own ``[lo, hi)`` range — and the
computed rows are bit-identical to :func:`repro.engine.kernels.compact_trajectory`
because each shard runs the *same* :func:`~repro.engine.kernels.compact_round_range`
kernel on the same float64 data.

Lifecycle: :func:`process_trajectory` owns the pool and the blocks for one
trajectory computation and tears both down in a ``finally`` — the pool is shut
down and every ``/dev/shm`` segment unlinked even when a worker raises (the
teardown tests pin this).
"""

from __future__ import annotations

import os
import time
import uuid
from typing import Dict, Optional, Tuple

import numpy as np

from repro.engine.kernels import (KERNEL_ROUND_SECONDS, ShardPlan,
                                  compact_round_range, init_trajectory)
from repro.errors import AlgorithmError
from repro.obs import trace as obs_trace

#: Prefix of every shared-memory segment this module creates (the teardown
#: tests glob ``/dev/shm`` for it to prove nothing leaks).
SHM_PREFIX = "repro-shm"

#: Environment variable that makes every worker task raise (teardown tests).
FAIL_SHARD_ENV = "REPRO_SHM_FAIL_SHARD"

#: Block key -> (dtype, CSR attribute) for the four graph arrays.
_CSR_BLOCKS = (
    ("indptr", np.int64),
    ("indices", np.int64),
    ("weights", np.float64),
    ("loops", np.float64),
)


class _SharedCSR:
    """Duck-typed CSR view over worker-attached shared-memory arrays.

    The per-round kernels only touch ``indptr`` / ``indices`` / ``weights`` /
    ``loops``, so this stand-in never needs node labels.
    """

    __slots__ = ("indptr", "indices", "weights", "loops")

    def __init__(self, indptr, indices, weights, loops):
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.loops = loops


def _unregister_from_tracker(name: str) -> None:
    """Stop the attaching process's *own* resource tracker from double-unlinking.

    Attaching (``create=False``) still registers the segment with the resource
    tracker on CPython < 3.13.  Under ``spawn`` every worker runs its own
    tracker, which would try to unlink blocks the parent owns when the worker
    exits and spam "leaked shared_memory" warnings — so spawn workers
    unregister right after attaching.  Under ``fork`` the tracker process is
    *shared* with the parent, where unregistering would instead erase the
    parent's legitimate registration; fork workers therefore skip this (their
    duplicate ``register`` of the same name is an idempotent set-add).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(name, "shared_memory")
    except Exception:  # pragma: no cover - best effort, tracker internals vary
        pass


# --------------------------------------------------------------------- worker
# Module-level state of one pool worker process: the spec arrives through the
# pool initializer; the arrays are attached lazily on the first task and then
# cached for the life of the process (re-attach by name happens exactly once).

_WORKER_SPEC: Optional[dict] = None
_WORKER_CACHE: Optional[tuple] = None


def _worker_init(spec: dict) -> None:
    global _WORKER_SPEC, _WORKER_CACHE
    _WORKER_SPEC = spec
    _WORKER_CACHE = None


def _worker_attach() -> tuple:
    """Attach (once per process) and return ``(csr, grid, value_buffers)``."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        from multiprocessing import shared_memory

        from repro.core.rounding import LambdaGrid

        spec = _WORKER_SPEC
        if spec is None:  # pragma: no cover - initializer always runs first
            raise AlgorithmError("shared-memory worker used without initialization")
        segments = []
        arrays: Dict[str, np.ndarray] = {}
        for key, (name, dtype, shape) in spec["blocks"].items():
            shm = shared_memory.SharedMemory(name=name)
            if spec.get("private_tracker"):
                _unregister_from_tracker(shm._name)
            segments.append(shm)  # keep the mapping alive with the cache
            arrays[key] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        for key, (path, dtype, shape) in spec.get("files", {}).items():
            # Out-of-core mode: map the parent's on-disk CSR arrays by path
            # (read-only; one page-cache copy shared by every worker).
            from repro.graph.mmap_csr import open_array_file

            arrays[key] = open_array_file(path, dtype, tuple(shape))
        csr = _SharedCSR(arrays["indptr"], arrays["indices"],
                         arrays["weights"], arrays["loops"])
        grid = LambdaGrid(lam=spec["lam"])
        traj = None
        if spec.get("traj"):
            # Spilled-trajectory mode: every worker maps the pre-sized
            # rows.bin writable and writes its shard's row-slice in place —
            # completed rows never round-trip through the parent.  The parent
            # alone publishes rounds (atomic header updates), so these writes
            # stay invisible to readers until the round is complete.
            path, rows, width = spec["traj"]
            traj = np.memmap(path, dtype=np.float64, mode="r+",
                             shape=(int(rows), int(width)))
        _WORKER_CACHE = (csr, grid, (arrays["values0"], arrays["values1"]),
                         traj, segments)
    return _WORKER_CACHE


def _run_shard(lo: int, hi: int, src: int, t: Optional[int] = None) -> Tuple:
    """One shard of one round: read buffer ``src``, write buffer ``1 - src``.

    ``t`` is the round number being computed; in spilled-trajectory mode the
    worker also writes the shard's slice of row ``t`` into the mapped file.

    When the parent traced the run, the spec carries the parent span's wire
    context under ``"obs"``; the worker then times the shard and returns a
    third element — a ``kernel.shard`` span record tagged with the range —
    which the parent ingests (the worker has no tracer of its own).  Without
    tracing the return shape is the plain ``(lo, hi)`` it always was.
    """
    if os.environ.get(FAIL_SHARD_ENV):
        raise RuntimeError(f"injected shard failure for range [{lo}, {hi})")
    spec = _WORKER_SPEC
    obs_wire = spec.get("obs") if spec is not None else None
    if obs_wire is not None:
        shard_unix = time.time()
        shard_perf = time.perf_counter()
    csr, grid, values, traj, _ = _worker_attach()
    new = compact_round_range(csr, values[src], lo, hi, grid)
    values[1 - src][lo:hi] = new
    if traj is not None and t is not None:
        traj[t, lo:hi] = new
    if obs_wire is not None:
        record = obs_trace.remote_span_record(
            "kernel.shard", obs_wire, start_unix=shard_unix,
            duration=time.perf_counter() - shard_perf,
            attrs={"lo": lo, "hi": hi, "round": t})
        return lo, hi, record
    return lo, hi


# --------------------------------------------------------------------- parent

def _create_block(shared_memory, arrays: list, key: str, data: np.ndarray,
                  blocks: Dict[str, tuple], run_id: str):
    """Create one named segment, copy ``data`` in, record it in the spec."""
    shm = shared_memory.SharedMemory(
        name=f"{SHM_PREFIX}-{run_id}-{key}",
        create=True, size=max(1, data.nbytes))  # size 0 is rejected by the OS
    view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
    np.copyto(view, data)
    arrays.append(shm)
    blocks[key] = (shm.name, data.dtype.str, data.shape)
    return view


def _pool_context():
    """The multiprocessing context for the shard pool (fork where available).

    ``fork`` starts workers in milliseconds and inherits the environment; on
    platforms without it (Windows/macOS-spawn) the default context works too —
    workers only ever receive the tiny block-name spec, never graph data.
    """
    import multiprocessing as mp

    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context()


def process_trajectory(csr, rounds: int, *, lam: float = 0.0,
                       plan: ShardPlan, max_workers: int,
                       prefix: Optional[np.ndarray] = None,
                       csr_files: Optional[Dict[str, tuple]] = None,
                       traj_out=None) -> np.ndarray:
    """The full Algorithm 2 trajectory with rounds fanned out over processes.

    Drop-in replacement for :func:`repro.engine.kernels.compact_trajectory`
    with ``plan`` executed by ``max_workers`` worker processes per round;
    returns the bit-identical ``(rounds + 1, n)`` trajectory (same kernels,
    same float64 operation order per shard).

    ``csr_files`` switches the graph transport to the out-of-core mode: a
    ``{array: (path, dtype, shape)}`` spec (see
    :meth:`repro.graph.mmap_csr.MappedCSR.file_specs`) that workers
    ``np.memmap`` by path instead of attaching CSR shared-memory blocks —
    only the two value buffers are created in shared memory then.

    ``traj_out`` switches the *output* transport the same way: an
    :class:`~repro.store.traj.AppendTrajectory` whose pre-sized ``rows.bin``
    every worker maps writable and fills shard row-slices of directly (the
    parent only publishes each completed round with an atomic header update
    — a crash mid-round leaves the previous round's readable prefix).  No
    ``(rounds + 1, n)`` RAM array exists then; the return value is a
    read-only map of the published prefix.

    The pool and the shared-memory blocks live exactly as long as this call:
    they are torn down in a ``finally`` even when a worker raises, so no
    ``/dev/shm`` segment outlives a crashed round.
    """
    if max_workers < 1:
        raise AlgorithmError(f"max_workers must be >= 1, got {max_workers}")
    n = csr.num_nodes
    bounds = tuple(plan)
    trajectory, start = init_trajectory(n, rounds, prefix, out=traj_out)
    if start >= rounds:
        # Fully served by the prefix (or the already-published on-disk
        # rounds): no pool, no blocks.
        return traj_out.as_array(rounds) if traj_out is not None else trajectory
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import shared_memory

    # uuid alone keeps the name unique across processes; no pid, so the
    # longest name ("repro-shm-<8 hex>-values0", 26 chars) stays under
    # macOS's 31-char POSIX shm name limit.
    run_id = uuid.uuid4().hex[:8]
    segments: list = []
    blocks: Dict[str, tuple] = {}
    pool = None
    try:
        if csr_files is None:
            for key, dtype in _CSR_BLOCKS:
                _create_block(shared_memory, segments, key,
                              np.ascontiguousarray(getattr(csr, key), dtype=dtype),
                              blocks, run_id)
        zeros = np.zeros(n, dtype=np.float64)
        values = (
            _create_block(shared_memory, segments, "values0", zeros, blocks, run_id),
            _create_block(shared_memory, segments, "values1", zeros, blocks, run_id),
        )
        ctx = _pool_context()
        spec = {"blocks": blocks, "files": dict(csr_files or {}),
                "lam": float(lam),
                # spawn workers run their own resource tracker (see
                # _unregister_from_tracker); fork workers share the parent's.
                "private_tracker": ctx.get_start_method() != "fork"}
        tracer = obs_trace.active()
        parent_ctx = obs_trace.current_context() if tracer is not None else None
        if tracer is not None:
            # Span context rides the existing worker spec; workers answer
            # with per-shard span records (see _run_shard).
            spec["obs"] = (parent_ctx.to_wire() if parent_ctx is not None
                           else ("", ""))
        if traj_out is not None:
            # Pre-size rows.bin so workers can map the full (rounds + 1, n)
            # region; the tail stays unpublished until each round's publish.
            traj_out.presize(rounds)
            spec["traj"] = traj_out.rows_spec(rounds)
        pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx,
                                   initializer=_worker_init, initargs=(spec,))
        src = 0
        np.copyto(values[src],
                  traj_out.row(start) if traj_out is not None
                  else trajectory[start])
        for t in range(start + 1, rounds + 1):
            round_unix = time.time() if tracer is not None else 0.0
            round_perf = time.perf_counter()
            futures = [pool.submit(_run_shard, lo, hi, src, t)
                       for lo, hi in bounds]
            for future in futures:
                result = future.result()  # re-raises worker exceptions
                if tracer is not None and len(result) == 3:
                    tracer.ingest(result[2])
            round_seconds = time.perf_counter() - round_perf
            KERNEL_ROUND_SECONDS.observe(round_seconds)
            if tracer is not None:
                tracer.record_span(
                    "kernel.round_range", start_unix=round_unix,
                    duration=round_seconds, parent=parent_ctx,
                    attrs={"round": t, "shards": len(bounds), "n": n,
                           "parallel": "process"})
            new = values[1 - src]
            if traj_out is not None:
                traj_out.publish(t)
            else:
                trajectory[t] = new
            if np.array_equal(new, values[src]):
                if traj_out is not None:
                    traj_out.fill_to(rounds, new)
                else:
                    trajectory[t:] = new
                break
            src = 1 - src
        return traj_out.as_array(rounds) if traj_out is not None else trajectory
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
