"""Array kernels for phases 2-4 of the Theorem I.3 densest pipeline.

Phase 1 (Algorithm 2) has run at array speed since the engine registry existed;
this module collapses the remaining three per-node protocols into batched NumPy
over the shared CSR view, exactly the way :func:`repro.engine.kernels.compact_round_range`
collapsed Algorithm 2:

* :func:`bfs_forest` — Algorithm 4 (Phase 2): ``T`` rounds of leader
  propagation as masked segmented maxima over CSR neighbourhoods, followed by
  the Request/Include/Confirm-Parent bookkeeping collapsed to pure array
  predicates (a non-root is an orphan iff its chosen parent ended up under a
  different leader — the parent's acknowledgement in the faithful protocol is
  exactly that test);
* :func:`local_elimination_rounds` — Algorithm 5 (Phase 3): the per-tree
  single-threshold elimination as ``T`` calls of
  :func:`repro.engine.kernels.restricted_threshold_round_range` with the
  leader's ``b`` gathered per node, recording the ``num``/``deg`` round arrays
  Phase 4 needs;
* :func:`aggregate_and_decide` — Algorithm 6 (Phase 4): the up-sweep becomes
  per-round ``np.bincount`` sums keyed by each node's tree root, the root's
  densest-round argmax is vectorised over all roots at once, and the
  downstream ``t*`` flood becomes one gather through the root index.

Equivalence contract
--------------------
The faithful simulator (:mod:`repro.core.bfs` / ``local_elimination`` /
``aggregation``) stays the reference ground truth, mirroring
:func:`repro.core.orientation.kept_sets_from_trajectory_reference`; the
cross-engine corpus pins the two paths bit-identical on ``subsets``,
``reported_densities`` and ``node_assignment``.  Three details make that hold:

* **The total order ⪰.**  The faithful protocol compares node identities with
  :func:`repro.core.bfs.comparable_identity` (type name, then ``repr``), *not*
  natural order — so among integer labels ``9 ≻ 10``.  :func:`identity_ranks`
  bakes exactly that order into one int64 rank per node, and every leader /
  sender tie-break below maximises ``(b, rank)`` pairs, which is the faithful
  ``leader_key`` verbatim.
* **The sender tie-break.**  When several neighbours announce the same best
  leader, the faithful loop keeps the sender that is maximal under
  ``comparable_identity``; a lexicographic ``(leader value, leader rank,
  sender rank)`` segmented maximum reproduces that choice independent of
  message arrival order.
* **Trees cut by orphans.**  Nodes whose parent chain passes through an orphan
  participate in Phase 3 (they broadcast and are counted by same-leader
  neighbours) but their aggregates die at the halted orphan and never reach a
  root; :func:`tree_anchors` resolves each node's parent chain by pointer
  doubling and reports ``-1`` for exactly those nodes, so the Phase-4 sums
  cover the same member sets the simulator's up-sweep covers.

Float summation orders differ between the paths (the simulator adds in message
arrival order, ``np.add.at``/``np.bincount`` in index order), so — exactly as
for Phase 1 — bit-identity is guaranteed for integer and dyadic edge weights;
arbitrary float weights carry the usual last-ulp caveat of
:mod:`repro.engine.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.engine.kernels import ShardPlan, restricted_threshold_round_range
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency


def identity_ranks(csr: CSRAdjacency) -> np.ndarray:
    """Int64 rank of every node under the paper's identity order.

    ``ranks[v] < ranks[u]`` iff ``comparable_identity(label(v)) <
    comparable_identity(label(u))`` — the exact total order the faithful
    protocols use for every tie-break, realised once so the round kernels can
    compare identities as plain integers.
    """
    from repro.core.bfs import comparable_identity

    n = csr.num_nodes
    labels = csr.labels()
    order = sorted(range(n), key=lambda i: comparable_identity(labels[i]))
    ranks = np.empty(n, dtype=np.int64)
    ranks[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    return ranks


@dataclass(frozen=True)
class BFSForest:
    """Array form of the Phase-2 output (one entry per CSR node id).

    ``parent[v] == v`` marks roots and ``parent[v] == -1`` marks orphans
    (the faithful ``parent is None``); ``anchor[v]`` is the root of the tree
    whose up-sweep actually reaches ``v``'s aggregates, or ``-1`` when the
    parent chain is cut by an orphan (including the orphan itself).
    """

    leader: np.ndarray    #: int64 (n,) — adopted leader's node id
    parent: np.ndarray    #: int64 (n,) — parent id; self for roots, -1 for orphans
    anchor: np.ndarray    #: int64 (n,) — root id of the confirmed tree, -1 if cut off
    ranks: np.ndarray     #: int64 (n,) — identity ranks used for the tie-breaks

    @property
    def is_root(self) -> np.ndarray:
        """Mask of tree roots (nodes that are their own confirmed parent)."""
        return self.parent == np.arange(len(self.parent), dtype=np.int64)

    @property
    def participates(self) -> np.ndarray:
        """Mask of Phase-3 participants (everyone but orphans)."""
        return self.parent >= 0

    @property
    def in_tree(self) -> np.ndarray:
        """Mask of nodes whose aggregates reach a root in Phase 4."""
        return self.anchor >= 0


def bfs_forest(csr: CSRAdjacency, values: np.ndarray, propagation_rounds: int, *,
               ranks: Optional[np.ndarray] = None) -> BFSForest:
    """Algorithm 4 as ``T`` rounds of batched leader propagation.

    ``values`` is the Phase-1 surviving-number vector aligned with the CSR ids.
    Per round, every node takes the lexicographic maximum of
    ``(leader value, leader rank, sender rank)`` over its neighbourhood with
    three masked ``np.maximum.reduceat`` passes and adopts the candidate when
    it beats its current ``(value, rank)`` leader key — which is exactly the
    faithful receive loop, made order-independent.  Stops early once no node
    adopts (propagation has converged; later rounds cannot change anything).
    """
    n = csr.num_nodes
    T = int(propagation_rounds)
    if T < 1:
        raise AlgorithmError(f"propagation_rounds must be >= 1, got {T}")
    b = np.ascontiguousarray(values, dtype=np.float64)
    if b.shape != (n,):
        raise AlgorithmError(
            f"values of shape {b.shape} do not match a {n}-node CSR view")
    if ranks is None:
        ranks = identity_ranks(csr)
    ids = np.arange(n, dtype=np.int64)
    by_rank = np.empty(n, dtype=np.int64)  # inverse permutation: rank -> node id
    by_rank[ranks] = ids
    leader = ids.copy()
    parent = ids.copy()
    if n == 0:
        return BFSForest(leader=leader, parent=parent,
                         anchor=np.empty(0, dtype=np.int64), ranks=ranks)

    src = csr.indices
    counts = np.diff(csr.indptr)
    rows = np.repeat(ids, counts)
    row_starts = csr.indptr[:-1]
    nonempty = counts > 0

    def seg_max(edge_vals: np.ndarray, fill) -> np.ndarray:
        out = np.full(n, fill, dtype=edge_vals.dtype)
        if len(edge_vals):
            out[nonempty] = np.maximum.reduceat(edge_vals, row_starts[nonempty])
        return out

    lv = b[leader]       # adopted leader's surviving number
    lr = ranks[leader]   # adopted leader's identity rank
    for _ in range(T):
        e_lv = lv[src]
        m1 = seg_max(e_lv, -np.inf)
        ok1 = e_lv == m1[rows]
        e_lr = np.where(ok1, lr[src], np.int64(-1))
        m2 = seg_max(e_lr, np.int64(-1))
        ok2 = ok1 & (e_lr == m2[rows])
        e_sr = np.where(ok2, ranks[src], np.int64(-1))
        m3 = seg_max(e_sr, np.int64(-1))
        better = (m1 > lv) | ((m1 == lv) & (m2 > lr))
        if not better.any():
            break
        leader = np.where(better, by_rank[m2], leader)
        parent = np.where(better, by_rank[m3], parent)
        lv = b[leader]
        lr = ranks[leader]

    # Confirm Parent, collapsed: a parent acknowledges exactly the requesters
    # that announced the leader it holds itself, so a non-root is an orphan iff
    # it ended up under a different leader than its parent.
    nonroot = parent != ids
    orphan = nonroot & (leader != leader[parent])
    parent = np.where(orphan, np.int64(-1), parent)
    anchor = tree_anchors(parent)
    return BFSForest(leader=leader, parent=parent, anchor=anchor, ranks=ranks)


def tree_anchors(parent: np.ndarray) -> np.ndarray:
    """Resolve each node's parent chain to its root by pointer doubling.

    ``parent`` uses the :class:`BFSForest` convention (self for roots, ``-1``
    for orphans).  Returns the root id where the chain ends in a root, and
    ``-1`` where it is cut by an orphan (orphans included).  Chains are acyclic
    and at most ``T`` long (a node's parent heard of the shared leader one
    round earlier), so the doubling loop runs ``O(log T)`` passes.
    """
    n = len(parent)
    ids = np.arange(n, dtype=np.int64)
    orphan = parent < 0
    hop = np.where(orphan, ids, parent)  # pin orphans to themselves
    while True:
        nxt = hop[hop]
        if np.array_equal(nxt, hop):
            break
        hop = nxt
    is_root = parent == ids
    return np.where(is_root[hop], hop, np.int64(-1))


def local_elimination_rounds(csr: CSRAdjacency, forest: BFSForest,
                             values: np.ndarray, rounds: int, *,
                             plan: Optional[ShardPlan] = None,
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 5 as ``T`` restricted-threshold round kernels.

    Returns ``(num, deg)`` of shape ``(rounds, n)``: ``num[t]`` is the activity
    mask at the start of round ``t + 1`` and ``deg[t]`` the restricted degree
    recorded in that round (0.0 for inactive nodes) — the per-node arrays the
    faithful :class:`~repro.core.local_elimination.LocalEliminationProtocol`
    accumulates.  The per-node threshold is the leader's surviving number,
    gathered from ``values``.  Once the alive mask reaches a fixed point the
    remaining rows repeat it (inactive nodes record zeros, active ones re-record
    the same degree), exactly like the remaining simulator rounds would.
    """
    n = csr.num_nodes
    T = int(rounds)
    if T < 1:
        raise AlgorithmError(f"rounds must be >= 1, got {T}")
    b = np.ascontiguousarray(values, dtype=np.float64)
    thresholds = b[forest.leader] if n else np.zeros(0, dtype=np.float64)
    num = np.zeros((T, n), dtype=bool)
    deg = np.zeros((T, n), dtype=np.float64)
    alive = forest.participates
    bounds = tuple(plan) if plan is not None else ((0, n),)
    for t in range(T):
        new_alive = np.empty(n, dtype=bool)
        deg_row = np.empty(n, dtype=np.float64)
        for lo, hi in bounds:
            new_alive[lo:hi], deg_row[lo:hi] = restricted_threshold_round_range(
                csr, alive, forest.leader, thresholds, lo, hi)
        num[t] = alive
        deg[t] = deg_row
        if np.array_equal(new_alive, alive):
            num[t + 1:] = alive
            deg[t + 1:] = deg_row
            break
        alive = new_alive
    return num, deg


@dataclass(frozen=True)
class DensestDecision:
    """Array form of the Phase-4 output.

    ``t_star`` / ``density`` are indexed by node id but only meaningful at
    accepted roots (``-1`` / ``NaN`` elsewhere); ``sigma`` marks the members of
    the reported subsets, i.e. the in-tree nodes still active at their root's
    chosen round.
    """

    sigma: np.ndarray      #: bool (n,) — member of the reported subset
    t_star: np.ndarray     #: int64 (n,) — accepted root's densest round, else -1
    density: np.ndarray    #: float64 (n,) — accepted root's density, else NaN


def aggregate_and_decide(forest: BFSForest, num: np.ndarray, deg: np.ndarray,
                         values: np.ndarray, acceptance_factor: float,
                         ) -> DensestDecision:
    """Algorithm 6 as segmented sums keyed by tree root.

    The up-sweep collapses to per-round ``np.bincount`` sums of ``num`` / ``deg``
    over the in-tree members of each root; the root's densest-round choice is
    the faithful ``_decide`` loop run for all roots at once (strict ``>`` from
    ``-1.0``, so the earliest round wins ties, and rounds with an empty
    surviving set are skipped); acceptance compares against
    ``b_root / acceptance_factor``; the downstream flood is one gather of the
    accepted root's ``t*`` through the anchor index.
    """
    if acceptance_factor <= 0:
        raise AlgorithmError(
            f"acceptance_factor must be positive, got {acceptance_factor}")
    T, n = num.shape
    b = np.ascontiguousarray(values, dtype=np.float64)
    members = np.flatnonzero(forest.anchor >= 0)
    anchors = forest.anchor[members]
    roots = np.flatnonzero(forest.is_root)

    best_density = np.full(len(roots), -1.0, dtype=np.float64)
    best_t = np.full(len(roots), -1, dtype=np.int64)
    for t in range(T):
        cnt = np.bincount(anchors, weights=num[t, members].astype(np.float64),
                          minlength=n)[roots]
        dsum = np.bincount(anchors, weights=deg[t, members], minlength=n)[roots]
        with np.errstate(divide="ignore", invalid="ignore"):
            dens = dsum / (2.0 * cnt)
        update = (cnt > 0) & (dens > best_density)
        best_density = np.where(update, dens, best_density)
        best_t = np.where(update, np.int64(t), best_t)

    threshold = b[roots] / acceptance_factor
    accepted = (best_t >= 0) & (best_density >= threshold)

    t_star = np.full(n, -1, dtype=np.int64)
    density = np.full(n, np.nan, dtype=np.float64)
    t_star[roots[accepted]] = best_t[accepted]
    density[roots[accepted]] = best_density[accepted]

    sigma = np.zeros(n, dtype=bool)
    if len(members):
        member_t = t_star[anchors]
        flooded = member_t >= 0
        chosen = members[flooded]
        sigma[chosen] = num[member_t[flooded], chosen]
    return DensestDecision(sigma=sigma, t_star=t_star, density=density)


def densest_phases(csr: CSRAdjacency, values: np.ndarray, rounds: int,
                   acceptance_factor: float, *,
                   ranks: Optional[np.ndarray] = None,
                   plan: Optional[ShardPlan] = None,
                   ) -> Tuple[BFSForest, np.ndarray, np.ndarray, DensestDecision]:
    """Phases 2-4 end to end over a CSR view: ``(forest, num, deg, decision)``.

    ``values`` is the Phase-1 surviving-number vector aligned with the CSR ids
    and ``rounds`` the shared budget ``T``.
    """
    b = np.ascontiguousarray(values, dtype=np.float64)
    forest = bfs_forest(csr, b, rounds, ranks=ranks)
    num, deg = local_elimination_rounds(csr, forest, b, rounds, plan=plan)
    decision = aggregate_and_decide(forest, num, deg, b, acceptance_factor)
    return forest, num, deg, decision
