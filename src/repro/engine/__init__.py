"""repro.engine — the unified multi-engine execution layer.

Every way of executing Algorithm 2 (the compact elimination procedure) lives
behind the :class:`~repro.engine.base.Engine` protocol and is resolved by name
through :func:`~repro.engine.base.get_engine`:

>>> from repro.engine import get_engine, available_engines
>>> available_engines()
('faithful', 'sharded', 'vectorized')
>>> engine = get_engine("sharded", num_shards=4)

The per-round NumPy kernels shared by the array engines are in
:mod:`repro.engine.kernels`; multi-job execution with shared CSR views and
memoised Λ-grids is in :mod:`repro.engine.batch`.
"""

from repro.engine.base import (
    Engine,
    EngineLike,
    available_engines,
    get_engine,
    parse_engine_spec,
    register_engine,
)
from repro.engine.batch import BatchJob, BatchResult, BatchRunner, RunStats, sweep_jobs

__all__ = [
    "Engine",
    "EngineLike",
    "available_engines",
    "get_engine",
    "parse_engine_spec",
    "register_engine",
    "BatchJob",
    "BatchResult",
    "BatchRunner",
    "RunStats",
    "sweep_jobs",
]
