"""repro.engine — the unified multi-engine execution layer.

Every way of executing Algorithm 2 (the compact elimination procedure) lives
behind the :class:`~repro.engine.base.Engine` protocol and is resolved by name
through :func:`~repro.engine.base.get_engine`:

>>> from repro.engine import get_engine, available_engines
>>> available_engines()
('faithful', 'sharded', 'vectorized')
>>> engine = get_engine("sharded", num_shards=4)

The per-round NumPy kernels shared by the array engines are in
:mod:`repro.engine.kernels`; multi-job execution with shared per-graph sessions
is in :mod:`repro.engine.batch`.

The batch symbols are re-exported lazily (PEP 562): :mod:`repro.engine.batch`
routes jobs through :mod:`repro.session` and :mod:`repro.problems`, which in
turn build on :mod:`repro.core` — and ``repro.core.surviving`` imports
:mod:`repro.engine.base` (hence this ``__init__``) for the kernels.  Importing
batch eagerly here would re-enter those half-initialised core modules.
"""

from repro.engine.base import (
    Engine,
    EngineLike,
    available_engines,
    get_engine,
    parse_engine_spec,
    register_engine,
)

_BATCH_EXPORTS = ("BatchJob", "BatchResult", "BatchRunner", "RunStats", "sweep_jobs")

__all__ = [
    "Engine",
    "EngineLike",
    "available_engines",
    "get_engine",
    "parse_engine_spec",
    "register_engine",
    *_BATCH_EXPORTS,
]


def __getattr__(name):
    if name in _BATCH_EXPORTS:
        from repro.engine import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_BATCH_EXPORTS))
