"""Batch execution of many problem requests over shared per-graph sessions.

Production workloads rarely run one graph once: parameter sweeps (ε / Λ grids),
multi-tenant serving and the experiment harness all execute *many* jobs, often
against the *same* graphs.  :class:`BatchRunner` makes that the first-class
shape: it resolves one engine from the registry, opens one
:class:`~repro.session.Session` per distinct graph (so every job on a graph
shares its CSR view, memoised Λ-grids, cached results and elimination
trajectories), routes each :class:`BatchJob` through the problem registry
(:mod:`repro.problems` — ``coreness`` / ``orientation`` / ``densest``), and
returns a :class:`BatchResult` with the problem result plus per-job
:class:`RunStats` (wall-clock, convergence round, scalar objective).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

import numpy as np

from repro.core.rounding import LambdaGrid
from repro.core.rounds import resolve_round_budget
from repro.engine.base import Engine, EngineLike, get_engine
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph
from repro.problems import Problem, ProblemLike, get_problem
from repro.session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.surviving import SurvivingNumbers

#: BatchJob fields a problem may consume beyond the round budget; a job must
#: keep each at its field default (or the problem's forced value) when the
#: problem does not consume it.
_OPTIONAL_JOB_FIELDS = ("lam", "tie_break", "track_kept")


@dataclass(frozen=True)
class BatchJob:
    """One unit of work: a graph, a problem, and the paper's parametrisation.

    Exactly one of ``epsilon`` (γ = 2(1+ε)), ``gamma`` (γ > 2) or ``rounds``
    must be given — the same contract as :func:`repro.core.api.approximate_coreness`.
    ``problem`` is anything :func:`repro.problems.get_problem` resolves
    (default ``"coreness"``); ``lam``, ``tie_break`` and ``track_kept`` are
    forwarded only to problems that consume them (``Problem.batch_params``) and
    must stay at their defaults otherwise.
    """

    graph: Graph
    name: str = ""
    problem: ProblemLike = "coreness"
    epsilon: Optional[float] = None
    gamma: Optional[float] = None
    rounds: Optional[int] = None
    lam: float = 0.0
    tie_break: str = "history"
    track_kept: bool = False

    def resolve_rounds(self) -> int:
        """The round budget ``T`` this job's parametrisation resolves to."""
        return resolve_round_budget(self.graph.num_nodes, self.epsilon, self.gamma,
                                    self.rounds)

    def problem_name(self) -> str:
        """The display name of the job's problem (without registry resolution)."""
        return self.problem if isinstance(self.problem, str) else self.problem.name

    def label(self) -> str:
        """A display label: the explicit name, or a budget-derived fallback."""
        if self.name:
            return self.name
        if self.epsilon is not None:
            budget = f"eps={self.epsilon:g}"
        elif self.gamma is not None:
            budget = f"gamma={self.gamma:g}"
        else:
            budget = f"T={self.rounds}"
        label = f"n={self.graph.num_nodes};{budget};lam={self.lam:g}"
        if self.problem_name() != "coreness":
            label += f";problem={self.problem_name()}"
        return label


#: Field defaults of the optional job params, read off the dataclass itself so
#: the validation in :meth:`BatchRunner._job_params` cannot drift from them.
_OPTIONAL_JOB_PARAMS = {f.name: f.default for f in fields(BatchJob)
                        if f.name in _OPTIONAL_JOB_FIELDS}


@dataclass(frozen=True)
class RunStats:
    """Per-job execution statistics recorded by the :class:`BatchRunner`."""

    job: str                         #: the job's display label
    engine: str                      #: canonical engine name
    num_nodes: int
    num_edges: int
    rounds: int                      #: synchronous rounds executed (the budget T;
                                     #: for densest, all 4 pipeline phases)
    seconds: float                   #: wall-clock of the request
    converged_round: Optional[int]   #: first round the values stopped changing
                                     #: (None when unknown or not reached)
    problem: str = "coreness"        #: canonical problem name
    objective: Optional[float] = None  #: the problem's scalar objective


@dataclass
class BatchResult:
    """A finished job: the problem result plus its :class:`RunStats`."""

    job: BatchJob
    surviving: "SurvivingNumbers"
    stats: RunStats
    result: object = None            #: the full problem result (``to_dict()``-capable)

    @property
    def values(self):
        """Shortcut to the per-node surviving numbers."""
        return self.surviving.values


def _converged_round(trajectory: Optional[np.ndarray]) -> Optional[int]:
    if trajectory is None or trajectory.shape[0] < 2:
        return None
    for t in range(1, trajectory.shape[0]):
        if np.array_equal(trajectory[t], trajectory[t - 1]):
            return t - 1
    return None


class BatchRunner:
    """Execute many :class:`BatchJob`\\ s through one registry engine.

    The runner owns one :class:`~repro.session.Session` per distinct graph
    (keyed by graph identity), so CSR views, Λ-grids, cached results and
    elimination trajectories are shared by every job on the same graph —
    including across *different* problems (a coreness job and an orientation
    job on the same graph reuse one λ=0 trajectory).  Graphs are treated as
    immutable while a runner holds them.
    """

    def __init__(self, engine: EngineLike = "vectorized", *, store=None,
                 max_cached_results: Optional[int] = None,
                 **engine_options) -> None:
        self.engine: Engine = get_engine(engine, **engine_options)
        #: persistent artifact store handed to every opened session (optional;
        #: an :class:`~repro.store.ArtifactStore` or its root directory), so
        #: batch runs resume from — and extend — the on-disk cache.  When the
        #: engine supports memory-mapped storage (the sharded engine), the
        #: sessions also bind the store root for out-of-core auto-spill:
        #: graphs whose edge arrays exceed the engine's ``spill_bytes`` run
        #: over mapped files under ``<store>/<fingerprint>/csr/``.
        self.store = store
        self.max_cached_results = max_cached_results
        # id() keys require keeping the graph alive; the Session holds it.
        self._sessions: Dict[int, Session] = {}

    # ------------------------------------------------------------------ caches
    def session(self, graph: Graph) -> Session:
        """The (cached) :class:`Session` owning the artifacts of ``graph``."""
        key = id(graph)
        hit = self._sessions.get(key)
        if hit is None:
            hit = self._sessions[key] = Session(
                graph, engine=self.engine, store=self.store,
                max_cached_results=self.max_cached_results)
        return hit

    def adopt_session(self, session: Session) -> Session:
        """Register an externally built session as the owner of its graph.

        The delta path uses this: ``Session.apply_delta`` mints the child
        session (carrying its parent link, delta and chain fingerprint), and
        adopting it here routes every later job on the child graph through
        the incremental state instead of a fresh cold session.  The adopted
        session replaces any session previously opened for the same graph
        object.
        """
        self._sessions[id(session.graph)] = session
        return session

    def csr_view(self, graph: Graph) -> CSRAdjacency:
        """The (cached) CSR view of ``graph`` (owned by its session)."""
        return self.session(graph).csr

    def grid_view(self, graph: Graph, lam: float) -> LambdaGrid:
        """The (memoised) Λ-grid of ``graph`` for parameter ``lam``."""
        return self.session(graph).grid(lam)

    @property
    def cached_graphs(self) -> int:
        """Number of distinct graphs with an open session."""
        return len(self._sessions)

    def aggregate_stats(self) -> dict:
        """Summed :class:`~repro.session.SessionStats` across every session.

        One JSON-ready dict with the same counter keys as
        ``SessionStats.to_dict()`` — what the CLI and the serving layer report
        for a whole batch (cache hits, disk traffic, executed/reused rounds).
        """
        totals: Dict[str, int] = {}
        for session in self._sessions.values():
            for key, value in session.stats.to_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -------------------------------------------------------------------- runs
    @staticmethod
    def _job_params(job: BatchJob, problem: Problem) -> dict:
        params: dict = {}
        if job.epsilon is not None:
            params["epsilon"] = job.epsilon
        if job.gamma is not None:
            params["gamma"] = job.gamma
        if job.rounds is not None:
            params["rounds"] = job.rounds
        for name, default in _OPTIONAL_JOB_PARAMS.items():
            value = getattr(job, name)
            if name in problem.batch_params:
                params[name] = value
            elif value != default and value != problem.forced_params.get(name, default):
                raise AlgorithmError(
                    f"problem {problem.name!r} does not take {name} "
                    f"(job {job.label()!r} sets {name}={value!r})")
        return params

    def run_job(self, job: BatchJob) -> BatchResult:
        """Execute one job and return its :class:`BatchResult`."""
        if job.graph.num_nodes == 0:
            raise AlgorithmError("batch jobs need a non-empty graph")
        problem = get_problem(job.problem)
        params = self._job_params(job, problem)
        job.resolve_rounds()   # budget validation up front, before any work
        session = self.session(job.graph)
        start = time.perf_counter()
        # The job's own problem spec goes to solve(): name specs dedup by
        # problem class there, while a fresh instance resolved here would not.
        result = session.solve(job.problem, **params)
        seconds = time.perf_counter() - start
        surviving = result.surviving
        trajectory = surviving.trajectory if surviving is not None else None
        stats = RunStats(job=job.label(),
                         engine=problem.forced_engine or self.engine.name,
                         num_nodes=job.graph.num_nodes, num_edges=job.graph.num_edges,
                         rounds=problem.rounds_executed(result), seconds=seconds,
                         converged_round=_converged_round(trajectory),
                         problem=problem.name, objective=problem.objective(result))
        return BatchResult(job=job, surviving=surviving, stats=stats, result=result)

    def run(self, jobs: Iterable[BatchJob]) -> List[BatchResult]:
        """Execute every job in order and return their results."""
        return [self.run_job(job) for job in jobs]


def sweep_jobs(graphs: Dict[str, Graph], *, epsilons: Iterable[float] = (),
               rounds: Iterable[int] = (), lams: Iterable[float] = (0.0,),
               problem: ProblemLike = "coreness",
               track_kept: bool = False) -> List[BatchJob]:
    """Cross-product helper: one job per (graph × budget × λ).

    ``epsilons`` and ``rounds`` together form the budget axis (each entry is one
    budget variant); at least one budget must be supplied.  ``problem`` applies
    to every generated job.
    """
    budgets: List[tuple] = []
    for eps in epsilons:
        budgets.append((f"eps={eps:g}", {"epsilon": float(eps)}))
    for t in rounds:
        budgets.append((f"T={t}", {"rounds": int(t)}))
    if not budgets:
        raise AlgorithmError("sweep_jobs needs at least one epsilon or rounds budget")
    jobs: List[BatchJob] = []
    for graph_name, graph in graphs.items():
        for budget_name, budget in budgets:
            for lam in lams:
                name = f"{graph_name};{budget_name}"
                if lam:
                    name += f";lam={lam:g}"
                jobs.append(BatchJob(graph=graph, name=name, problem=problem,
                                     lam=float(lam), track_kept=track_kept, **budget))
    return jobs
