"""Batch execution of many compact-elimination jobs over shared CSR views.

Production workloads rarely run one graph once: parameter sweeps (ε / Λ grids),
multi-tenant serving and the experiment harness all execute *many* jobs, often
against the *same* graphs.  :class:`BatchRunner` makes that the first-class
shape: it resolves one engine from the registry, converts every distinct graph
to a CSR view exactly once, memoises Λ-grids per ``(graph, λ)``, and returns a
:class:`BatchResult` with per-job :class:`RunStats` (wall-clock, convergence
round) for each :class:`BatchJob`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.rounding import LambdaGrid, grid_for_graph
from repro.core.rounds import resolve_round_budget
from repro.engine.base import Engine, EngineLike, get_engine
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency, graph_to_csr
from repro.graph.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.surviving import SurvivingNumbers


@dataclass(frozen=True)
class BatchJob:
    """One unit of work: a graph plus the paper's parametrisation.

    Exactly one of ``epsilon`` (γ = 2(1+ε)), ``gamma`` (γ > 2) or ``rounds``
    must be given — the same contract as :func:`repro.core.api.approximate_coreness`.
    """

    graph: Graph
    name: str = ""
    epsilon: Optional[float] = None
    gamma: Optional[float] = None
    rounds: Optional[int] = None
    lam: float = 0.0
    tie_break: str = "history"
    track_kept: bool = False

    def resolve_rounds(self) -> int:
        """The round budget ``T`` this job's parametrisation resolves to."""
        return resolve_round_budget(self.graph.num_nodes, self.epsilon, self.gamma,
                                    self.rounds)

    def label(self) -> str:
        """A display label: the explicit name, or a budget-derived fallback."""
        if self.name:
            return self.name
        if self.epsilon is not None:
            budget = f"eps={self.epsilon:g}"
        elif self.gamma is not None:
            budget = f"gamma={self.gamma:g}"
        else:
            budget = f"T={self.rounds}"
        return f"n={self.graph.num_nodes};{budget};lam={self.lam:g}"


@dataclass(frozen=True)
class RunStats:
    """Per-job execution statistics recorded by the :class:`BatchRunner`."""

    job: str                         #: the job's display label
    engine: str                      #: canonical engine name
    num_nodes: int
    num_edges: int
    rounds: int                      #: executed round budget T
    seconds: float                   #: wall-clock of the engine run
    converged_round: Optional[int]   #: first round the values stopped changing
                                     #: (None when unknown or not reached)


@dataclass
class BatchResult:
    """A finished job: the surviving numbers plus its :class:`RunStats`."""

    job: BatchJob
    surviving: "SurvivingNumbers"
    stats: RunStats

    @property
    def values(self):
        """Shortcut to the per-node surviving numbers."""
        return self.surviving.values


def _converged_round(trajectory: Optional[np.ndarray]) -> Optional[int]:
    if trajectory is None or trajectory.shape[0] < 2:
        return None
    for t in range(1, trajectory.shape[0]):
        if np.array_equal(trajectory[t], trajectory[t - 1]):
            return t - 1
    return None


class BatchRunner:
    """Execute many :class:`BatchJob`\\ s through one registry engine.

    The runner owns two memo caches keyed by graph identity: CSR views (shared
    by every job on the same graph) and Λ-grids per ``(graph, λ)``.  Graphs are
    treated as immutable while a runner holds them.
    """

    def __init__(self, engine: EngineLike = "vectorized", **engine_options) -> None:
        self.engine: Engine = get_engine(engine, **engine_options)
        # id() keys require keeping the graph alive; store it alongside the value.
        self._csr_cache: Dict[int, Tuple[Graph, CSRAdjacency]] = {}
        self._grid_cache: Dict[Tuple[int, float], Tuple[Graph, LambdaGrid]] = {}

    # ------------------------------------------------------------------ caches
    def csr_view(self, graph: Graph) -> CSRAdjacency:
        """The (cached) CSR view of ``graph``."""
        key = id(graph)
        hit = self._csr_cache.get(key)
        if hit is None:
            hit = (graph, graph_to_csr(graph))
            self._csr_cache[key] = hit
        return hit[1]

    def grid_view(self, graph: Graph, lam: float) -> LambdaGrid:
        """The (memoised) Λ-grid of ``graph`` for parameter ``lam``."""
        key = (id(graph), float(lam))
        hit = self._grid_cache.get(key)
        if hit is None:
            hit = (graph, grid_for_graph(graph, lam))
            self._grid_cache[key] = hit
        return hit[1]

    @property
    def cached_graphs(self) -> int:
        """Number of distinct graphs with a cached CSR view or grid."""
        return len(self._csr_cache)

    # -------------------------------------------------------------------- runs
    def run_job(self, job: BatchJob) -> BatchResult:
        """Execute one job and return its :class:`BatchResult`."""
        if job.graph.num_nodes == 0:
            raise AlgorithmError("batch jobs need a non-empty graph")
        rounds = job.resolve_rounds()
        csr = self.csr_view(job.graph)
        grid = self.grid_view(job.graph, job.lam)
        start = time.perf_counter()
        surviving = self.engine.run(job.graph, rounds, lam=job.lam,
                                    tie_break=job.tie_break,
                                    track_kept=job.track_kept, csr=csr, grid=grid)
        seconds = time.perf_counter() - start
        stats = RunStats(job=job.label(), engine=self.engine.name,
                         num_nodes=job.graph.num_nodes, num_edges=job.graph.num_edges,
                         rounds=rounds, seconds=seconds,
                         converged_round=_converged_round(surviving.trajectory))
        return BatchResult(job=job, surviving=surviving, stats=stats)

    def run(self, jobs: Iterable[BatchJob]) -> List[BatchResult]:
        """Execute every job in order and return their results."""
        return [self.run_job(job) for job in jobs]


def sweep_jobs(graphs: Dict[str, Graph], *, epsilons: Iterable[float] = (),
               rounds: Iterable[int] = (), lams: Iterable[float] = (0.0,),
               track_kept: bool = False) -> List[BatchJob]:
    """Cross-product helper: one job per (graph × budget × λ).

    ``epsilons`` and ``rounds`` together form the budget axis (each entry is one
    budget variant); at least one budget must be supplied.
    """
    budgets: List[Tuple[str, Dict[str, object]]] = []
    for eps in epsilons:
        budgets.append((f"eps={eps:g}", {"epsilon": float(eps)}))
    for t in rounds:
        budgets.append((f"T={t}", {"rounds": int(t)}))
    if not budgets:
        raise AlgorithmError("sweep_jobs needs at least one epsilon or rounds budget")
    jobs: List[BatchJob] = []
    for graph_name, graph in graphs.items():
        for budget_name, budget in budgets:
            for lam in lams:
                name = f"{graph_name};{budget_name}"
                if lam:
                    name += f";lam={lam:g}"
                jobs.append(BatchJob(graph=graph, name=name, lam=float(lam),
                                     track_kept=track_kept, **budget))
    return jobs
