"""The ``Update`` subroutine (Algorithm 3) and its variants.

Given the current surviving numbers ``b_i`` and edge weights ``w_i`` of a node's
neighbours, ``Update`` returns

* the **maximum real number** ``b`` such that ``Σ_{i : b_i >= b} w_i >= b``, and
* an auxiliary neighbour subset ``N ⊆ {u_i : b_i >= b}`` with ``Σ_{u_i ∈ N} w_i <= b``
  (the in-neighbour candidates for the min-max edge orientation).

Equivalently (and this is what the vectorised engine exploits): sort the entries by
``b_i`` in non-increasing order, let ``S_k`` be the prefix weight of the ``k``
largest entries; then ``b = max_k min(S_k, b_(k))``.

Three implementation variants are provided, matching the paper:

* :func:`update_sorted` — the faithful ``O(d log d)`` sorting implementation with
  the *stateful* lexicographic tie-breaking rule of Algorithm 3 (ties in the current
  surviving number are broken by the history of past surviving numbers, most recent
  first, then by node identity).  This is the default used by the simulator
  protocols and is the version whose auxiliary subsets satisfy the invariants of
  Definition III.7 (Lemma III.11).
* :func:`update_stable` — the paper's remarked alternative: each node keeps a fixed
  neighbour ordering and stable-sorts by the current surviving numbers only.
* :func:`update_counting` — the ``O(d)`` counting variant of Remark III.8 for
  unit-weight graphs (returns only the surviving number, not the subset).

Self-loops are supported through the ``self_loop`` parameter: a self-loop of weight
``ℓ`` behaves like a virtual neighbour whose surviving number is ``+∞`` and which is
never eligible for the auxiliary subset (an edge cannot be oriented towards a
non-endpoint); this is exactly what quotient graphs (Definition II.2) require.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import AlgorithmError

#: One neighbour entry: (neighbour id, neighbour's current surviving number, edge weight).
Entry = Tuple[Hashable, float, float]


@dataclass(frozen=True)
class UpdateResult:
    """Result of one ``Update`` call."""

    value: float                 #: the new surviving number ``b``
    kept: Tuple[Hashable, ...]   #: the auxiliary subset ``N`` (possibly empty)

    @property
    def kept_set(self) -> frozenset:
        """The auxiliary subset as a frozenset (convenient for invariant checks)."""
        return frozenset(self.kept)


def _validate_entries(entries: Sequence[Entry]) -> None:
    for entry in entries:
        if len(entry) != 3:
            raise AlgorithmError(f"entries must be (node, b, w) triples, got {entry!r}")
        _, b, w = entry
        if w < 0:
            raise AlgorithmError(f"edge weights must be non-negative, got {w!r}")
        if math.isnan(b) or math.isnan(w):
            raise AlgorithmError("NaN values are not allowed in Update entries")


def _scan(sorted_entries: List[Entry], self_loop: float) -> UpdateResult:
    """Core scan of Algorithm 3 on entries sorted by non-decreasing surviving number.

    ``sorted_entries`` follow the paper's indexing ``b_1 <= ... <= b_d``; the scan
    walks from ``i = d`` down to ``1`` accumulating the suffix weight ``s`` and stops
    at the first index where ``s > b_{i-1}`` (with the convention ``b_0 = -inf``).
    ``self_loop`` initialises ``s`` because a self-loop survives exactly as long as
    the node itself does.
    """
    d = len(sorted_entries)
    if d == 0:
        return UpdateResult(value=self_loop, kept=())
    values = [b for _, b, _ in sorted_entries]
    # A self-loop acts as a virtual neighbour with surviving number +inf: if its
    # weight alone exceeds every neighbour's surviving number, the best feasible
    # threshold lies strictly above b_d and equals the loop weight itself (no
    # neighbour is eligible for the auxiliary subset in that case).
    if self_loop > values[-1]:
        return UpdateResult(value=self_loop, kept=())
    s = self_loop
    for i in range(d, 0, -1):
        node_i, b_i, w_i = sorted_entries[i - 1]
        s += w_i
        b_prev = values[i - 2] if i >= 2 else -math.inf
        if s > b_prev:
            kept = [u for u, _, _ in sorted_entries[i:]]
            if s <= b_i:
                value = s
                kept.append(node_i)
            else:
                value = b_i
            return UpdateResult(value=value, kept=tuple(kept))
    raise AlgorithmError("Update scan failed to terminate; this should be impossible")


def update_sorted(entries: Sequence[Entry], *,
                  histories: Optional[Dict[Hashable, Sequence[float]]] = None,
                  self_loop: float = 0.0) -> UpdateResult:
    """Algorithm 3 with the paper's stateful tie-breaking rule.

    Parameters
    ----------
    entries:
        ``(u_i, b_i, w_i)`` triples for the node's neighbours.
    histories:
        Optional map ``u -> past surviving numbers of u`` (oldest first, **not**
        including the current value).  Ties in the current ``b_i`` are broken by the
        lexicographic order of these histories with more recent entries having
        higher priority, and any remaining tie by node identity — exactly the rule
        in Algorithm 3 line 1.  When ``None``, ties fall through to node identity.
    self_loop:
        Total self-loop weight of the node (see the module docstring).
    """
    _validate_entries(entries)
    if self_loop < 0:
        raise AlgorithmError(f"self_loop weight must be non-negative, got {self_loop}")

    def sort_key(entry: Entry):
        node, b, _ = entry
        if histories is not None and node in histories:
            hist = tuple(reversed(tuple(histories[node])))
        else:
            hist = ()
        return (b, hist, _comparable_id(node))

    ordered = sorted(entries, key=sort_key)
    return _scan(ordered, self_loop)


def update_stable(entries: Sequence[Entry], neighbor_order: Sequence[Hashable], *,
                  self_loop: float = 0.0) -> UpdateResult:
    """Algorithm 3 with the stable-sort alternative mentioned in its comment.

    ``neighbor_order`` is the node's fixed ordering of its neighbours; entries are
    stable-sorted by the current surviving numbers, so equal values keep the fixed
    order.  The paper notes this is an acceptable replacement for the history-based
    rule.
    """
    _validate_entries(entries)
    position = {u: i for i, u in enumerate(neighbor_order)}
    missing = [u for u, _, _ in entries if u not in position]
    if missing:
        raise AlgorithmError(f"neighbor_order is missing entries for {missing!r}")
    ordered = sorted(entries, key=lambda e: position[e[0]])
    ordered.sort(key=lambda e: e[1])  # stable: equal b keep the fixed order
    return _scan(ordered, self_loop)


def update_naive(entries: Sequence[Entry], *, self_loop: float = 0.0) -> UpdateResult:
    """Algorithm 3 with *no* principled tie-breaking (identity order only).

    Used by the A1 ablation: the surviving number it returns is identical to the
    other variants, but its auxiliary subsets are not covered by Lemma III.11 (the
    feasibility invariant can fail, which the ablation measures).
    """
    return update_sorted(entries, histories=None, self_loop=self_loop)


def update_counting(degrees: Sequence[float], *, self_loop: float = 0.0) -> float:
    """The ``O(d)`` counting variant of Remark III.8 for unit edge weights.

    ``degrees`` are the neighbours' current (integer-valued) surviving numbers and
    every edge weight is 1 — the unweighted setting of Remark III.8, in which every
    surviving number produced by the protocol is an integer.  The answer is the
    classic h-index: the largest integer ``k`` such that at least ``k`` neighbours
    have surviving number ``>= k``.  A counter array of size ``d + 1`` suffices
    because the answer can never exceed the number of neighbours ``d``.

    Only ``self_loop == 0`` is supported (the unweighted input graphs of the paper
    have no self-loops); use :func:`update_sorted` otherwise.  The equivalence with
    :func:`update_sorted` on unit-weight integer inputs is asserted by the
    test-suite and measured by the A2 ablation benchmark.
    """
    if self_loop != 0.0:
        raise AlgorithmError("update_counting only supports self_loop == 0; "
                             "use update_sorted for graphs with self-loops")
    d = len(degrees)
    if d == 0:
        return 0.0
    counts = [0] * (d + 1)
    for b in degrees:
        if b < 0:
            raise AlgorithmError(f"surviving numbers must be non-negative, got {b}")
        if b != math.inf and abs(b - round(b)) > 1e-9:
            raise AlgorithmError(
                "update_counting requires integer surviving numbers (unweighted graphs); "
                f"got {b!r}")
        counts[min(d, int(b) if b != math.inf else d)] += 1
    suffix = 0
    for k in range(d, -1, -1):
        suffix += counts[k]
        if suffix >= k:
            return float(k)
    return 0.0


def _comparable_id(node: Hashable):
    """Make heterogeneous node identifiers comparable for deterministic tie-breaking."""
    return (type(node).__name__, repr(node))


def update_value_only(entries: Sequence[Entry], *, self_loop: float = 0.0) -> float:
    """The surviving number of Algorithm 3 without the auxiliary subset.

    Uses the ``max_k min(S_k, b_(k))`` characterisation directly; this is the
    specification the vectorised engine implements and against which the faithful
    implementations are property-tested.
    """
    _validate_entries(entries)
    ordered = sorted(entries, key=lambda e: -e[1])
    best = self_loop
    prefix = self_loop
    for _, b, w in ordered:
        prefix += w
        best = max(best, min(prefix, b))
    return best
