"""Algorithm 5 — augmented elimination within each BFS tree (Phase 3 of Theorem I.3).

Every node that belongs to a BFS tree (Phase 2) runs the single-threshold
elimination procedure with the threshold ``b_u`` carried by its leader ``(u, b_u)``,
*restricted to the nodes of the same tree*: a node's degree in round ``t`` counts
the graph edges towards neighbours that (i) are still active and (ii) adopted the
same leader.  While doing so it records, for every round ``t``, whether it was still
active (``num_v[t-1]``) and its restricted weighted degree (``deg_v[t-1]``); these
arrays feed the Phase-4 aggregation, which locates the round whose surviving set is
densest (Lemma IV.4).

Interpretation note
-------------------
The paper's prose says nodes "communicate only with their parent and children" in
this phase, yet Lemma IV.4's proof requires the recorded degrees to be degrees in
the original graph restricted to surviving same-tree nodes (otherwise the surviving
set could not have density close to ``b_u``, and the leader itself need not
survive).  We therefore implement the variant that makes the lemma hold: each active
node broadcasts ``(leader id, "active")`` to **all** its graph neighbours and counts
only same-leader active senders.  This stays within the LOCAL broadcast model and
uses ``O(log n)``-bit messages.  Phase 4 is the part that only uses tree edges.
Orphans (nodes whose parent did not acknowledge them) do not participate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.core.bfs import BFSOutput
from repro.distsim.message import Message
from repro.distsim.node import NodeContext, NodeProtocol, Outgoing
from repro.distsim.runner import ProtocolRun, run_protocol
from repro.errors import AlgorithmError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class LocalEliminationOutput:
    """Per-node output of Algorithm 5."""

    leader_id: Hashable              #: the node's leader (tree identity)
    threshold: float                 #: the leader's surviving number ``b_u``
    num: Tuple[int, ...]             #: ``num_v[0..T-1]`` — activity indicator per round
    deg: Tuple[float, ...]           #: ``deg_v[0..T-1]`` — restricted degree per round
    participated: bool               #: False for orphans (they stay inactive throughout)

    def survived_rounds(self) -> int:
        """Number of rounds the node stayed active."""
        return int(sum(self.num))


class LocalEliminationProtocol(NodeProtocol):
    """Per-node logic of Algorithm 5."""

    def __init__(self, context: NodeContext, bfs: BFSOutput, rounds: int) -> None:
        super().__init__(context)
        if rounds < 1:
            raise AlgorithmError(f"rounds must be >= 1, got {rounds}")
        self.T = rounds
        self.leader_id = bfs.leader_id
        self.threshold = float(bfs.leader_value)
        self.participates = bfs.parent is not None
        self.active = self.participates
        self.num = [0] * rounds
        self.deg = [0.0] * rounds

    def compose_message(self, round_index: int) -> Outgoing:
        if round_index > self.T or not self.active:
            return None
        return self.broadcast(("active", self.leader_id))

    def receive(self, round_index: int, messages: Dict[Hashable, Message]) -> None:
        if round_index > self.T:
            self.halt()
            return
        if not self.active:
            return
        t = round_index - 1
        restricted_degree = self.context.self_loop_weight
        for sender, message in messages.items():
            payload = message.payload
            if (isinstance(payload, tuple) and len(payload) == 2
                    and payload[0] == "active" and payload[1] == self.leader_id):
                restricted_degree += self.context.neighbor_weights.get(sender, 0.0)
        self.num[t] = 1
        self.deg[t] = restricted_degree
        if restricted_degree < self.threshold:
            self.active = False
        if round_index == self.T:
            self.halt()

    def output(self) -> LocalEliminationOutput:
        return LocalEliminationOutput(leader_id=self.leader_id, threshold=self.threshold,
                                      num=tuple(self.num), deg=tuple(self.deg),
                                      participated=self.participates)


def run_local_elimination(graph: Graph, bfs_outputs: Dict[Hashable, BFSOutput],
                          rounds: int) -> Tuple[Dict[Hashable, LocalEliminationOutput], ProtocolRun]:
    """Run Algorithm 5 on the faithful simulator."""
    missing = [v for v in graph.nodes() if v not in bfs_outputs]
    if missing:
        raise AlgorithmError(f"missing BFS outputs for nodes {missing[:5]!r}...")
    run = run_protocol(
        graph,
        lambda ctx: LocalEliminationProtocol(ctx, bfs_outputs[ctx.node_id], rounds),
        rounds,
    )
    return dict(run.outputs), run


def surviving_sets_per_round(outputs: Dict[Hashable, LocalEliminationOutput],
                             leader_id: Hashable, rounds: int) -> list:
    """The surviving sets ``A_0, ..., A_{T-1}`` of a given tree (analysis helper).

    ``A_t`` contains the nodes of the tree that were still active at the start of
    round ``t + 1``, i.e. those with ``num[t] == 1``.
    """
    sets = []
    for t in range(rounds):
        sets.append({v for v, out in outputs.items()
                     if out.leader_id == leader_id and t < len(out.num) and out.num[t] == 1})
    return sets
