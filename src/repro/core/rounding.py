"""The threshold set Λ and rounding of surviving numbers (Section III-C).

With arbitrary real edge weights, a surviving number may need unbounded precision;
to keep messages small the paper restricts the numbers sent to a set
``Λ = {(1+λ)^k : k ∈ Z}`` and rounds each node's surviving number *down* to the next
element of Λ after every `Update` (Algorithm 2, line 7).  Corollary III.10 shows the
overall guarantee becomes::

    r(v) / (1+λ)  <=  c(v) / (1+λ)  <=  b_v  <=  2(1+ε) · r(v)  <=  2(1+ε) · c(v)

``λ = 0`` denotes the un-rounded case ``Λ = R`` — required whenever the auxiliary
orientation subsets ``N_v`` are needed (Lemma III.11 explicitly relies on Λ = R).

:class:`LambdaGrid` bundles the rounding with an estimate of ``|Λ|`` restricted to
the values that can actually occur (between the smallest positive edge weight and
the total graph weight), which is what the CONGEST message-size accounting uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.utils.numeric import round_down_to_grid


@dataclass(frozen=True)
class LambdaGrid:
    """The geometric threshold grid ``Λ`` with base ``1 + lam``.

    Attributes
    ----------
    lam:
        The grid parameter λ >= 0; ``0`` means Λ = R (no rounding).
    value_floor / value_ceiling:
        Optional positive bounds on the values the protocol can produce; used only
        to report a finite grid size for message accounting.
    """

    lam: float
    value_floor: Optional[float] = None
    value_ceiling: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise AlgorithmError(f"lambda must be non-negative, got {self.lam}")
        if (self.value_floor is not None and self.value_ceiling is not None
                and self.value_floor > self.value_ceiling):
            raise AlgorithmError("value_floor must not exceed value_ceiling")

    @property
    def is_exact(self) -> bool:
        """Whether the grid is the whole real line (λ = 0)."""
        return self.lam == 0.0

    def round_down(self, value: float) -> float:
        """Round ``value`` down to the next grid element (identity when λ = 0)."""
        return round_down_to_grid(value, self.lam)

    def grid_size(self) -> Optional[int]:
        """Number of grid values between the floor and the ceiling (None if unbounded).

        This is the ``|Λ|`` whose logarithm bounds the message size in the paper's
        Section III-C discussion.
        """
        if self.is_exact or self.value_floor is None or self.value_ceiling is None:
            return None
        if self.value_floor <= 0 or self.value_ceiling <= 0:
            return None
        span = math.log(self.value_ceiling / self.value_floor, 1.0 + self.lam)
        return max(1, int(math.floor(span)) + 1)


def grid_for_graph(graph: Graph, lam: float) -> LambdaGrid:
    """Build the :class:`LambdaGrid` sized to the values ``graph`` can produce.

    Surviving numbers always lie between the smallest positive edge weight (or 0)
    and the total graph weight, so ``|Λ|`` is ``O(log_{1+λ}(w(E)/w_min))``.
    """
    weights = [w for _, _, w in graph.edges() if w > 0]
    if not weights:
        return LambdaGrid(lam=lam, value_floor=None, value_ceiling=None)
    return LambdaGrid(lam=lam, value_floor=min(weights), value_ceiling=max(graph.total_weight, min(weights)))
