"""Theorem I.3 — the full weak-densest-subset pipeline (Definition IV.1).

The pipeline chains the four phases of Section IV:

1. **Phase 1** — Algorithm 2 for ``T`` rounds: every node learns a surviving number
   ``b_v`` (a γ-approximation of its maximal density);
2. **Phase 2** — Algorithm 4 for ``T + 2`` rounds: bounded-depth BFS trees rooted at
   local leaders (the node with the largest ``b`` within ``T`` hops);
3. **Phase 3** — Algorithm 5 for ``T`` rounds: single-threshold elimination with the
   leader's ``b`` restricted to each tree, recording per-round survival/degrees;
4. **Phase 4** — Algorithm 6 for ``≤ 2T + 4`` rounds: aggregation up each tree,
   selection of the densest round ``t*`` and a downstream flood so that every member
   of the reported subset knows it (and the subset's density).

The result satisfies Definition IV.1: the reported subsets are disjoint (one per
leader), every member knows its leader and the announced density, and — provided the
acceptance threshold of Algorithm 6 is the analysis-supported ``b_v / γ`` — the
subset of the globally best leader has density at least ``ρ* / γ`` (Lemma IV.4,
Corollary IV.5).

Execution engines
-----------------
Two implementations of phases 2-4 are available through the ``engine``
parameter of :func:`weak_densest_subsets`:

* ``"faithful"`` (default; aliases ``"simulation"``, ``"reference"``) — the
  per-node protocols on the synchronous simulator.  This is the reference
  ground truth and the only path with round/message accounting.
* ``"array"`` (alias ``"vectorized"``) — the batched CSR kernels of
  :mod:`repro.engine.densest_kernels`.  Phase 1 runs on the vectorised engine
  (or is served from a caller-supplied trajectory-backed result), phases 2-4
  as segmented NumPy over the CSR view; ``rounds_per_phase`` then reports the
  *nominal* per-phase budgets and ``messages_total`` is 0.  For integer and
  dyadic edge weights the reported ``subsets`` / ``reported_densities`` /
  ``node_assignment`` are bit-identical to the faithful path (the
  cross-engine corpus pins this); arbitrary float weights carry the usual
  last-ulp caveat of :mod:`repro.engine.kernels`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.aggregation import (
    AggregationOutput,
    run_aggregation,
    total_aggregation_rounds,
)
from repro.core.bfs import BFSOutput, run_bfs_construction, total_bfs_rounds
from repro.core.local_elimination import LocalEliminationOutput, run_local_elimination
from repro.core.rounds import guarantee_after_rounds, rounds_for_epsilon, rounds_for_gamma
from repro.core.surviving import SurvivingNumbers, run_compact_elimination
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph
from repro.obs import trace as obs_trace

#: Engine spellings accepted by :func:`weak_densest_subsets`.
REFERENCE_DENSEST_ENGINES = ("faithful", "simulation", "reference")
ARRAY_DENSEST_ENGINES = ("array", "vectorized")


@dataclass
class WeakDensestResult:
    """Output of the weak-densest-subset pipeline."""

    subsets: Dict[Hashable, frozenset]          #: leader id -> reported subset members
    reported_densities: Dict[Hashable, float]   #: leader id -> density announced by the root
    actual_densities: Dict[Hashable, float]     #: leader id -> density recomputed on the graph
    node_assignment: Dict[Hashable, Optional[Hashable]]  #: node -> leader id (None if unassigned)
    surviving: SurvivingNumbers                 #: the Phase-1 result
    rounds_total: int                           #: total synchronous rounds over all phases
    rounds_per_phase: Dict[str, int]            #: breakdown of the round budget
    messages_total: int                         #: total point-to-point messages
    gamma: float                                #: the approximation factor targeted
    phase1_reused: bool = False                 #: Phase 1 served from a precomputed
                                                #: trajectory; ``messages_total`` then
                                                #: covers phases 2-4 only
    engine: str = "faithful"                    #: which phases-2-4 implementation ran
                                                #: (``"faithful"`` or ``"array"``)

    @property
    def best_leader(self) -> Optional[Hashable]:
        """Leader of the subset with the largest *recomputed* density.

        Density ties are broken by :func:`~repro.utils.ordering.stable_node_order`
        (the earliest leader in the stable order wins), never by dict insertion
        order — so the faithful and array paths, whose collection orders differ,
        report the same leader.
        """
        if not self.actual_densities:
            return None
        from repro.utils.ordering import stable_node_order

        best = None
        for leader in stable_node_order(self.actual_densities):
            if best is None or self.actual_densities[leader] > self.actual_densities[best]:
                best = leader
        return best

    @property
    def best_density(self) -> float:
        """Largest recomputed density over the reported subsets (0.0 if none)."""
        if not self.actual_densities:
            return 0.0
        return max(self.actual_densities.values())

    def subsets_are_disjoint(self) -> bool:
        """Definition IV.1 sanity check: the reported subsets are pairwise disjoint."""
        seen: set = set()
        for members in self.subsets.values():
            if seen & members:
                return False
            seen |= members
        return True

    def to_dict(self) -> dict:
        """JSON-serializable form (uniform result protocol of :mod:`repro.problems`)."""
        from repro.utils.ordering import stable_node_order
        from repro.utils.serialize import json_node

        best = self.best_leader
        subsets = []
        for leader in stable_node_order(self.subsets):
            members = self.subsets[leader]
            subsets.append({
                "leader": json_node(leader),
                "size": len(members),
                "reported_density": self.reported_densities.get(leader),
                "actual_density": self.actual_densities.get(leader),
                "members": [json_node(v) for v in stable_node_order(members)],
            })
        return {
            "problem": "densest",
            "gamma": self.gamma,
            "engine": self.engine,
            "phase1_reused": self.phase1_reused,
            "rounds_total": self.rounds_total,
            "rounds_per_phase": dict(self.rounds_per_phase),
            "messages_total": self.messages_total,
            "best_density": self.best_density,
            "best_leader": json_node(best) if best is not None else None,
            "num_subsets": len(self.subsets),
            "subsets_disjoint": self.subsets_are_disjoint(),
            "subsets": subsets,
        }


def _collect_reference_outputs(agg_outputs: Dict[Hashable, "AggregationOutput"],
                               ) -> Tuple[Dict[Hashable, set], Dict[Hashable, float],
                                          Dict[Hashable, Optional[Hashable]]]:
    """Assemble ``(subsets, reported, node_assignment)`` from Phase-4 outputs.

    Every node of a tree that learned the root's decision must report the same
    density — the root announced one value and the flood forwards it verbatim.
    A disagreement means the protocol (or a future refactor of it) corrupted
    the flood, so it raises instead of being silently masked by last-write-wins
    dict insertion.
    """
    subsets: Dict[Hashable, set] = {}
    reported: Dict[Hashable, float] = {}
    node_assignment: Dict[Hashable, Optional[Hashable]] = {}
    for v, out in agg_outputs.items():
        node_assignment[v] = out.leader_id if out.sigma == 1 else None
        if out.sigma == 1:
            subsets.setdefault(out.leader_id, set()).add(v)
        if out.density is not None:
            previous = reported.get(out.leader_id)
            if previous is not None and previous != out.density:
                raise AlgorithmError(
                    f"inconsistent reported density for tree {out.leader_id!r}: "
                    f"{previous!r} vs {out.density!r} (node {v!r})")
            reported[out.leader_id] = out.density
    return subsets, reported, node_assignment


def _phase1_values_array(surviving: SurvivingNumbers, csr: CSRAdjacency) -> np.ndarray:
    """The Phase-1 surviving numbers as a float64 vector aligned with the CSR ids."""
    trajectory = surviving.trajectory
    if (trajectory is not None and surviving.node_order == csr.labels()
            and trajectory.shape[0] > surviving.rounds):
        return np.ascontiguousarray(trajectory[surviving.rounds], dtype=np.float64)
    values = surviving.values
    return np.array([values[label] for label in csr.labels()], dtype=np.float64)


def _array_phases(graph: Graph, surviving: SurvivingNumbers, T: int, factor: float,
                  csr: Optional[CSRAdjacency],
                  ) -> Tuple[Dict[Hashable, set], Dict[Hashable, float],
                             Dict[Hashable, Optional[Hashable]]]:
    """Phases 2-4 on the CSR kernels of :mod:`repro.engine.densest_kernels`."""
    from repro.engine.densest_kernels import densest_phases
    from repro.graph.csr import graph_to_csr

    if csr is None:
        csr = graph_to_csr(graph)
    labels = csr.labels()
    values = _phase1_values_array(surviving, csr)
    forest, num, _deg, decision = densest_phases(csr, values, T, factor)

    subsets: Dict[Hashable, set] = {}
    node_assignment: Dict[Hashable, Optional[Hashable]] = {
        label: None for label in labels}
    for i in np.flatnonzero(decision.sigma):
        member = labels[i]
        leader = labels[forest.leader[i]]
        node_assignment[member] = leader
        subsets.setdefault(leader, set()).add(member)
    # Accepted roots are their own leaders, and each accepted tree had at least
    # one member surviving its chosen round — so these keys match ``subsets``.
    reported = {labels[root]: float(decision.density[root])
                for root in np.flatnonzero(decision.t_star >= 0)}
    return subsets, reported, node_assignment


def weak_densest_subsets(graph: Graph, *, epsilon: Optional[float] = None,
                         gamma: Optional[float] = None, rounds: Optional[int] = None,
                         acceptance_factor: Optional[float] = None,
                         phase1: Optional[SurvivingNumbers] = None,
                         engine: Optional[str] = None,
                         csr: Optional[CSRAdjacency] = None,
                         ) -> WeakDensestResult:
    """Run the Theorem I.3 pipeline.

    Exactly one of ``epsilon`` (targets ``γ = 2(1+ε)``), ``gamma`` (``γ > 2``) or
    ``rounds`` (explicit ``T``) must be provided; the others are derived.

    Parameters
    ----------
    acceptance_factor:
        The divisor in Algorithm 6's acceptance test ``b_max >= b_v / acceptance_factor``.
        Defaults to the derived γ (the analysis-supported choice — see
        :mod:`repro.core.aggregation` for why the literal paper condition is not used).
    phase1:
        Optional precomputed Phase-1 :class:`~repro.core.surviving.SurvivingNumbers`
        for the *same* graph, λ = 0 and the same round budget — typically a
        session's cached λ=0 trajectory.  Skips Phase-1 execution; the result's
        ``messages_total`` then covers phases 2-4 only and ``phase1_reused`` is
        set.  Use only when Phase-1 message accounting is not needed.  With
        integer/dyadic edge weights every engine computes bit-identical
        surviving numbers, so phases 2-4 are unchanged; arbitrary float weights
        carry the last-ulp caveat of :mod:`repro.engine.kernels`.
    engine:
        ``"faithful"`` (default) runs phases 2-4 as per-node protocols on the
        synchronous simulator, with round/message accounting; ``"array"`` runs
        them as batched CSR kernels (see the module docstring), in which case
        Phase 1 — unless supplied via ``phase1`` — runs on the vectorised
        engine, ``messages_total`` is 0 and ``rounds_per_phase`` reports the
        nominal budgets.
    csr:
        Optional prebuilt CSR view of ``graph`` (e.g. a session's cached one);
        only consulted by the array engine, which otherwise builds its own.
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("the weak densest subset problem needs a non-empty graph")
    resolved_engine = "faithful" if engine is None else str(engine)
    if resolved_engine in REFERENCE_DENSEST_ENGINES:
        use_array = False
    elif resolved_engine in ARRAY_DENSEST_ENGINES:
        use_array = True
    else:
        raise AlgorithmError(
            f"unknown densest engine {engine!r}; expected one of "
            f"{REFERENCE_DENSEST_ENGINES + ARRAY_DENSEST_ENGINES}")
    n = graph.num_nodes
    provided = [p is not None for p in (epsilon, gamma, rounds)]
    if sum(provided) != 1:
        raise AlgorithmError("provide exactly one of epsilon, gamma or rounds")
    if epsilon is not None:
        T = rounds_for_epsilon(n, epsilon)
    elif gamma is not None:
        T = rounds_for_gamma(n, gamma)
    else:
        T = int(rounds)  # type: ignore[arg-type]
        if T < 1:
            raise AlgorithmError(f"rounds must be >= 1, got {rounds}")
    derived_gamma = guarantee_after_rounds(n, T)
    factor = acceptance_factor if acceptance_factor is not None else derived_gamma

    # Phase 1: surviving numbers (or a caller-supplied precomputed result).
    run1 = None
    if phase1 is not None:
        if phase1.rounds != T:
            raise AlgorithmError(
                f"precomputed phase1 ran {phase1.rounds} rounds, but this request "
                f"resolves to T={T}")
        if not phase1.grid.is_exact:
            raise AlgorithmError(
                "precomputed phase1 must use the exact grid (lam=0); got "
                f"lam={phase1.grid.lam}")
        if set(phase1.values) != set(graph.nodes()):
            raise AlgorithmError(
                "precomputed phase1 does not cover the nodes of this graph")
        surviving = phase1
    elif use_array:
        from repro.engine.base import get_engine

        surviving = get_engine("vectorized").run(graph, T, lam=0.0,
                                                 track_kept=False, csr=csr)
    else:
        surviving, run1 = run_compact_elimination(graph, T, lam=0.0, track_kept=False)

    if use_array:
        with obs_trace.span("densest.phases", engine="array", T=T, n=n):
            subsets, reported, node_assignment = _array_phases(
                graph, surviving, T, factor, csr)
        rounds_per_phase = {
            "phase1_surviving": T,
            "phase2_bfs": total_bfs_rounds(T),
            "phase3_local_elimination": T,
            "phase4_aggregation": total_aggregation_rounds(T),
        }
        messages_total = 0
    else:
        with obs_trace.span("densest.phases", engine="faithful", T=T, n=n):
            # Phase 2: BFS forest.
            bfs_outputs, run2 = run_bfs_construction(graph, surviving.values, T)
            # Phase 3: per-tree elimination.
            local_outputs, run3 = run_local_elimination(graph, bfs_outputs, T)
            # Phase 4: aggregation + decision.
            agg_outputs, run4 = run_aggregation(graph, bfs_outputs,
                                                local_outputs, factor, T)
        subsets, reported, node_assignment = _collect_reference_outputs(agg_outputs)
        rounds_per_phase = {
            "phase1_surviving": run1.stats.num_rounds if run1 is not None else T,
            "phase2_bfs": run2.stats.num_rounds,
            "phase3_local_elimination": run3.stats.num_rounds,
            "phase4_aggregation": run4.stats.num_rounds,
        }
        messages_total = sum(run.stats.total_messages
                             for run in (run1, run2, run3, run4) if run is not None)

    actual = {leader: graph.subset_density(members)
              for leader, members in subsets.items() if members}

    return WeakDensestResult(
        subsets={k: frozenset(v) for k, v in subsets.items()},
        reported_densities=reported,
        actual_densities=actual,
        node_assignment=node_assignment,
        surviving=surviving,
        rounds_total=sum(rounds_per_phase.values()),
        rounds_per_phase=rounds_per_phase,
        messages_total=messages_total,
        gamma=derived_gamma,
        phase1_reused=phase1 is not None,
        engine="array" if use_array else "faithful",
    )


def expected_total_rounds(num_nodes: int, epsilon: float) -> int:
    """Upper bound on the total round budget of the pipeline for given ``n`` and ``ε``.

    Useful for experiment tables: ``T`` (Phase 1) + ``T + 2`` (Phase 2) + ``T``
    (Phase 3) + ``2T + 4`` (Phase 4) = ``5T + 6`` rounds, i.e. ``O(log_{1+ε} n)``.
    """
    T = rounds_for_epsilon(num_nodes, epsilon)
    return T + total_bfs_rounds(T) + T + total_aggregation_rounds(T)
