"""Algorithm 4 — bounded-depth BFS forest construction (Phase 2 of Theorem I.3).

Each node starts as its own leader candidate ``(v, b_v)``; for ``T`` rounds every
node broadcasts the best leader it has heard of (under the total order ``⪰``:
larger surviving number first, then the globally known order on identities) and
adopts a better one, remembering through which neighbour it heard of it (its
``parent``).  Two extra rounds implement the paper's *Request Parent* / *Include
Children* / *Confirm Parent* steps: children announce themselves to their parent,
parents acknowledge the children that share their leader, and nodes whose parent
does not acknowledge them become **orphans** (``parent = None``).

Fact IV.2: for the node ``u`` that is globally maximal under ``⪰``, the resulting
tree rooted at ``u`` contains every node within ``T`` hops of ``u`` — which is the
only tree the densest-subset guarantee needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.distsim.message import Message
from repro.distsim.node import NodeContext, NodeProtocol, Outgoing
from repro.distsim.runner import ProtocolRun, run_protocol
from repro.errors import AlgorithmError
from repro.graph.graph import Graph

#: A leader candidate: (node identity, that node's surviving number).
Leader = Tuple[Hashable, float]


def leader_key(leader: Leader):
    """Sort key realising the paper's total order ``⪰`` on ``(v, b_v)`` pairs."""
    node, value = leader
    return (value, comparable_identity(node))


def comparable_identity(node: Hashable):
    """The globally known total order on node identities used by every tie-break.

    Identities of mixed types are ordered by type name first, then by ``repr``
    — note this is *string* order, so among integer labels ``9 ≻ 10``.  The
    array path (:func:`repro.engine.densest_kernels.identity_ranks`) bakes this
    exact order into its int64 ranks; the two must never diverge, or the BFS
    forests (and hence the reported subsets) drift between engines.
    """
    return (type(node).__name__, repr(node))


#: Backwards-compatible alias of :func:`comparable_identity`.
_comparable = comparable_identity


@dataclass(frozen=True)
class BFSOutput:
    """Per-node output of the BFS construction."""

    leader: Leader                       #: the adopted leader ``(u, b_u)``
    parent: Optional[Hashable]           #: parent in the tree; ``None`` for orphans
    children: Tuple[Hashable, ...]       #: confirmed children
    is_root: bool                        #: whether the node is the root of its tree

    @property
    def leader_id(self) -> Hashable:
        """Identity of the adopted leader."""
        return self.leader[0]

    @property
    def leader_value(self) -> float:
        """Surviving number of the adopted leader (the Phase-3 threshold)."""
        return self.leader[1]


# Message tags used after the T propagation rounds.
_REQUEST = "bfs-request"
_ACK = "bfs-ack"


class BFSConstructionProtocol(NodeProtocol):
    """Per-node logic of Algorithm 4.

    Parameters
    ----------
    context:
        Static node knowledge.
    own_value:
        The node's surviving number ``b_v`` from Phase 1.
    propagation_rounds:
        The number ``T`` of leader-propagation rounds; the protocol needs
        ``T + 2`` simulator rounds in total.
    """

    def __init__(self, context: NodeContext, own_value: float, propagation_rounds: int) -> None:
        super().__init__(context)
        if propagation_rounds < 1:
            raise AlgorithmError(f"propagation_rounds must be >= 1, got {propagation_rounds}")
        self.T = propagation_rounds
        self.leader: Leader = (context.node_id, float(own_value))
        self.parent: Optional[Hashable] = context.node_id
        self.children: list = []
        self.acknowledged = True  # roots and (initially) everyone count as acknowledged
        self._pending_requests: Dict[Hashable, Leader] = {}

    # ------------------------------------------------------------------ rounds
    def compose_message(self, round_index: int) -> Outgoing:
        if round_index <= self.T:
            return self.broadcast(("leader", self.leader[0], self.leader[1]))
        if round_index == self.T + 1:
            # Request Parent: announce ourselves to the chosen parent.
            if self.parent is not None and self.parent != self.context.node_id:
                return self.unicast((_REQUEST, self.leader[0], self.leader[1]), [self.parent])
            return None
        if round_index == self.T + 2:
            # Include Children + acknowledge them.
            accepted = [u for u, leader in self._pending_requests.items()
                        if leader == self.leader]
            self.children = accepted
            if accepted:
                return self.unicast((_ACK,), accepted)
            return None
        return None

    def receive(self, round_index: int, messages: Dict[Hashable, Message]) -> None:
        if round_index <= self.T:
            best_sender: Optional[Hashable] = None
            best_leader: Optional[Leader] = None
            for sender, message in messages.items():
                tag, leader_id, leader_value = message.payload
                if tag != "leader":
                    continue
                candidate: Leader = (leader_id, float(leader_value))
                if best_leader is None or leader_key(candidate) > leader_key(best_leader):
                    best_leader = candidate
                    best_sender = sender
                elif (leader_key(candidate) == leader_key(best_leader)
                      and comparable_identity(sender) > comparable_identity(best_sender)):
                    best_sender = sender
            if best_leader is not None and leader_key(best_leader) > leader_key(self.leader):
                self.leader = best_leader
                self.parent = best_sender
            if round_index == self.T:
                self.acknowledged = (self.parent == self.context.node_id)
            return
        if round_index == self.T + 1:
            for sender, message in messages.items():
                payload = message.payload
                if isinstance(payload, tuple) and payload and payload[0] == _REQUEST:
                    self._pending_requests[sender] = (payload[1], float(payload[2]))
            return
        if round_index == self.T + 2:
            for sender, message in messages.items():
                payload = message.payload
                if (isinstance(payload, tuple) and payload and payload[0] == _ACK
                        and sender == self.parent):
                    self.acknowledged = True
            # Confirm Parent: no acknowledgement → orphan.
            if self.parent != self.context.node_id and not self.acknowledged:
                self.parent = None
            self.halt()

    def output(self) -> BFSOutput:
        return BFSOutput(leader=self.leader, parent=self.parent,
                         children=tuple(self.children),
                         is_root=(self.parent == self.context.node_id))


def total_bfs_rounds(propagation_rounds: int) -> int:
    """Simulator rounds needed by Algorithm 4 (``T`` propagation + 2 bookkeeping)."""
    return propagation_rounds + 2


def run_bfs_construction(graph: Graph, values: Dict[Hashable, float],
                         propagation_rounds: int) -> Tuple[Dict[Hashable, BFSOutput], ProtocolRun]:
    """Run Algorithm 4 on the faithful simulator.

    ``values`` are the surviving numbers from Phase 1 (Algorithm 2).
    """
    missing = [v for v in graph.nodes() if v not in values]
    if missing:
        raise AlgorithmError(f"missing surviving numbers for nodes {missing[:5]!r}...")
    run = run_protocol(
        graph,
        lambda ctx: BFSConstructionProtocol(ctx, values[ctx.node_id], propagation_rounds),
        total_bfs_rounds(propagation_rounds),
    )
    return dict(run.outputs), run
