"""Algorithm 6 — in-tree aggregation and densest-round selection (Phase 4).

Within each BFS tree, the per-round activity/degree arrays of Algorithm 5 are summed
towards the root along tree edges (a node forwards its aggregate once it has heard
from all of its children).  The root then knows, for every round ``t``, the number
``num'[t]`` of surviving nodes and the sum ``deg'[t]`` of their restricted degrees —
hence the density ``deg'[t] / (2 · num'[t])`` of the surviving set ``A_t``
(Lemma IV.4).  It picks the densest round ``t*``, decides whether the resulting set
is good enough, and floods ``t*`` (and the winning density) back down the tree so
that every surviving member learns it belongs to the reported subset.

Acceptance-threshold note
-------------------------
Algorithm 6 line 10 reads "if ``b_max >= b_v``".  Taken literally this contradicts
Lemma IV.4 / Corollary IV.5 — even for a clique the best achievable density is about
``b_v / 2``, so the root would never report anything.  We implement the condition
the analysis supports, ``b_max >= b_v / γ`` (with ``γ = 2·n^(1/T)`` the Phase-1
guarantee), and flag the deviation here and in DESIGN.md.  Setting
``acceptance_factor`` to 1 restores the literal behaviour for ablation purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.bfs import BFSOutput
from repro.core.local_elimination import LocalEliminationOutput
from repro.distsim.message import Message
from repro.distsim.node import NodeContext, NodeProtocol, Outgoing
from repro.distsim.runner import ProtocolRun, run_protocol
from repro.errors import AlgorithmError
from repro.graph.graph import Graph

_AGG = "agg"
_TSTAR = "tstar"


@dataclass(frozen=True)
class AggregationOutput:
    """Per-node output of Algorithm 6."""

    sigma: int                        #: 1 if the node belongs to the reported subset
    leader_id: Hashable               #: the node's tree (subset) identity
    t_star: Optional[int]             #: the selected round (None if the tree reported nothing)
    density: Optional[float]          #: the density announced by the root (None if nothing)
    is_root: bool                     #: whether this node made the decision


class AggregationProtocol(NodeProtocol):
    """Per-node logic of Algorithm 6."""

    def __init__(self, context: NodeContext, bfs: BFSOutput,
                 local: LocalEliminationOutput, acceptance_factor: float,
                 max_rounds: int) -> None:
        super().__init__(context)
        if acceptance_factor <= 0:
            raise AlgorithmError(f"acceptance_factor must be positive, got {acceptance_factor}")
        self.bfs = bfs
        self.local = local
        self.acceptance_factor = acceptance_factor
        self.max_rounds = max_rounds
        self.children = set(bfs.children)
        self.pending_children = set(bfs.children)
        self.agg_num: List[float] = [float(x) for x in local.num]
        self.agg_deg: List[float] = [float(x) for x in local.deg]
        self.sent_up = False
        self.sigma = 0
        self.t_star: Optional[int] = None
        self.density: Optional[float] = None
        self._downstream_payload: Optional[tuple] = None
        self._decided = False

    # ------------------------------------------------------------------ helpers
    @property
    def is_root(self) -> bool:
        """Whether this node is the root of its BFS tree."""
        return self.bfs.is_root

    def _decide(self) -> None:
        """Root-only: pick the densest round and decide whether to report it."""
        best_t: Optional[int] = None
        best_density = -1.0
        for t, (num_t, deg_t) in enumerate(zip(self.agg_num, self.agg_deg)):
            if num_t <= 0:
                continue
            density = deg_t / (2.0 * num_t)
            if density > best_density:
                best_density = density
                best_t = t
        self._decided = True
        if best_t is None:
            return
        threshold = self.bfs.leader_value / self.acceptance_factor
        if best_density >= threshold:
            self.t_star = best_t
            self.density = best_density
            if best_t < len(self.local.num) and self.local.num[best_t] == 1:
                self.sigma = 1
            self._downstream_payload = (_TSTAR, best_t, best_density)

    # ------------------------------------------------------------------ rounds
    def compose_message(self, round_index: int) -> Outgoing:
        # Downstream flood of the decision takes precedence once available.
        if self._downstream_payload is not None and self.children:
            payload = self._downstream_payload
            self._downstream_payload = None
            return self.unicast(payload, list(self.children))
        # Upstream aggregation: send once all children have reported.
        if (not self.sent_up and not self.pending_children
                and self.bfs.parent is not None and not self.is_root):
            self.sent_up = True
            return self.unicast((_AGG, tuple(self.agg_num), tuple(self.agg_deg)),
                                [self.bfs.parent])
        return None

    def receive(self, round_index: int, messages: Dict[Hashable, Message]) -> None:
        for sender, message in messages.items():
            payload = message.payload
            if not isinstance(payload, tuple) or not payload:
                continue
            if payload[0] == _AGG and sender in self.pending_children:
                _, child_num, child_deg = payload
                self.agg_num = [a + b for a, b in zip(self.agg_num, child_num)]
                self.agg_deg = [a + b for a, b in zip(self.agg_deg, child_deg)]
                self.pending_children.discard(sender)
            elif payload[0] == _TSTAR and sender == self.bfs.parent:
                _, t_star, density = payload
                self.t_star = int(t_star)
                self.density = float(density)
                if self.t_star < len(self.local.num) and self.local.num[self.t_star] == 1:
                    self.sigma = 1
                if self.children:
                    self._downstream_payload = (_TSTAR, self.t_star, self.density)
                else:
                    self.halt()
        # Roots decide as soon as their aggregate is complete.
        if self.is_root and not self._decided and not self.pending_children:
            self._decide()
            if self._downstream_payload is None and not self.children:
                self.halt()
        # Orphans have nothing to do.
        if self.bfs.parent is None:
            self.halt()
        if round_index >= self.max_rounds:
            self.halt()

    def output(self) -> AggregationOutput:
        return AggregationOutput(sigma=self.sigma, leader_id=self.bfs.leader_id,
                                 t_star=self.t_star, density=self.density,
                                 is_root=self.is_root)


def total_aggregation_rounds(elimination_rounds: int) -> int:
    """A safe round budget for Algorithm 6 (up-sweep + down-sweep along depth-T trees)."""
    return 2 * elimination_rounds + 4


def run_aggregation(graph: Graph, bfs_outputs: Dict[Hashable, BFSOutput],
                    local_outputs: Dict[Hashable, LocalEliminationOutput],
                    acceptance_factor: float,
                    elimination_rounds: int) -> Tuple[Dict[Hashable, AggregationOutput], ProtocolRun]:
    """Run Algorithm 6 on the faithful simulator."""
    rounds = total_aggregation_rounds(elimination_rounds)
    run = run_protocol(
        graph,
        lambda ctx: AggregationProtocol(ctx, bfs_outputs[ctx.node_id],
                                        local_outputs[ctx.node_id],
                                        acceptance_factor, rounds),
        rounds,
    )
    return dict(run.outputs), run
