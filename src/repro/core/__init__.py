"""The paper's distributed algorithms (Algorithms 1-6) and the high-level API."""

from repro.core.aggregation import AggregationOutput, AggregationProtocol, run_aggregation
from repro.core.api import (
    CorenessResult,
    OrientationResult,
    approximate_coreness,
    approximate_densest_subsets,
    approximate_orientation,
)
from repro.core.bfs import (
    BFSConstructionProtocol,
    BFSOutput,
    comparable_identity,
    run_bfs_construction,
)
from repro.core.densest import WeakDensestResult, expected_total_rounds, weak_densest_subsets
from repro.core.elimination import (
    EliminationResult,
    SingleThresholdProtocol,
    b_core,
    eliminate_on_graph,
    eliminate_vectorized,
    run_single_threshold,
)
from repro.core.local_elimination import (
    LocalEliminationOutput,
    LocalEliminationProtocol,
    run_local_elimination,
)
from repro.core.orientation import (
    Orientation,
    canonical_edge,
    check_feasible,
    kept_sets_from_trajectory,
    kept_sets_from_trajectory_reference,
    orientation_from_kept,
    orientation_from_values_greedy,
)
from repro.core.rounding import LambdaGrid, grid_for_graph
from repro.core.rounds import (
    epsilon_for_rounds,
    guarantee_after_rounds,
    lower_bound_rounds,
    rounds_for_epsilon,
    rounds_for_gamma,
)
from repro.core.surviving import (
    CompactEliminationProtocol,
    SurvivingNumbers,
    SurvivingOutput,
    compact_elimination,
    run_compact_elimination,
    surviving_numbers_vectorized,
)
from repro.core.update import (
    UpdateResult,
    update_counting,
    update_naive,
    update_sorted,
    update_stable,
    update_value_only,
)

__all__ = [
    "AggregationOutput",
    "AggregationProtocol",
    "run_aggregation",
    "CorenessResult",
    "OrientationResult",
    "approximate_coreness",
    "approximate_densest_subsets",
    "approximate_orientation",
    "BFSConstructionProtocol",
    "BFSOutput",
    "comparable_identity",
    "run_bfs_construction",
    "WeakDensestResult",
    "expected_total_rounds",
    "weak_densest_subsets",
    "EliminationResult",
    "SingleThresholdProtocol",
    "b_core",
    "eliminate_on_graph",
    "eliminate_vectorized",
    "run_single_threshold",
    "LocalEliminationOutput",
    "LocalEliminationProtocol",
    "run_local_elimination",
    "Orientation",
    "canonical_edge",
    "check_feasible",
    "kept_sets_from_trajectory",
    "kept_sets_from_trajectory_reference",
    "orientation_from_kept",
    "orientation_from_values_greedy",
    "LambdaGrid",
    "grid_for_graph",
    "epsilon_for_rounds",
    "guarantee_after_rounds",
    "lower_bound_rounds",
    "rounds_for_epsilon",
    "rounds_for_gamma",
    "CompactEliminationProtocol",
    "SurvivingNumbers",
    "SurvivingOutput",
    "compact_elimination",
    "run_compact_elimination",
    "surviving_numbers_vectorized",
    "UpdateResult",
    "update_counting",
    "update_naive",
    "update_sorted",
    "update_stable",
    "update_value_only",
]
