"""Algorithm 1 — the elimination procedure for a single threshold.

Given a universal threshold ``b``, every node starts present (state 1); in each
synchronous round every node broadcasts its state and then removes itself (state 0)
if its weighted degree *restricted to surviving neighbours* is below ``b``.  After
``n`` rounds the surviving nodes are exactly the (weighted) ``b``-core.

Two implementations are provided:

* :class:`SingleThresholdProtocol` — the faithful per-node protocol executed on the
  :class:`~repro.distsim.network.SyncNetwork` simulator;
* :func:`eliminate_vectorized` — a NumPy engine producing the same per-round
  survival masks on a CSR view (used by large-scale experiments and by Phase 3 of
  the weak-densest-subset pipeline analysis).

Both also expose the *per-round history* of survivors because the densest-subset
analysis (Lemma IV.4) needs the surviving sets ``A_0 ⊇ A_1 ⊇ ... ⊇ A_T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.distsim.message import Message
from repro.distsim.node import NodeContext, NodeProtocol, Outgoing
from repro.distsim.runner import ProtocolRun, run_protocol
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency, graph_to_csr
from repro.graph.graph import Graph


class SingleThresholdProtocol(NodeProtocol):
    """Per-node logic of Algorithm 1.

    The node broadcasts its current state every round (also after removal — removed
    nodes keep participating so that neighbours can update their view; this matches
    Algorithm 1, where the state is broadcast unconditionally).
    """

    def __init__(self, context: NodeContext, threshold: float) -> None:
        super().__init__(context)
        self.threshold = float(threshold)
        self.state = 1
        #: last known state of each neighbour (everyone starts present).
        self.neighbor_states: Dict[Hashable, int] = {u: 1 for u in context.neighbor_weights}

    def compose_message(self, round_index: int) -> Outgoing:
        return self.broadcast(self.state)

    def receive(self, round_index: int, messages: Dict[Hashable, Message]) -> None:
        for sender, message in messages.items():
            self.neighbor_states[sender] = int(message.payload)
        if self.state == 0:
            return
        surviving_weight = sum(
            w for u, w in self.context.neighbor_weights.items()
            if self.neighbor_states.get(u, 1) == 1)
        surviving_weight += self.context.self_loop_weight
        if surviving_weight < self.threshold:
            self.state = 0

    def output(self) -> int:
        return self.state


@dataclass(frozen=True)
class EliminationResult:
    """Survivors of the single-threshold elimination procedure."""

    threshold: float
    rounds: int
    survivors: frozenset            #: nodes with state 1 after the last round
    history: Tuple[frozenset, ...]  #: survivors after round 0 (= all nodes), 1, ..., T

    def survived(self, node: Hashable) -> bool:
        """Whether ``node`` survived all rounds."""
        return node in self.survivors


def run_single_threshold(graph: Graph, threshold: float, rounds: int,
                         ) -> Tuple[EliminationResult, ProtocolRun]:
    """Run Algorithm 1 on the faithful simulator.

    Returns the :class:`EliminationResult` together with the raw
    :class:`~repro.distsim.runner.ProtocolRun` (message statistics etc.).
    """
    if rounds < 0:
        raise AlgorithmError(f"rounds must be non-negative, got {rounds}")
    history: List[frozenset] = [frozenset(graph.nodes())]

    run = _run_with_history(graph, threshold, rounds, history)
    survivors = frozenset(v for v, state in run.outputs.items() if state == 1)
    result = EliminationResult(threshold=float(threshold), rounds=rounds,
                               survivors=survivors, history=tuple(history))
    return result, run


def _run_with_history(graph: Graph, threshold: float, rounds: int,
                      history: List[frozenset]) -> ProtocolRun:
    from repro.distsim.network import SyncNetwork

    network = SyncNetwork(graph, lambda ctx: SingleThresholdProtocol(ctx, threshold))
    for _ in range(rounds):
        network.run_round()
        history.append(frozenset(v for v, p in network.protocols.items() if p.output() == 1))
    return ProtocolRun(outputs=network.outputs(), stats=network.stats, network=network)


def eliminate_vectorized(csr: CSRAdjacency, threshold: float, rounds: int) -> np.ndarray:
    """Vectorised Algorithm 1 on a CSR view.

    Returns a boolean array of shape ``(rounds + 1, n)``: row ``t`` is the survival
    mask after ``t`` rounds (row 0 is all-True).  Stops early (repeating the last
    row) once the mask stops changing, since the process is monotone.

    The per-round work is the shared kernel
    :func:`repro.engine.kernels.threshold_round_range` (here invoked over the
    whole node range; shard plans are supported through
    :func:`repro.engine.kernels.threshold_masks`).
    """
    from repro.engine.kernels import threshold_masks

    return threshold_masks(csr, threshold, rounds)


def eliminate_on_graph(graph: Graph, threshold: float, rounds: int) -> EliminationResult:
    """Vectorised Algorithm 1 returning node-labelled results (no simulator)."""
    csr = graph_to_csr(graph)
    masks = eliminate_vectorized(csr, threshold, rounds)
    labels = csr.labels()
    history = tuple(frozenset(labels[i] for i in np.flatnonzero(masks[t]))
                    for t in range(rounds + 1))
    return EliminationResult(threshold=float(threshold), rounds=rounds,
                             survivors=history[-1], history=history)


def b_core(graph: Graph, threshold: float) -> Set[Hashable]:
    """The exact (weighted) ``b``-core: run the elimination until it stabilises.

    Running Algorithm 1 for ``n`` rounds is always enough (each round either removes
    a node or the process has converged).
    """
    result = eliminate_on_graph(graph, threshold, max(1, graph.num_nodes))
    return set(result.survivors)
