"""Round-budget helpers (Theorem I.1 / Lemma III.3 arithmetic).

The paper's guarantees are parameterised by the number of synchronous rounds ``T``:

* after ``T`` rounds the surviving numbers are a ``2 · n^(1/T)``-approximation
  (:func:`guarantee_after_rounds`);
* to achieve a target ratio ``γ > 2`` it suffices to run
  ``T = ⌈log n / log(γ/2)⌉`` rounds (:func:`rounds_for_gamma`);
* the common parametrisation ``γ = 2(1+ε)`` gives ``T = ⌈log_{1+ε} n⌉``
  (:func:`rounds_for_epsilon`).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import AlgorithmError


def rounds_for_epsilon(num_nodes: int, epsilon: float) -> int:
    """``T = ⌈log_{1+ε} n⌉`` — rounds needed for a ``2(1+ε)``-approximation.

    ``num_nodes`` may be an upper bound on ``n`` (the paper only assumes each node
    knows such a bound).  For ``n <= 1`` a single round suffices.
    """
    if epsilon <= 0:
        raise AlgorithmError(f"epsilon must be positive, got {epsilon}")
    if num_nodes < 1:
        raise AlgorithmError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_nodes == 1:
        return 1
    return max(1, math.ceil(math.log(num_nodes) / math.log(1.0 + epsilon)))


def rounds_for_gamma(num_nodes: int, gamma: float) -> int:
    """``T = ⌈log n / log(γ/2)⌉`` — rounds needed for a ``γ``-approximation (γ > 2)."""
    if gamma <= 2:
        raise AlgorithmError(
            f"the guarantee requires gamma > 2 (Lemma III.13 forbids gamma < 2 in o(n) "
            f"rounds); got {gamma}")
    if num_nodes < 1:
        raise AlgorithmError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_nodes == 1:
        return 1
    return max(1, math.ceil(math.log(num_nodes) / math.log(gamma / 2.0)))


def resolve_round_budget(num_nodes: int, epsilon: Optional[float] = None,
                         gamma: Optional[float] = None,
                         rounds: Optional[int] = None) -> int:
    """Resolve the paper's parametrisation to an explicit round budget ``T``.

    Exactly one of ``epsilon`` (γ = 2(1+ε)), ``gamma`` (γ > 2) or ``rounds`` must
    be provided; this is the single resolver behind the public API and the batch
    runner, so the exception types and messages are identical everywhere.
    """
    provided = [p is not None for p in (epsilon, gamma, rounds)]
    if sum(provided) != 1:
        raise AlgorithmError("provide exactly one of epsilon, gamma or rounds")
    if epsilon is not None:
        return rounds_for_epsilon(num_nodes, epsilon)
    if gamma is not None:
        return rounds_for_gamma(num_nodes, gamma)
    assert rounds is not None
    if rounds < 1:
        raise AlgorithmError(f"rounds must be >= 1, got {rounds}")
    return int(rounds)


def guarantee_after_rounds(num_nodes: int, rounds: int) -> float:
    """The approximation factor ``2 · n^(1/T)`` guaranteed after ``rounds`` rounds."""
    if rounds < 1:
        raise AlgorithmError(f"rounds must be >= 1, got {rounds}")
    if num_nodes < 1:
        raise AlgorithmError(f"num_nodes must be >= 1, got {num_nodes}")
    return 2.0 * (num_nodes ** (1.0 / rounds))


def epsilon_for_rounds(num_nodes: int, rounds: int) -> float:
    """The ε such that ``rounds`` rounds give a ``2(1+ε)``-approximation.

    Inverse of :func:`rounds_for_epsilon` up to ceiling effects:
    ``ε = n^(1/T) - 1``.
    """
    return guarantee_after_rounds(num_nodes, rounds) / 2.0 - 1.0


def lower_bound_rounds(num_nodes: int, gamma: float) -> float:
    """The ``Ω(log n / log γ)`` lower bound of Lemma III.13 (returned as a float).

    This is the *asymptotic* bound; the constant realised by the explicit
    construction in :mod:`repro.graph.generators.lowerbound` is the depth of the
    γ-ary tree.
    """
    if gamma < 2:
        raise AlgorithmError(f"the lower bound is stated for gamma >= 2, got {gamma}")
    if num_nodes < 2:
        return 0.0
    return math.log(num_nodes) / math.log(max(gamma, 2.0))
