"""High-level public API for the paper's three problems.

These functions are what the examples and benchmarks use; they wrap the lower-level
protocol/engine machinery with the paper's parametrisation (ε or γ or an explicit
round budget ``T``) and return self-describing result objects.

* :func:`approximate_coreness` — Theorem I.1: per-node ``2(1+ε)``-approximate
  coreness values / maximal densities;
* :func:`approximate_orientation` — Theorem I.2: a feasible edge orientation with
  ``2(1+ε)``-approximate maximum weighted in-degree;
* :func:`approximate_densest_subsets` — Theorem I.3: the weak densest subset
  collection of Definition IV.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.core.densest import WeakDensestResult, weak_densest_subsets
from repro.core.orientation import Orientation, orientation_from_kept
from repro.core.rounds import guarantee_after_rounds, resolve_round_budget
from repro.core.surviving import SurvivingNumbers, compact_elimination
from repro.engine.base import EngineLike
from repro.errors import AlgorithmError
from repro.graph.graph import Graph


def _resolve_rounds(num_nodes: int, epsilon: Optional[float], gamma: Optional[float],
                    rounds: Optional[int]) -> int:
    """Resolve the (ε | γ | T) parametrisation; see
    :func:`repro.core.rounds.resolve_round_budget` for the contract."""
    return resolve_round_budget(num_nodes, epsilon, gamma, rounds)


@dataclass
class CorenessResult:
    """Approximate coreness / maximal-density values for every node."""

    values: Dict[Hashable, float]   #: the surviving numbers ``b_v``
    rounds: int                     #: rounds executed
    guarantee: float                #: proven factor ``2·n^(1/T)`` (modulo the 1+λ slack)
    lam: float                      #: the Λ-grid parameter used
    surviving: SurvivingNumbers     #: full lower-level result (trajectory, kept sets...)

    def value_of(self, node: Hashable) -> float:
        """Approximate coreness of ``node`` (an upper bound on the true coreness)."""
        return self.values[node]

    def top_nodes(self, k: int) -> Tuple[Hashable, ...]:
        """The ``k`` nodes with the largest approximate coreness (descending)."""
        ranked = sorted(self.values, key=lambda v: (-self.values[v], repr(v)))
        return tuple(ranked[:k])


def approximate_coreness(graph: Graph, *, epsilon: Optional[float] = None,
                         gamma: Optional[float] = None, rounds: Optional[int] = None,
                         lam: float = 0.0,
                         engine: EngineLike = "vectorized") -> CorenessResult:
    """Theorem I.1: approximate every node's coreness (and maximal density).

    Exactly one of ``epsilon`` (γ = 2(1+ε)), ``gamma`` (γ > 2) or ``rounds`` must be
    given.  The returned values satisfy
    ``c(v)/(1+λ) <= b_v <= 2·n^(1/T)·(coreness or maximal density of v)``.

    Parameters
    ----------
    lam:
        Λ-grid parameter for message-size reduction (0 = exact values).
    engine:
        Anything :func:`repro.engine.get_engine` resolves: an engine instance,
        ``"vectorized"`` (NumPy, fast — the default), ``"faithful"`` (alias
        ``"simulation"``: per-node protocol with message statistics), or
        ``"sharded"`` / ``"sharded:4"`` (bounded-memory shard-by-shard kernels).
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("approximate_coreness needs a non-empty graph")
    T = _resolve_rounds(graph.num_nodes, epsilon, gamma, rounds)
    surv = compact_elimination(graph, T, lam=lam, engine=engine, track_kept=False)
    return CorenessResult(values=dict(surv.values), rounds=T,
                          guarantee=guarantee_after_rounds(graph.num_nodes, T),
                          lam=lam, surviving=surv)


@dataclass
class OrientationResult:
    """Approximate min-max edge orientation."""

    orientation: Orientation        #: the explicit edge assignment
    values: Dict[Hashable, float]   #: the surviving numbers that produced it
    rounds: int                     #: rounds executed
    guarantee: float                #: proven factor ``2·n^(1/T)``

    @property
    def max_in_weight(self) -> float:
        """The achieved objective (maximum weighted in-degree)."""
        return self.orientation.max_in_weight


def approximate_orientation(graph: Graph, *, epsilon: Optional[float] = None,
                            gamma: Optional[float] = None, rounds: Optional[int] = None,
                            engine: EngineLike = "vectorized",
                            tie_break: str = "history") -> OrientationResult:
    """Theorem I.2: compute a ``2·n^(1/T)``-approximate min-max edge orientation.

    Runs Algorithm 2 with ``Λ = R`` (required by Lemma III.11), collects the
    auxiliary subsets ``N_v`` and materialises the orientation, resolving the rare
    both-endpoints conflicts deterministically.  ``engine`` is resolved through
    the registry exactly as in :func:`approximate_coreness`.
    """
    if graph.num_nodes == 0:
        raise AlgorithmError("approximate_orientation needs a non-empty graph")
    T = _resolve_rounds(graph.num_nodes, epsilon, gamma, rounds)
    surv = compact_elimination(graph, T, lam=0.0, engine=engine, track_kept=True,
                               tie_break=tie_break)
    orientation = orientation_from_kept(graph, surv.kept, values=surv.values)
    return OrientationResult(orientation=orientation, values=dict(surv.values), rounds=T,
                             guarantee=guarantee_after_rounds(graph.num_nodes, T))


def approximate_densest_subsets(graph: Graph, *, epsilon: Optional[float] = None,
                                gamma: Optional[float] = None,
                                rounds: Optional[int] = None) -> WeakDensestResult:
    """Theorem I.3: the weak densest subset collection (Definition IV.1).

    Thin wrapper over :func:`repro.core.densest.weak_densest_subsets`.
    """
    return weak_densest_subsets(graph, epsilon=epsilon, gamma=gamma, rounds=rounds)
