"""High-level one-shot API for the paper's three problems.

These free functions are thin wrappers that build a throwaway
:class:`repro.session.Session` for a single request; they are kept (and remain
fully supported) for scripts and notebooks that touch a graph exactly once.
Anything that issues *repeated* requests — servers, sweeps, benchmarks — should
hold a ``Session`` (or route through :class:`repro.engine.batch.BatchRunner`)
instead: the session owns the CSR view and Λ-grids, caches results, and resumes
cached elimination trajectories when the round budget grows, none of which a
one-shot call can amortise.

* :func:`approximate_coreness` — Theorem I.1: per-node ``2(1+ε)``-approximate
  coreness values / maximal densities;
* :func:`approximate_orientation` — Theorem I.2: a feasible edge orientation with
  ``2(1+ε)``-approximate maximum weighted in-degree;
* :func:`approximate_densest_subsets` — Theorem I.3: the weak densest subset
  collection of Definition IV.1.

The result dataclasses (shared with the session / problem-registry layer) all
implement the uniform ``to_dict()`` JSON protocol of :mod:`repro.problems`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.core.densest import WeakDensestResult
from repro.core.orientation import Orientation
from repro.core.surviving import SurvivingNumbers
from repro.engine.base import EngineLike
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.utils.ordering import rank_by_value
from repro.utils.serialize import json_node, json_value_pairs


@dataclass
class CorenessResult:
    """Approximate coreness / maximal-density values for every node."""

    values: Dict[Hashable, float]   #: the surviving numbers ``b_v``
    rounds: int                     #: rounds executed
    guarantee: float                #: proven factor ``2·n^(1/T)`` (modulo the 1+λ slack)
    lam: float                      #: the Λ-grid parameter used
    surviving: Optional[SurvivingNumbers] = None  #: full lower-level result
                                                  #: (trajectory, kept sets...)

    def value_of(self, node: Hashable) -> float:
        """Approximate coreness of ``node`` (an upper bound on the true coreness)."""
        return self.values[node]

    def top_nodes(self, k: int) -> Tuple[Hashable, ...]:
        """The ``k`` nodes with the largest approximate coreness (descending).

        Ties are broken by the ascending natural order of the nodes themselves
        (so integer nodes rank numerically: 9 before 10), falling back to the
        lexicographic order of ``repr(node)`` only when the node set mixes
        unorderable types — see :func:`repro.utils.ordering.rank_by_value`.
        """
        return tuple(rank_by_value(self.values)[:k])

    @property
    def max_value(self) -> float:
        """The largest surviving number (the batch/CLI objective)."""
        return max(self.values.values()) if self.values else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (uniform result protocol of :mod:`repro.problems`)."""
        return {
            "problem": "coreness",
            "rounds": self.rounds,
            "guarantee": self.guarantee,
            "lam": self.lam,
            "num_nodes": len(self.values),
            "max_value": self.max_value,
            "values": json_value_pairs(self.values),
        }


def approximate_coreness(graph: Graph, *, epsilon: Optional[float] = None,
                         gamma: Optional[float] = None, rounds: Optional[int] = None,
                         lam: float = 0.0,
                         engine: EngineLike = "vectorized") -> CorenessResult:
    """Theorem I.1: approximate every node's coreness (and maximal density).

    Exactly one of ``epsilon`` (γ = 2(1+ε)), ``gamma`` (γ > 2) or ``rounds`` must be
    given.  The returned values satisfy
    ``c(v)/(1+λ) <= b_v <= 2·n^(1/T)·(coreness or maximal density of v)``.

    One-shot wrapper over :meth:`repro.session.Session.coreness`; hold a
    ``Session`` instead when issuing repeated requests on the same graph.

    Parameters
    ----------
    lam:
        Λ-grid parameter for message-size reduction (0 = exact values).
    engine:
        Anything :func:`repro.engine.get_engine` resolves: an engine instance,
        ``"vectorized"`` (NumPy, fast — the default), ``"faithful"`` (alias
        ``"simulation"``: per-node protocol with message statistics), or
        ``"sharded"`` / ``"sharded:4"`` (bounded-memory shard-by-shard kernels).
    """
    from repro.session import Session

    if graph.num_nodes == 0:
        raise AlgorithmError("approximate_coreness needs a non-empty graph")
    session = Session(graph, engine=engine, lam=lam)
    return session.coreness(epsilon=epsilon, gamma=gamma, rounds=rounds)


@dataclass
class OrientationResult:
    """Approximate min-max edge orientation."""

    orientation: Orientation        #: the explicit edge assignment
    values: Dict[Hashable, float]   #: the surviving numbers that produced it
    rounds: int                     #: rounds executed
    guarantee: float                #: proven factor ``2·n^(1/T)``
    surviving: Optional[SurvivingNumbers] = None  #: full lower-level result

    @property
    def max_in_weight(self) -> float:
        """The achieved objective (maximum weighted in-degree)."""
        return self.orientation.max_in_weight

    def to_dict(self) -> dict:
        """JSON-serializable form (uniform result protocol of :mod:`repro.problems`)."""
        return {
            "problem": "orientation",
            "rounds": self.rounds,
            "guarantee": self.guarantee,
            "max_in_weight": self.max_in_weight,
            "conflicts": self.orientation.conflicts,
            "violations": self.orientation.violations,
            "assignment": [[json_node(u), json_node(v), json_node(owner)]
                           for (u, v), owner in self.orientation.assignment.items()],
            "in_weight": json_value_pairs(self.orientation.in_weight),
        }


def approximate_orientation(graph: Graph, *, epsilon: Optional[float] = None,
                            gamma: Optional[float] = None, rounds: Optional[int] = None,
                            engine: EngineLike = "vectorized",
                            tie_break: str = "history") -> OrientationResult:
    """Theorem I.2: compute a ``2·n^(1/T)``-approximate min-max edge orientation.

    Runs Algorithm 2 with ``Λ = R`` (required by Lemma III.11), collects the
    auxiliary subsets ``N_v`` and materialises the orientation, resolving the rare
    both-endpoints conflicts deterministically.  ``engine`` is resolved through
    the registry exactly as in :func:`approximate_coreness`.  One-shot wrapper
    over :meth:`repro.session.Session.orientation`.
    """
    from repro.session import Session

    if graph.num_nodes == 0:
        raise AlgorithmError("approximate_orientation needs a non-empty graph")
    session = Session(graph, engine=engine)
    return session.orientation(epsilon=epsilon, gamma=gamma, rounds=rounds,
                               tie_break=tie_break)


def approximate_densest_subsets(graph: Graph, *, epsilon: Optional[float] = None,
                                gamma: Optional[float] = None,
                                rounds: Optional[int] = None,
                                engine: Optional[str] = None) -> WeakDensestResult:
    """Theorem I.3: the weak densest subset collection (Definition IV.1).

    One-shot wrapper over :meth:`repro.session.Session.densest` (which delegates
    to :func:`repro.core.densest.weak_densest_subsets`).  ``engine`` selects the
    phases-2-4 implementation: the faithful simulator by default, the batched
    CSR kernels with ``engine="array"``.
    """
    from repro.session import Session

    if graph.num_nodes == 0:
        raise AlgorithmError("the weak densest subset problem needs a non-empty graph")
    session = Session(graph)
    return session.densest(epsilon=epsilon, gamma=gamma, rounds=rounds, engine=engine)
