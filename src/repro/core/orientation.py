"""Min-max edge orientation from the auxiliary subsets ``N_v`` (Theorem I.2).

After the compact elimination procedure (Algorithm 2 with ``Λ = R``) every node ``v``
holds a subset ``N_v`` of its neighbours.  The paper's invariants (Definition III.7,
proved in Lemma III.11) are:

1. ``Σ_{u ∈ N_v} w(u, v) <= b_v`` — the load a node accepts never exceeds its
   surviving number;
2. for every edge ``{u, v}``: ``u ∈ N_v`` or ``v ∈ N_u`` — every edge has at least
   one endpoint willing to take it.

Orienting every edge towards an endpoint whose auxiliary subset contains the other
endpoint therefore yields a feasible orientation whose maximum weighted in-degree is
at most ``max_v b_v``-bounded *per node*, hence (Lemma III.3 + weak LP duality) a
``2·n^(1/T)``-approximation of the optimum.  Conflicts — edges claimed by both
endpoints — are resolved with one extra conceptual round, as the paper notes; any
resolution preserves the guarantee because dropping load only helps.

This module turns the ``N_v`` sets (or a surviving-number trajectory from the
vectorised engine) into an explicit :class:`Orientation` and evaluates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.update import update_sorted, update_stable
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph

EdgeKey = Tuple[Hashable, Hashable]


def canonical_edge(u: Hashable, v: Hashable) -> EdgeKey:
    """A canonical (order-independent) key for the undirected edge ``{u, v}``."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class Orientation:
    """An assignment of every (non-loop) edge to one of its endpoints.

    ``assignment[e] = v`` means edge ``e`` is oriented *towards* ``v`` (``v`` pays
    its weight in the min-max objective).  Self-loops are charged to their single
    endpoint and recorded in ``loop_weight``.
    """

    assignment: Dict[EdgeKey, Hashable]
    in_weight: Dict[Hashable, float]
    conflicts: int = 0        #: edges claimed by both endpoints (resolved arbitrarily)
    violations: int = 0       #: edges claimed by neither endpoint (invariant 2 failures)
    loop_weight: Dict[Hashable, float] = field(default_factory=dict)

    @property
    def max_in_weight(self) -> float:
        """The objective value: the maximum weighted in-degree over all nodes."""
        if not self.in_weight:
            return 0.0
        return max(self.in_weight.values())

    def owner(self, u: Hashable, v: Hashable) -> Hashable:
        """The endpoint that edge ``{u, v}`` is assigned to."""
        return self.assignment[canonical_edge(u, v)]


def orientation_from_kept(graph: Graph, kept: Dict[Hashable, Sequence[Hashable]],
                          values: Optional[Dict[Hashable, float]] = None) -> Orientation:
    """Build an :class:`Orientation` from the per-node auxiliary subsets.

    Parameters
    ----------
    graph:
        The input graph.
    kept:
        ``N_v`` per node, as produced by Algorithm 2 with ``Λ = R``.
    values:
        Optional surviving numbers; used only to resolve pathological edges claimed
        by *neither* endpoint (which Lemma III.11 rules out for the faithful
        protocol, but which can occur in the A1/E5 ablations): such an edge is
        assigned to the endpoint with the larger surviving number, falling back to a
        deterministic identity-based choice.

    Notes
    -----
    Conflicts (both endpoints claim the edge) are resolved towards the endpoint with
    the currently *smaller* accumulated in-weight — a deterministic stand-in for the
    paper's "one more round of communication"; either choice preserves the
    approximation guarantee.
    """
    kept_sets = {v: set(neighbors) for v, neighbors in kept.items()}
    in_weight: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes()}
    loop_weight: Dict[Hashable, float] = {}
    assignment: Dict[EdgeKey, Hashable] = {}
    conflicts = 0
    violations = 0

    for u, v, w in graph.edges():
        if u == v:
            loop_weight[u] = loop_weight.get(u, 0.0) + w
            in_weight[u] += w
            continue
        u_claims = v in kept_sets.get(u, ())   # u accepts the edge (v ∈ N_u)
        v_claims = u in kept_sets.get(v, ())   # v accepts the edge (u ∈ N_v)
        if u_claims and v_claims:
            conflicts += 1
            owner = u if in_weight[u] <= in_weight[v] else v
        elif u_claims:
            owner = u
        elif v_claims:
            owner = v
        else:
            violations += 1
            if values is not None:
                owner = u if values.get(u, 0.0) >= values.get(v, 0.0) else v
            else:
                owner = canonical_edge(u, v)[0]
        assignment[canonical_edge(u, v)] = owner
        in_weight[owner] += w

    return Orientation(assignment=assignment, in_weight=in_weight, conflicts=conflicts,
                       violations=violations, loop_weight=loop_weight)


def kept_sets_from_trajectory(csr: CSRAdjacency, trajectory: np.ndarray, *,
                              tie_break: str = "history",
                              ) -> Dict[Hashable, Tuple[Hashable, ...]]:
    """Recover the final-round auxiliary subsets from a surviving-number trajectory.

    The vectorised engine only tracks surviving numbers; since ``N_v`` is a pure
    function of the values the node has received over the rounds (Algorithm 3), it
    can be recomputed locally per node from the trajectory.  The result is identical
    to what the faithful protocol maintains — this equivalence is asserted by the
    test-suite.

    Parameters
    ----------
    csr:
        CSR view of the graph (defines the integer node ids of ``trajectory``).
    trajectory:
        Array of shape ``(T+1, n)`` from
        :func:`repro.core.surviving.surviving_numbers_vectorized`.
    tie_break:
        ``"history"`` (paper's rule), ``"stable"`` or ``"naive"``.
    """
    if trajectory.ndim != 2 or trajectory.shape[1] != csr.num_nodes:
        raise AlgorithmError("trajectory shape does not match the CSR view")
    total_rounds = trajectory.shape[0] - 1
    if total_rounds < 1:
        raise AlgorithmError("the trajectory must contain at least one executed round")
    labels = csr.labels()
    kept: Dict[Hashable, Tuple[Hashable, ...]] = {}
    for v in range(csr.num_nodes):
        nbrs = csr.neighbors(v)
        weights = csr.neighbor_weights(v)
        label_v = labels[v]
        if len(nbrs) == 0:
            kept[label_v] = ()
            continue
        entries = [(labels[int(u)], float(trajectory[total_rounds - 1, int(u)]), float(w))
                   for u, w in zip(nbrs, weights)]
        if tie_break == "stable":
            # Reconstruct the neighbour ordering the protocol would have evolved:
            # start from the adjacency order and stable-sort it by the values the
            # node received in every earlier round (see CompactEliminationProtocol).
            order = [int(u) for u in nbrs]
            for past_round in range(1, total_rounds):
                received = trajectory[past_round - 1]
                position = {u: i for i, u in enumerate(order)}
                order.sort(key=lambda u: (float(received[u]), position[u]))
            result = update_stable(entries, [labels[u] for u in order],
                                   self_loop=float(csr.loops[v]))
        else:
            histories = None
            if tie_break == "history":
                histories = {labels[int(u)]: trajectory[:total_rounds - 1, int(u)].tolist()
                             for u in nbrs}
            result = update_sorted(entries, histories=histories,
                                   self_loop=float(csr.loops[v]))
        kept[label_v] = result.kept
    return kept


def orientation_from_values_greedy(graph: Graph, values: Dict[Hashable, float]) -> Orientation:
    """A value-guided heuristic orientation (not the paper's algorithm).

    Every edge is oriented towards the endpoint with the *larger* surviving number
    (ties broken by identity).  Used as an ablation to show that the auxiliary-subset
    mechanism of Algorithm 3 — not just the values — is what carries the guarantee.
    """
    in_weight: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes()}
    loop_weight: Dict[Hashable, float] = {}
    assignment: Dict[EdgeKey, Hashable] = {}
    for u, v, w in graph.edges():
        if u == v:
            loop_weight[u] = loop_weight.get(u, 0.0) + w
            in_weight[u] += w
            continue
        bu, bv = values.get(u, 0.0), values.get(v, 0.0)
        if bu > bv:
            owner = u
        elif bv > bu:
            owner = v
        else:
            owner = canonical_edge(u, v)[0]
        assignment[canonical_edge(u, v)] = owner
        in_weight[owner] += w
    return Orientation(assignment=assignment, in_weight=in_weight, loop_weight=loop_weight)


def check_feasible(graph: Graph, orientation: Orientation) -> bool:
    """Whether every non-loop edge of ``graph`` is assigned to one of its endpoints."""
    for u, v, _ in graph.edges():
        if u == v:
            continue
        key = canonical_edge(u, v)
        if key not in orientation.assignment:
            return False
        if orientation.assignment[key] not in (u, v):
            return False
    return True
