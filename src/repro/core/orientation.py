"""Min-max edge orientation from the auxiliary subsets ``N_v`` (Theorem I.2).

After the compact elimination procedure (Algorithm 2 with ``Λ = R``) every node ``v``
holds a subset ``N_v`` of its neighbours.  The paper's invariants (Definition III.7,
proved in Lemma III.11) are:

1. ``Σ_{u ∈ N_v} w(u, v) <= b_v`` — the load a node accepts never exceeds its
   surviving number;
2. for every edge ``{u, v}``: ``u ∈ N_v`` or ``v ∈ N_u`` — every edge has at least
   one endpoint willing to take it.

Orienting every edge towards an endpoint whose auxiliary subset contains the other
endpoint therefore yields a feasible orientation whose maximum weighted in-degree is
at most ``max_v b_v``-bounded *per node*, hence (Lemma III.3 + weak LP duality) a
``2·n^(1/T)``-approximation of the optimum.  Conflicts — edges claimed by both
endpoints — are resolved with one extra conceptual round, as the paper notes; any
resolution preserves the guarantee because dropping load only helps.

This module turns the ``N_v`` sets (or a surviving-number trajectory from the
vectorised engine) into an explicit :class:`Orientation` and evaluates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.update import update_sorted, update_stable
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph

EdgeKey = Tuple[Hashable, Hashable]


def canonical_edge(u: Hashable, v: Hashable) -> EdgeKey:
    """A canonical (order-independent) key for the undirected edge ``{u, v}``."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class Orientation:
    """An assignment of every (non-loop) edge to one of its endpoints.

    ``assignment[e] = v`` means edge ``e`` is oriented *towards* ``v`` (``v`` pays
    its weight in the min-max objective).  Self-loops are charged to their single
    endpoint and recorded in ``loop_weight``.
    """

    assignment: Dict[EdgeKey, Hashable]
    in_weight: Dict[Hashable, float]
    conflicts: int = 0        #: edges claimed by both endpoints (resolved arbitrarily)
    violations: int = 0       #: edges claimed by neither endpoint (invariant 2 failures)
    loop_weight: Dict[Hashable, float] = field(default_factory=dict)

    @property
    def max_in_weight(self) -> float:
        """The objective value: the maximum weighted in-degree over all nodes."""
        if not self.in_weight:
            return 0.0
        return max(self.in_weight.values())

    def owner(self, u: Hashable, v: Hashable) -> Hashable:
        """The endpoint that edge ``{u, v}`` is assigned to."""
        return self.assignment[canonical_edge(u, v)]


def orientation_from_kept(graph: Graph, kept: Dict[Hashable, Sequence[Hashable]],
                          values: Optional[Dict[Hashable, float]] = None) -> Orientation:
    """Build an :class:`Orientation` from the per-node auxiliary subsets.

    Parameters
    ----------
    graph:
        The input graph.
    kept:
        ``N_v`` per node, as produced by Algorithm 2 with ``Λ = R``.
    values:
        Optional surviving numbers; used only to resolve pathological edges claimed
        by *neither* endpoint (which Lemma III.11 rules out for the faithful
        protocol, but which can occur in the A1/E5 ablations): such an edge is
        assigned to the endpoint with the larger surviving number, falling back to a
        deterministic identity-based choice.

    Notes
    -----
    Conflicts (both endpoints claim the edge) are resolved towards the endpoint with
    the currently *smaller* accumulated in-weight — a deterministic stand-in for the
    paper's "one more round of communication"; either choice preserves the
    approximation guarantee.
    """
    kept_sets = {v: set(neighbors) for v, neighbors in kept.items()}
    in_weight: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes()}
    loop_weight: Dict[Hashable, float] = {}
    assignment: Dict[EdgeKey, Hashable] = {}
    conflicts = 0
    violations = 0

    for u, v, w in graph.edges():
        if u == v:
            loop_weight[u] = loop_weight.get(u, 0.0) + w
            in_weight[u] += w
            continue
        u_claims = v in kept_sets.get(u, ())   # u accepts the edge (v ∈ N_u)
        v_claims = u in kept_sets.get(v, ())   # v accepts the edge (u ∈ N_v)
        if u_claims and v_claims:
            conflicts += 1
            owner = u if in_weight[u] <= in_weight[v] else v
        elif u_claims:
            owner = u
        elif v_claims:
            owner = v
        else:
            violations += 1
            if values is not None:
                owner = u if values.get(u, 0.0) >= values.get(v, 0.0) else v
            else:
                owner = canonical_edge(u, v)[0]
        assignment[canonical_edge(u, v)] = owner
        in_weight[owner] += w

    return Orientation(assignment=assignment, in_weight=in_weight, conflicts=conflicts,
                       violations=violations, loop_weight=loop_weight)


def _validate_trajectory(csr: CSRAdjacency, trajectory: np.ndarray) -> int:
    """Shared validation of the two reconstruction paths; returns ``T``."""
    if trajectory.ndim != 2 or trajectory.shape[1] != csr.num_nodes:
        raise AlgorithmError("trajectory shape does not match the CSR view")
    total_rounds = trajectory.shape[0] - 1
    if total_rounds < 1:
        raise AlgorithmError("the trajectory must contain at least one executed round")
    return total_rounds


def _identity_ranks(labels: Sequence[Hashable]) -> np.ndarray:
    """Rank of every node under the deterministic identity order of Update.

    :func:`repro.core.update.update_sorted` breaks final ties by
    ``(type name, repr)`` of the label; the rank array lets the vectorised
    reconstruction feed that order to ``np.lexsort`` as a plain int key.
    """
    from repro.core.update import _comparable_id

    n = len(labels)
    if all(type(label) is int and 0 <= label and label.bit_length() <= 63
           for label in labels):
        # Fast path for the ubiquitous 0..n-1 integer labels (int64-sized, so
        # the asarray below cannot overflow): the identity key is
        # ("int", repr(label)), i.e. plain lexicographic order of the
        # decimal strings — computable with a C-speed unicode argsort.
        order_arr = np.argsort(np.asarray(labels, dtype=np.int64).astype("U"),
                               kind="stable")
    else:
        order_arr = np.asarray(
            sorted(range(n), key=lambda i: _comparable_id(labels[i])),
            dtype=np.int64)
    ranks = np.empty(n, dtype=np.int64)
    ranks[order_arr] = np.arange(n, dtype=np.int64)
    return ranks


def kept_sets_from_trajectory(csr: CSRAdjacency, trajectory: np.ndarray, *,
                              tie_break: str = "history",
                              ) -> Dict[Hashable, Tuple[Hashable, ...]]:
    """Recover the final-round auxiliary subsets from a surviving-number trajectory.

    The vectorised engine only tracks surviving numbers; since ``N_v`` is a pure
    function of the values the node has received over the rounds (Algorithm 3), it
    can be recomputed locally per node from the trajectory.  The result is identical
    to what the faithful protocol maintains — this equivalence is asserted by the
    test-suite.

    This is the batched NumPy implementation (one ``np.lexsort`` + segmented
    prefix scan over every node's final-round Update at once); the per-node
    Python loop it replaced survives as
    :func:`kept_sets_from_trajectory_reference`, which the equivalence tests
    compare against.  The two are bit-identical whenever the intermediate
    weight sums are exactly representable (integer / dyadic weights — the same
    caveat as :mod:`repro.engine.kernels`).

    All three tie-break rules reduce to one lexicographic sort.  Ascending,
    Algorithm 3 orders a node's neighbours by ``(b_u, history, final tie)``
    where ``history`` is the sequence of values received in earlier rounds,
    most recent first — for ``"stable"`` this holds because iterated stable
    sorts compose into exactly that lexicographic key, with the adjacency
    position as the final tie instead of the identity rank, and for
    ``"naive"`` the history columns are simply absent.

    Parameters
    ----------
    csr:
        CSR view of the graph (defines the integer node ids of ``trajectory``).
    trajectory:
        Array of shape ``(T+1, n)`` from
        :func:`repro.core.surviving.surviving_numbers_vectorized`.
    tie_break:
        ``"history"`` (paper's rule), ``"stable"`` or ``"naive"``.
    """
    total_rounds = _validate_trajectory(csr, trajectory)
    if tie_break not in ("history", "stable", "naive"):
        raise AlgorithmError(f"unknown tie_break rule {tie_break!r}; "
                             f"expected one of ('history', 'stable', 'naive')")
    n = csr.num_nodes
    labels = csr.labels()
    if n == 0:
        return {}
    counts = np.diff(csr.indptr)
    total_entries = int(csr.indptr[-1])
    if total_entries == 0:
        return {label: () for label in labels}
    nbr = csr.indices
    final_received = trajectory[total_rounds - 1]
    vals = final_received[nbr]

    # Per-row *descending* sort by (b, history most-recent-first, final tie).
    # Every comparison column — the current value b, each history round, and
    # the identity rank — is a property of the neighbour *node*, so the whole
    # multi-key comparison collapses into one integer rank per node (a lexsort
    # over n nodes), and the per-entry sort becomes a single int64 argsort
    # over the m adjacency entries instead of T+1 lexsort passes over them.
    # Columns, most significant first; round T receives trajectory[T-1], and
    # earlier rounds' values form the tie-breaking history (most recent
    # first).  A converged trajectory repeats rows, and adjacent duplicate
    # sort keys cannot change a lexicographic comparison, so duplicates are
    # skipped — the column count is bounded by the rounds to the fixed point.
    node_columns: List[np.ndarray] = [final_received]
    if tie_break in ("history", "stable"):
        previous: Optional[np.ndarray] = None
        for t in range(total_rounds - 2, -1, -1):
            row = trajectory[t]
            if previous is None or not np.array_equal(row, previous):
                node_columns.append(row)
            previous = row
    node_keys = [-column for column in reversed(node_columns)]
    if tie_break != "stable":
        # Identity rank as the least significant key makes the node order
        # strict; "stable" leaves ties to the per-entry adjacency position.
        node_keys.insert(0, -_identity_ranks(labels))
    node_perm = np.lexsort(node_keys)  # nodes in descending comparison order
    node_rank = np.empty(n, dtype=np.int64)
    if tie_break == "stable":
        # Dense ranks: nodes with identical (value, history) columns share a
        # rank, leaving the final tie to the adjacency position below.
        boundary = np.zeros(n, dtype=np.int64)
        for column in node_columns:
            in_order = column[node_perm]
            boundary[1:] |= in_order[1:] != in_order[:-1]
        node_rank[node_perm] = np.cumsum(boundary)
    else:
        node_rank[node_perm] = np.arange(n, dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), counts)
    combined = rows * np.int64(n + 1) + node_rank[nbr]
    # Sorting the *reversed* entry array stably and mapping the indices back
    # resolves equal combined keys by descending adjacency position — exactly
    # the "stable" rule (positions are distinct elsewhere, so the other modes
    # are unaffected).
    order = (total_entries - 1
             - np.argsort(combined[::-1], kind="stable"))

    # The scan of Algorithm 3, segmented: within each row walk the descending
    # order accumulating s = self_loop + Σw and stop at the first position
    # where s exceeds the *next* (smaller) surviving number; everything strictly
    # before the stop is kept, the stop entry itself iff s <= b there.
    sorted_vals = vals[order]
    sorted_w = csr.weights[order]
    flat_cs = np.cumsum(sorted_w)
    row_starts = csr.indptr[:-1]
    nonempty = counts > 0
    starts_ne = row_starts[nonempty]
    before_row = np.zeros(n, dtype=np.float64)
    before_row[nonempty] = flat_cs[starts_ne] - sorted_w[starts_ne]
    acc = flat_cs - np.repeat(before_row, counts) + np.repeat(csr.loops, counts)
    next_vals = np.empty(total_entries, dtype=np.float64)
    next_vals[:-1] = sorted_vals[1:]
    next_vals[(csr.indptr[1:] - 1)[nonempty]] = -np.inf  # row ends (incl. the last)
    stop_candidates = np.where(acc > next_vals,
                               np.arange(total_entries, dtype=np.int64), total_entries)
    # Every non-empty row stops (its last position compares against -inf), so
    # the segmented minimum is always a valid flat index.
    first_stop = np.minimum.reduceat(stop_candidates, starts_ne)
    stop_index = np.full(n, -1, dtype=np.int64)
    stop_index[nonempty] = first_stop

    # Assemble the kept tuples in the reference order: the entries strictly
    # above the stop, listed by ascending surviving number, then the stop
    # entry last when its prefix sum fits under its own value.
    sorted_labels = list(map(labels.__getitem__, nbr[order].tolist()))
    # Reversing the flat list once turns every per-row "reversed slice" into a
    # plain slice: flat positions start..stop-1 (descending value) map to
    # reversed positions M-stop..M-start-1 (ascending value).
    reversed_labels = sorted_labels[::-1]
    stop_kept = (acc <= sorted_vals).tolist()
    starts_list = row_starts.tolist()
    stops_list = stop_index.tolist()
    kept: Dict[Hashable, Tuple[Hashable, ...]] = {}
    for v, label in enumerate(labels):
        stop = stops_list[v]
        if stop < 0:
            kept[label] = ()
            continue
        entry = tuple(reversed_labels[total_entries - stop:
                                      total_entries - starts_list[v]])
        if stop_kept[stop]:
            entry += (sorted_labels[stop],)
        kept[label] = entry
    return kept


def kept_sets_from_trajectory_reference(
        csr: CSRAdjacency, trajectory: np.ndarray, *,
        tie_break: str = "history") -> Dict[Hashable, Tuple[Hashable, ...]]:
    """Per-node reference reconstruction (the original Python loop).

    Replays the final Update locally per node through the scalar
    :func:`~repro.core.update.update_sorted` / ``update_stable`` code paths.
    Kept only as the ground truth the equivalence tests compare
    :func:`kept_sets_from_trajectory` against — the batched implementation is
    the production path (measured 5-20x faster depending on graph size and
    tie-break mode; see ``scripts/bench.py`` / ``BENCH_PR3.json``).
    """
    total_rounds = _validate_trajectory(csr, trajectory)
    labels = csr.labels()
    kept: Dict[Hashable, Tuple[Hashable, ...]] = {}
    for v in range(csr.num_nodes):
        nbrs = csr.neighbors(v)
        weights = csr.neighbor_weights(v)
        label_v = labels[v]
        if len(nbrs) == 0:
            kept[label_v] = ()
            continue
        entries = [(labels[int(u)], float(trajectory[total_rounds - 1, int(u)]), float(w))
                   for u, w in zip(nbrs, weights)]
        if tie_break == "stable":
            # Reconstruct the neighbour ordering the protocol would have evolved:
            # start from the adjacency order and stable-sort it by the values the
            # node received in every earlier round (see CompactEliminationProtocol).
            order = [int(u) for u in nbrs]
            for past_round in range(1, total_rounds):
                received = trajectory[past_round - 1]
                position = {u: i for i, u in enumerate(order)}
                order.sort(key=lambda u: (float(received[u]), position[u]))
            result = update_stable(entries, [labels[u] for u in order],
                                   self_loop=float(csr.loops[v]))
        else:
            histories = None
            if tie_break == "history":
                histories = {labels[int(u)]: trajectory[:total_rounds - 1, int(u)].tolist()
                             for u in nbrs}
            result = update_sorted(entries, histories=histories,
                                   self_loop=float(csr.loops[v]))
        kept[label_v] = result.kept
    return kept


def orientation_from_values_greedy(graph: Graph, values: Dict[Hashable, float]) -> Orientation:
    """A value-guided heuristic orientation (not the paper's algorithm).

    Every edge is oriented towards the endpoint with the *larger* surviving number
    (ties broken by identity).  Used as an ablation to show that the auxiliary-subset
    mechanism of Algorithm 3 — not just the values — is what carries the guarantee.
    """
    in_weight: Dict[Hashable, float] = {v: 0.0 for v in graph.nodes()}
    loop_weight: Dict[Hashable, float] = {}
    assignment: Dict[EdgeKey, Hashable] = {}
    for u, v, w in graph.edges():
        if u == v:
            loop_weight[u] = loop_weight.get(u, 0.0) + w
            in_weight[u] += w
            continue
        bu, bv = values.get(u, 0.0), values.get(v, 0.0)
        if bu > bv:
            owner = u
        elif bv > bu:
            owner = v
        else:
            owner = canonical_edge(u, v)[0]
        assignment[canonical_edge(u, v)] = owner
        in_weight[owner] += w
    return Orientation(assignment=assignment, in_weight=in_weight, loop_weight=loop_weight)


def check_feasible(graph: Graph, orientation: Orientation) -> bool:
    """Whether every non-loop edge of ``graph`` is assigned to one of its endpoints."""
    for u, v, _ in graph.edges():
        if u == v:
            continue
        key = canonical_edge(u, v)
        if key not in orientation.assignment:
            return False
        if orientation.assignment[key] not in (u, v):
            return False
    return True
