"""Algorithm 2 — the compact elimination procedure (surviving numbers).

Instead of running Algorithm 1 for every possible threshold in parallel, each node
``v`` keeps only the largest threshold for which it would still survive — its
*surviving number* ``b_v`` (Definition III.1).  In every round the node broadcasts
``b_v``, runs :mod:`Update <repro.core.update>` (Algorithm 3) on the values received
from its neighbours, and optionally rounds the result down onto the geometric grid
``Λ`` (Section III-C).  After ``T`` rounds,

* ``b_v`` is a ``2·n^(1/T)``-approximation of both the coreness ``c(v)`` and the
  maximal density ``r(v)`` (Theorem I.1 / Lemma III.2 + III.3 + III.4), and
* when ``Λ = R``, the auxiliary subsets ``N_v`` returned by ``Update`` form a
  feasible, equally-approximate solution of the min-max edge orientation problem
  (Theorem I.2, Lemma III.11).

Execution is delegated to the engine registry in :mod:`repro.engine`: the
``faithful`` engine wraps :func:`run_compact_elimination` (the per-node
protocol, :class:`CompactEliminationProtocol`, on the synchronous simulator —
the reference implementation, which also tracks message statistics), while the
``vectorized`` and ``sharded`` engines execute the per-round NumPy kernels of
:mod:`repro.engine.kernels` on a CSR view.  All engines are property-tested to
produce identical surviving numbers; auxiliary orientation subsets can be
recovered from a trajectory with
:func:`repro.core.orientation.kept_sets_from_trajectory`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rounding import LambdaGrid
from repro.core.update import UpdateResult, update_sorted, update_stable
from repro.distsim.congest import MessageSizeModel
from repro.distsim.stats import RunStats as SimRunStats
from repro.engine.base import get_engine
from repro.engine.kernels import compact_round, compact_trajectory
from repro.distsim.message import Message
from repro.distsim.node import NodeContext, NodeProtocol, Outgoing
from repro.distsim.runner import ProtocolRun, run_protocol
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph

#: Supported tie-breaking rules for Algorithm 3's sort.
TIE_BREAK_RULES = ("history", "stable", "naive")


@dataclass(frozen=True)
class SurvivingOutput:
    """Per-node output of the compact elimination procedure."""

    value: float                 #: the surviving number ``b_v``
    kept: Tuple[Hashable, ...]   #: the auxiliary in-neighbour subset ``N_v``


class CompactEliminationProtocol(NodeProtocol):
    """Per-node logic of Algorithm 2 (with the Algorithm 3 Update subroutine)."""

    def __init__(self, context: NodeContext, grid: LambdaGrid,
                 tie_break: str = "history", track_kept: bool = True) -> None:
        super().__init__(context)
        if tie_break not in TIE_BREAK_RULES:
            raise AlgorithmError(f"unknown tie_break rule {tie_break!r}; expected one of {TIE_BREAK_RULES}")
        if track_kept and not grid.is_exact and tie_break == "history":
            # Lemma III.11 requires Λ = R for the orientation invariants; tracking the
            # subsets under rounding is still allowed (the A1/E5 ablations measure the
            # degradation), so this is not an error — only the guarantee is void.
            pass
        self.grid = grid
        self.tie_break = tie_break
        self.track_kept = track_kept
        # Algorithm 2, line 1: b_v ← +∞, N_v ← N(v).
        self.value: float = math.inf
        self.kept: Tuple[Hashable, ...] = tuple(context.neighbor_weights)
        #: fixed neighbour order for the "stable" rule (insertion order of the graph).
        self.neighbor_order: Tuple[Hashable, ...] = tuple(context.neighbor_weights)
        #: past surviving numbers received from each neighbour (oldest first).
        self.histories: Dict[Hashable, List[float]] = {u: [] for u in context.neighbor_weights}
        #: last value received from each neighbour (starts at +∞, the initial value).
        self.last_received: Dict[Hashable, float] = {u: math.inf for u in context.neighbor_weights}

    # ------------------------------------------------------------------ rounds
    def compose_message(self, round_index: int) -> Outgoing:
        return self.broadcast(self.value)

    def receive(self, round_index: int, messages: Dict[Hashable, Message]) -> None:
        for sender, message in messages.items():
            self.last_received[sender] = float(message.payload)
        entries = [(u, self.last_received[u], w)
                   for u, w in self.context.neighbor_weights.items()]
        if self.tie_break == "history":
            result = update_sorted(entries, histories=self.histories,
                                   self_loop=self.context.self_loop_weight)
        elif self.tie_break == "stable":
            result = update_stable(entries, self.neighbor_order,
                                   self_loop=self.context.self_loop_weight)
            # The paper's alternative rule keeps "an ordering of its neighbours" that
            # is refined by stable-sorting on the current values every round; carrying
            # the sorted order forward makes repeated stable sorts equivalent to the
            # lexicographic history rule (which Lemma III.11's proof relies on).
            position = {u: i for i, u in enumerate(self.neighbor_order)}
            self.neighbor_order = tuple(sorted(
                self.neighbor_order,
                key=lambda u: (self.last_received[u], position[u])))
        else:  # "naive"
            result = update_sorted(entries, histories=None,
                                   self_loop=self.context.self_loop_weight)
        self.value = self.grid.round_down(result.value)
        if self.track_kept:
            self.kept = result.kept
        # The current round's received values become part of the history used to
        # break ties in the *next* round (Algorithm 3, line 1).
        for u in self.histories:
            self.histories[u].append(self.last_received[u])

    def output(self) -> SurvivingOutput:
        return SurvivingOutput(value=self.value, kept=self.kept)


@dataclass
class SurvivingNumbers:
    """Result of running the compact elimination procedure for ``T`` rounds."""

    values: Dict[Hashable, float]                   #: ``b_v`` per node
    kept: Dict[Hashable, Tuple[Hashable, ...]]      #: ``N_v`` per node (may be empty)
    rounds: int                                     #: number of executed rounds ``T``
    grid: LambdaGrid                                #: the Λ grid used
    num_nodes: int                                  #: ``n`` (for the guarantee)
    trajectory: Optional[np.ndarray] = None         #: (T+1, n) per-round values (vectorised engine)
    node_order: Optional[Tuple[Hashable, ...]] = None  #: column labels of ``trajectory``
    stats_summary: str = ""                         #: simulator statistics (if any)
    message_stats: Optional[SimRunStats] = None     #: full per-round simulator statistics
                                                    #: (faithful engine only)

    @property
    def guarantee(self) -> float:
        """The proven approximation factor ``2·n^(1/T)`` (times ``1+λ`` slack below)."""
        return 2.0 * (self.num_nodes ** (1.0 / self.rounds)) if self.rounds >= 1 else math.inf

    def value_of(self, node: Hashable) -> float:
        """The surviving number of ``node``."""
        return self.values[node]


def _resolve_grid(graph: Graph, lam: float) -> LambdaGrid:
    from repro.core.rounding import grid_for_graph

    return grid_for_graph(graph, lam)


def run_compact_elimination(graph: Graph, rounds: int, *, lam: float = 0.0,
                            tie_break: str = "history", track_kept: bool = True,
                            size_model: Optional[MessageSizeModel] = None,
                            ) -> Tuple[SurvivingNumbers, ProtocolRun]:
    """Run Algorithm 2 for ``rounds`` rounds on the faithful simulator.

    Parameters
    ----------
    graph:
        The input graph (weighted, possibly with self-loops).
    rounds:
        The round budget ``T`` (use :func:`repro.core.rounds.rounds_for_epsilon`).
    lam:
        The Λ-grid parameter; ``0`` keeps exact values (``Λ = R``).
    tie_break:
        Tie-breaking rule of Algorithm 3 (``"history"`` is the paper's rule).
    track_kept:
        Whether to maintain the auxiliary orientation subsets.
    size_model:
        Optional message-size model; when omitted, a model aware of the Λ grid is
        constructed automatically so message-size experiments see the savings.
    """
    if rounds < 1:
        raise AlgorithmError(f"rounds must be >= 1, got {rounds}")
    grid = _resolve_grid(graph, lam)
    if size_model is None:
        size_model = MessageSizeModel(grid_size=grid.grid_size())
    run = run_protocol(
        graph,
        lambda ctx: CompactEliminationProtocol(ctx, grid, tie_break=tie_break,
                                               track_kept=track_kept),
        rounds,
        size_model=size_model,
    )
    values = {v: out.value for v, out in run.outputs.items()}
    kept = {v: out.kept for v, out in run.outputs.items()}
    result = SurvivingNumbers(values=values, kept=kept, rounds=rounds, grid=grid,
                              num_nodes=graph.num_nodes,
                              stats_summary=run.stats.summary(),
                              message_stats=run.stats)
    return result, run


def _vectorized_round(csr: CSRAdjacency, current: np.ndarray, rows: np.ndarray,
                      counts: np.ndarray, grid: LambdaGrid) -> np.ndarray:
    """One synchronous round of Algorithm 2 for every node at once.

    Backwards-compatible wrapper over the shared kernel
    :func:`repro.engine.kernels.compact_round_range`; ``rows`` and ``counts`` are
    accepted (and ignored) for callers that precomputed them against the old
    monolithic implementation.
    """
    return compact_round(csr, current, grid)


def surviving_numbers_vectorized(csr: CSRAdjacency, rounds: int, *,
                                 lam: float = 0.0) -> np.ndarray:
    """Vectorised Algorithm 2: the full trajectory of surviving numbers.

    Returns an array of shape ``(rounds + 1, n)``: row 0 is the initial ``+inf``
    state, row ``t`` holds every node's surviving number after ``t`` rounds.  The
    values are identical to the faithful protocol's (the Update value does not
    depend on the tie-breaking rule); Λ-rounding is applied after every round when
    ``lam > 0``.  Because the process is monotone, once a fixed point is reached the
    remaining rows simply repeat it.

    This is the single-range special case of
    :func:`repro.engine.kernels.compact_trajectory` (which the sharded engine
    calls with a multi-range shard plan).
    """
    return compact_trajectory(csr, rounds, lam=lam)


def iterate_to_fixed_point(csr: CSRAdjacency, *, lam: float = 0.0,
                           max_rounds: Optional[int] = None,
                           ) -> Tuple[np.ndarray, int]:
    """Run the vectorised compact elimination until the values stop changing.

    Returns ``(values, rounds)`` where ``rounds`` is the number of rounds after
    which the fixed point was first reached.  This is the engine behind the
    Montresor et al. exact distributed k-core baseline: the fixed point of the
    Update operator equals the exact coreness values.
    """
    n = csr.num_nodes
    grid = LambdaGrid(lam=lam)
    cap = max_rounds if max_rounds is not None else max(1, n + 1)
    current = np.full(n, np.inf, dtype=np.float64)
    for t in range(1, cap + 1):
        new = compact_round(csr, current, grid)
        if np.array_equal(new, current):
            return current, t - 1
        current = new
    return current, cap


def compact_elimination(graph: Graph, rounds: int, *, lam: float = 0.0,
                        engine="vectorized", tie_break: str = "history",
                        track_kept: bool = True) -> SurvivingNumbers:
    """Run Algorithm 2 with a registry engine and return a :class:`SurvivingNumbers`.

    ``engine`` is anything :func:`repro.engine.get_engine` resolves: an
    :class:`~repro.engine.base.Engine` instance, ``"faithful"`` (alias
    ``"simulation"``) for the per-node protocol, ``"vectorized"`` (default) for
    the whole-graph NumPy kernels, or ``"sharded"`` / ``"sharded:4"`` for the
    bounded-memory shard-by-shard executor.  When ``track_kept`` is set the
    array engines recover the auxiliary orientation subsets by replaying the
    final Update locally per node (see
    :func:`repro.core.orientation.kept_sets_from_trajectory`).
    """
    return get_engine(engine).run(graph, rounds, lam=lam, tie_break=tie_break,
                                  track_kept=track_kept)
