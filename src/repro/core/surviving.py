"""Algorithm 2 — the compact elimination procedure (surviving numbers).

Instead of running Algorithm 1 for every possible threshold in parallel, each node
``v`` keeps only the largest threshold for which it would still survive — its
*surviving number* ``b_v`` (Definition III.1).  In every round the node broadcasts
``b_v``, runs :mod:`Update <repro.core.update>` (Algorithm 3) on the values received
from its neighbours, and optionally rounds the result down onto the geometric grid
``Λ`` (Section III-C).  After ``T`` rounds,

* ``b_v`` is a ``2·n^(1/T)``-approximation of both the coreness ``c(v)`` and the
  maximal density ``r(v)`` (Theorem I.1 / Lemma III.2 + III.3 + III.4), and
* when ``Λ = R``, the auxiliary subsets ``N_v`` returned by ``Update`` form a
  feasible, equally-approximate solution of the min-max edge orientation problem
  (Theorem I.2, Lemma III.11).

Two engines are provided and are tested to produce identical surviving numbers:

* :func:`run_compact_elimination` — the faithful per-node protocol
  (:class:`CompactEliminationProtocol`) on the synchronous simulator; this is the
  reference implementation and also tracks message statistics;
* :func:`surviving_numbers_vectorized` — a NumPy engine computing the whole
  per-round trajectory of surviving numbers on a CSR view, used for large graphs
  and for convergence analyses.  Auxiliary orientation subsets can be recovered
  from the trajectory with
  :func:`repro.core.orientation.kept_sets_from_trajectory`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rounding import LambdaGrid
from repro.core.update import UpdateResult, update_sorted, update_stable
from repro.distsim.congest import MessageSizeModel
from repro.distsim.message import Message
from repro.distsim.node import NodeContext, NodeProtocol, Outgoing
from repro.distsim.runner import ProtocolRun, run_protocol
from repro.errors import AlgorithmError
from repro.graph.csr import CSRAdjacency, graph_to_csr
from repro.graph.graph import Graph

#: Supported tie-breaking rules for Algorithm 3's sort.
TIE_BREAK_RULES = ("history", "stable", "naive")


@dataclass(frozen=True)
class SurvivingOutput:
    """Per-node output of the compact elimination procedure."""

    value: float                 #: the surviving number ``b_v``
    kept: Tuple[Hashable, ...]   #: the auxiliary in-neighbour subset ``N_v``


class CompactEliminationProtocol(NodeProtocol):
    """Per-node logic of Algorithm 2 (with the Algorithm 3 Update subroutine)."""

    def __init__(self, context: NodeContext, grid: LambdaGrid,
                 tie_break: str = "history", track_kept: bool = True) -> None:
        super().__init__(context)
        if tie_break not in TIE_BREAK_RULES:
            raise AlgorithmError(f"unknown tie_break rule {tie_break!r}; expected one of {TIE_BREAK_RULES}")
        if track_kept and not grid.is_exact and tie_break == "history":
            # Lemma III.11 requires Λ = R for the orientation invariants; tracking the
            # subsets under rounding is still allowed (the A1/E5 ablations measure the
            # degradation), so this is not an error — only the guarantee is void.
            pass
        self.grid = grid
        self.tie_break = tie_break
        self.track_kept = track_kept
        # Algorithm 2, line 1: b_v ← +∞, N_v ← N(v).
        self.value: float = math.inf
        self.kept: Tuple[Hashable, ...] = tuple(context.neighbor_weights)
        #: fixed neighbour order for the "stable" rule (insertion order of the graph).
        self.neighbor_order: Tuple[Hashable, ...] = tuple(context.neighbor_weights)
        #: past surviving numbers received from each neighbour (oldest first).
        self.histories: Dict[Hashable, List[float]] = {u: [] for u in context.neighbor_weights}
        #: last value received from each neighbour (starts at +∞, the initial value).
        self.last_received: Dict[Hashable, float] = {u: math.inf for u in context.neighbor_weights}

    # ------------------------------------------------------------------ rounds
    def compose_message(self, round_index: int) -> Outgoing:
        return self.broadcast(self.value)

    def receive(self, round_index: int, messages: Dict[Hashable, Message]) -> None:
        for sender, message in messages.items():
            self.last_received[sender] = float(message.payload)
        entries = [(u, self.last_received[u], w)
                   for u, w in self.context.neighbor_weights.items()]
        if self.tie_break == "history":
            result = update_sorted(entries, histories=self.histories,
                                   self_loop=self.context.self_loop_weight)
        elif self.tie_break == "stable":
            result = update_stable(entries, self.neighbor_order,
                                   self_loop=self.context.self_loop_weight)
            # The paper's alternative rule keeps "an ordering of its neighbours" that
            # is refined by stable-sorting on the current values every round; carrying
            # the sorted order forward makes repeated stable sorts equivalent to the
            # lexicographic history rule (which Lemma III.11's proof relies on).
            position = {u: i for i, u in enumerate(self.neighbor_order)}
            self.neighbor_order = tuple(sorted(
                self.neighbor_order,
                key=lambda u: (self.last_received[u], position[u])))
        else:  # "naive"
            result = update_sorted(entries, histories=None,
                                   self_loop=self.context.self_loop_weight)
        self.value = self.grid.round_down(result.value)
        if self.track_kept:
            self.kept = result.kept
        # The current round's received values become part of the history used to
        # break ties in the *next* round (Algorithm 3, line 1).
        for u in self.histories:
            self.histories[u].append(self.last_received[u])

    def output(self) -> SurvivingOutput:
        return SurvivingOutput(value=self.value, kept=self.kept)


@dataclass
class SurvivingNumbers:
    """Result of running the compact elimination procedure for ``T`` rounds."""

    values: Dict[Hashable, float]                   #: ``b_v`` per node
    kept: Dict[Hashable, Tuple[Hashable, ...]]      #: ``N_v`` per node (may be empty)
    rounds: int                                     #: number of executed rounds ``T``
    grid: LambdaGrid                                #: the Λ grid used
    num_nodes: int                                  #: ``n`` (for the guarantee)
    trajectory: Optional[np.ndarray] = None         #: (T+1, n) per-round values (vectorised engine)
    node_order: Optional[Tuple[Hashable, ...]] = None  #: column labels of ``trajectory``
    stats_summary: str = ""                         #: simulator statistics (if any)

    @property
    def guarantee(self) -> float:
        """The proven approximation factor ``2·n^(1/T)`` (times ``1+λ`` slack below)."""
        return 2.0 * (self.num_nodes ** (1.0 / self.rounds)) if self.rounds >= 1 else math.inf

    def value_of(self, node: Hashable) -> float:
        """The surviving number of ``node``."""
        return self.values[node]


def _resolve_grid(graph: Graph, lam: float) -> LambdaGrid:
    from repro.core.rounding import grid_for_graph

    return grid_for_graph(graph, lam)


def run_compact_elimination(graph: Graph, rounds: int, *, lam: float = 0.0,
                            tie_break: str = "history", track_kept: bool = True,
                            size_model: Optional[MessageSizeModel] = None,
                            ) -> Tuple[SurvivingNumbers, ProtocolRun]:
    """Run Algorithm 2 for ``rounds`` rounds on the faithful simulator.

    Parameters
    ----------
    graph:
        The input graph (weighted, possibly with self-loops).
    rounds:
        The round budget ``T`` (use :func:`repro.core.rounds.rounds_for_epsilon`).
    lam:
        The Λ-grid parameter; ``0`` keeps exact values (``Λ = R``).
    tie_break:
        Tie-breaking rule of Algorithm 3 (``"history"`` is the paper's rule).
    track_kept:
        Whether to maintain the auxiliary orientation subsets.
    size_model:
        Optional message-size model; when omitted, a model aware of the Λ grid is
        constructed automatically so message-size experiments see the savings.
    """
    if rounds < 1:
        raise AlgorithmError(f"rounds must be >= 1, got {rounds}")
    grid = _resolve_grid(graph, lam)
    if size_model is None:
        size_model = MessageSizeModel(grid_size=grid.grid_size())
    run = run_protocol(
        graph,
        lambda ctx: CompactEliminationProtocol(ctx, grid, tie_break=tie_break,
                                               track_kept=track_kept),
        rounds,
        size_model=size_model,
    )
    values = {v: out.value for v, out in run.outputs.items()}
    kept = {v: out.kept for v, out in run.outputs.items()}
    result = SurvivingNumbers(values=values, kept=kept, rounds=rounds, grid=grid,
                              num_nodes=graph.num_nodes,
                              stats_summary=run.stats.summary())
    return result, run


def _vectorized_round(csr: CSRAdjacency, current: np.ndarray, rows: np.ndarray,
                      counts: np.ndarray, grid: LambdaGrid) -> np.ndarray:
    """One synchronous round of Algorithm 2 for every node at once.

    Implements the ``max_k min(S_k, b_(k))`` characterisation of Algorithm 3 (see
    :func:`repro.core.update.update_value_only`) with a single lexsort over the CSR
    arrays; returns the new surviving-number vector (Λ-rounded when the grid is not
    exact).
    """
    n = csr.num_nodes
    vals = current[csr.indices]
    # Sort each row's entries by descending neighbour value.  ``lexsort`` sorts by
    # the last key first, so (−vals, rows) yields: primary = row, secondary = −val.
    order = np.lexsort((-vals, rows))
    sorted_vals = vals[order]
    sorted_w = csr.weights[order]
    # Prefix sums of weights *within* each row, offset by the node's self-loop.
    flat_cs = np.cumsum(sorted_w)
    row_starts = csr.indptr[:-1]
    nonempty = counts > 0
    before_row = np.zeros(n, dtype=np.float64)
    before_row[nonempty] = flat_cs[row_starts[nonempty]] - sorted_w[row_starts[nonempty]]
    within_cs = flat_cs - np.repeat(before_row, counts) + np.repeat(csr.loops, counts)
    candidates = np.minimum(within_cs, sorted_vals)
    new = csr.loops.copy()  # a node with no neighbours keeps only its self-loop weight
    if len(candidates):
        seg_max = np.full(n, -np.inf, dtype=np.float64)
        seg_max[nonempty] = np.maximum.reduceat(candidates, row_starts[nonempty])
        new = np.maximum(new, np.where(nonempty, seg_max, csr.loops))
    if not grid.is_exact:
        new = np.array([grid.round_down(x) for x in new], dtype=np.float64)
    return new


def surviving_numbers_vectorized(csr: CSRAdjacency, rounds: int, *,
                                 lam: float = 0.0) -> np.ndarray:
    """Vectorised Algorithm 2: the full trajectory of surviving numbers.

    Returns an array of shape ``(rounds + 1, n)``: row 0 is the initial ``+inf``
    state, row ``t`` holds every node's surviving number after ``t`` rounds.  The
    values are identical to the faithful protocol's (the Update value does not
    depend on the tie-breaking rule); Λ-rounding is applied after every round when
    ``lam > 0``.  Because the process is monotone, once a fixed point is reached the
    remaining rows simply repeat it.
    """
    if rounds < 0:
        raise AlgorithmError(f"rounds must be non-negative, got {rounds}")
    n = csr.num_nodes
    counts = np.diff(csr.indptr)
    rows = np.repeat(np.arange(n), counts)
    trajectory = np.full((rounds + 1, n), np.inf, dtype=np.float64)
    grid = LambdaGrid(lam=lam)

    current = trajectory[0].copy()
    for t in range(1, rounds + 1):
        new = _vectorized_round(csr, current, rows, counts, grid)
        trajectory[t] = new
        if np.array_equal(new, current):
            trajectory[t:] = new
            break
        current = new
    return trajectory


def iterate_to_fixed_point(csr: CSRAdjacency, *, lam: float = 0.0,
                           max_rounds: Optional[int] = None,
                           ) -> Tuple[np.ndarray, int]:
    """Run the vectorised compact elimination until the values stop changing.

    Returns ``(values, rounds)`` where ``rounds`` is the number of rounds after
    which the fixed point was first reached.  This is the engine behind the
    Montresor et al. exact distributed k-core baseline: the fixed point of the
    Update operator equals the exact coreness values.
    """
    n = csr.num_nodes
    counts = np.diff(csr.indptr)
    rows = np.repeat(np.arange(n), counts)
    grid = LambdaGrid(lam=lam)
    cap = max_rounds if max_rounds is not None else max(1, n + 1)
    current = np.full(n, np.inf, dtype=np.float64)
    for t in range(1, cap + 1):
        new = _vectorized_round(csr, current, rows, counts, grid)
        if np.array_equal(new, current):
            return current, t - 1
        current = new
    return current, cap


def compact_elimination(graph: Graph, rounds: int, *, lam: float = 0.0,
                        engine: str = "vectorized", tie_break: str = "history",
                        track_kept: bool = True) -> SurvivingNumbers:
    """Run Algorithm 2 with either engine and return a :class:`SurvivingNumbers`.

    ``engine="vectorized"`` (default) computes the trajectory with NumPy and, when
    ``track_kept`` is set, recovers the auxiliary orientation subsets by replaying
    the final Update locally per node (see
    :func:`repro.core.orientation.kept_sets_from_trajectory`); ``engine="simulation"``
    runs the faithful per-node protocol.
    """
    if engine not in ("vectorized", "simulation"):
        raise AlgorithmError(f"unknown engine {engine!r}; expected 'vectorized' or 'simulation'")
    if rounds < 1:
        raise AlgorithmError(f"rounds must be >= 1, got {rounds}")
    if engine == "simulation":
        result, _ = run_compact_elimination(graph, rounds, lam=lam, tie_break=tie_break,
                                            track_kept=track_kept)
        return result

    csr = graph_to_csr(graph)
    trajectory = surviving_numbers_vectorized(csr, rounds, lam=lam)
    labels = csr.labels()
    values = {labels[i]: float(trajectory[rounds, i]) for i in range(csr.num_nodes)}
    kept: Dict[Hashable, Tuple[Hashable, ...]] = {v: () for v in labels}
    if track_kept:
        from repro.core.orientation import kept_sets_from_trajectory

        kept = kept_sets_from_trajectory(csr, trajectory, tie_break=tie_break)
    grid = _resolve_grid(graph, lam)
    return SurvivingNumbers(values=values, kept=kept, rounds=rounds, grid=grid,
                            num_nodes=graph.num_nodes, trajectory=trajectory,
                            node_order=labels)
