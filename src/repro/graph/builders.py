"""Constructors bridging :class:`~repro.graph.graph.Graph` with other representations.

Includes conversion from/to ``networkx`` (optional — only used by tests that
cross-check against the reference implementations shipped with networkx) and a few
convenience constructors used throughout examples and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph, Node


def graph_from_edges(edges: Iterable[Sequence], *, nodes: Iterable[Node] = ()) -> Graph:
    """Build a graph from ``(u, v)`` or ``(u, v, w)`` tuples (thin alias of ``Graph``)."""
    return Graph(edges=edges, nodes=nodes)


def graph_from_adjacency_matrix(matrix: np.ndarray, *, tol: float = 0.0) -> Graph:
    """Build a graph from a symmetric weighted adjacency matrix.

    Entry ``matrix[i, j]`` (for ``i < j``) is the weight of edge ``{i, j}``; the
    diagonal holds self-loop weights.  Entries with absolute value ``<= tol`` are
    treated as absent.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"adjacency matrix must be square, got shape {matrix.shape}")
    if not np.allclose(matrix, matrix.T):
        raise GraphError("adjacency matrix must be symmetric for an undirected graph")
    n = matrix.shape[0]
    graph = Graph(nodes=range(n))
    for i in range(n):
        if matrix[i, i] > tol:
            graph.add_edge(i, i, float(matrix[i, i]))
        for j in range(i + 1, n):
            if matrix[i, j] > tol:
                graph.add_edge(i, j, float(matrix[i, j]))
    return graph


def graph_to_adjacency_matrix(graph: Graph) -> Tuple[np.ndarray, Dict[Node, int]]:
    """Dense symmetric adjacency matrix plus the node→row index map."""
    index = {v: i for i, v in enumerate(graph.nodes())}
    n = len(index)
    matrix = np.zeros((n, n), dtype=float)
    for u, v, w in graph.edges():
        if u == v:
            matrix[index[u], index[u]] += w
        else:
            matrix[index[u], index[v]] += w
            matrix[index[v], index[u]] += w
    return matrix, index


def graph_from_networkx(nx_graph) -> Graph:
    """Convert a ``networkx.Graph`` (weights read from the ``weight`` attribute)."""
    graph = Graph(nodes=nx_graph.nodes())
    for u, v, data in nx_graph.edges(data=True):
        graph.add_edge(u, v, float(data.get("weight", 1.0)))
    return graph


def graph_to_networkx(graph: Graph):
    """Convert to a ``networkx.Graph`` with ``weight`` edge attributes."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    for u, v, w in graph.edges():
        nx_graph.add_edge(u, v, weight=w)
    return nx_graph


def with_weights(graph: Graph, weights: Mapping[Tuple[Node, Node], float]) -> Graph:
    """Copy ``graph`` replacing edge weights from the given ``{(u, v): w}`` mapping.

    Missing edges keep their original weight; the mapping may use either endpoint
    order.
    """
    result = Graph(nodes=graph.nodes())
    for u, v, w in graph.edges():
        new_w = weights.get((u, v), weights.get((v, u), w))
        result.add_edge(u, v, float(new_w))
    return result
