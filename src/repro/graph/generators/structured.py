"""Deterministic structured graphs: paths, rings, grids, trees, cliques, stars.

These serve two purposes: (i) unit tests with hand-checkable coreness / density /
orientation values, and (ii) building blocks of the paper's lower-bound
constructions (γ-ary trees with cliques planted on the leaves — see
:mod:`repro.graph.generators.lowerbound`).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph


def path_graph(n: int) -> Graph:
    """Path on ``n`` nodes ``0 - 1 - ... - (n-1)``."""
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    graph = Graph(nodes=range(n))
    for v in range(n - 1):
        graph.add_edge(v, v + 1, 1.0)
    return graph


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError(f"a cycle needs at least 3 nodes, got {n}")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0, 1.0)
    return graph


def star_graph(leaves: int) -> Graph:
    """Star with centre ``0`` and ``leaves`` leaves ``1..leaves``."""
    if leaves < 0:
        raise GraphError(f"leaves must be non-negative, got {leaves}")
    graph = Graph(nodes=range(leaves + 1))
    for v in range(1, leaves + 1):
        graph.add_edge(0, v, 1.0)
    return graph


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """Complete graph K_n with uniform edge weight."""
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v, weight)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """4-neighbour grid with nodes labelled ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    graph = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1, 1.0)
            if r + 1 < rows:
                graph.add_edge(v, v + cols, 1.0)
    return graph


def balanced_tree(branching: int, depth: int) -> Graph:
    """Complete ``branching``-ary tree of the given depth (root = node 0).

    Depth 0 is a single node; depth ``d`` has ``(b^(d+1) - 1) / (b - 1)`` nodes.
    """
    if branching < 1 or depth < 0:
        raise GraphError("branching must be >= 1 and depth >= 0")
    graph = Graph(nodes=[0])
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        new_frontier: List[int] = []
        for parent in frontier:
            for _ in range(branching):
                graph.add_edge(parent, next_id, 1.0)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return graph


def tree_leaves(branching: int, depth: int) -> List[int]:
    """Node labels of the leaves of :func:`balanced_tree` with the same parameters."""
    if depth == 0:
        return [0]
    total_internal = sum(branching ** level for level in range(depth))
    total = sum(branching ** level for level in range(depth + 1))
    return list(range(total_internal, total))


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Two K_{clique_size} cliques joined by a path of ``path_length`` extra nodes.

    A classic high-diameter workload: the densest subsets sit at the two ends, so
    diameter-dependent algorithms pay the full path length while the paper's
    algorithms do not.
    """
    if clique_size < 2:
        raise GraphError("clique_size must be at least 2")
    left = complete_graph(clique_size)
    graph = Graph(nodes=range(2 * clique_size + path_length))
    for u, v, w in left.edges():
        graph.add_edge(u, v, w)
        graph.add_edge(u + clique_size + path_length, v + clique_size + path_length, w)
    chain = [clique_size - 1] + list(range(clique_size, clique_size + path_length)) + \
            [clique_size + path_length]
    for a, b in zip(chain, chain[1:]):
        graph.add_edge(a, b, 1.0)
    return graph


def clique_plus_pendant_path(clique_size: int, path_length: int) -> Tuple[Graph, int]:
    """A K_{clique_size} with a pendant path of ``path_length`` nodes.

    Returns the graph and the label of the far endpoint of the path.  Useful to
    test that far-away nodes still approximate their (low) coreness correctly.
    """
    graph = complete_graph(clique_size)
    prev = 0
    label = clique_size
    for _ in range(path_length):
        graph.add_edge(prev, label, 1.0)
        prev = label
        label += 1
    return graph, prev
