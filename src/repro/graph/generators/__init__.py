"""Graph generators: random models, structured graphs, community models, R-MAT,
the paper's lower-bound constructions and edge-weight assignment schemes."""

from repro.graph.generators.community import (
    block_membership,
    community_labels_caveman,
    core_periphery,
    planted_partition,
    relaxed_caveman,
)
from repro.graph.generators.lowerbound import (
    FIGURE1_SPECIAL_NODE,
    LowerBoundPair,
    figure1_broken_cycle,
    figure1_cycle,
    figure1_triple,
    lemma313_pair,
)
from repro.graph.generators.random_graphs import (
    barabasi_albert,
    configuration_model_simple,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    powerlaw_cluster,
    powerlaw_degree_sequence,
    random_regular,
)
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.structured import (
    balanced_tree,
    barbell_graph,
    clique_plus_pendant_path,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    tree_leaves,
)
from repro.graph.generators.weights import (
    with_exponential_weights,
    with_two_level_weights,
    with_uniform_integer_weights,
    with_uniform_real_weights,
    with_unit_weights,
)

__all__ = [
    "block_membership",
    "community_labels_caveman",
    "core_periphery",
    "planted_partition",
    "relaxed_caveman",
    "FIGURE1_SPECIAL_NODE",
    "LowerBoundPair",
    "figure1_broken_cycle",
    "figure1_cycle",
    "figure1_triple",
    "lemma313_pair",
    "barabasi_albert",
    "configuration_model_simple",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "powerlaw_cluster",
    "powerlaw_degree_sequence",
    "random_regular",
    "rmat_graph",
    "balanced_tree",
    "barbell_graph",
    "clique_plus_pendant_path",
    "complete_graph",
    "cycle_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "tree_leaves",
    "with_exponential_weights",
    "with_two_level_weights",
    "with_uniform_integer_weights",
    "with_uniform_real_weights",
    "with_unit_weights",
]
