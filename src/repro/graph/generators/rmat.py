"""R-MAT (recursive matrix) generator.

R-MAT graphs reproduce the skewed degree distributions and community-within-
community structure of large web/social graphs, which is why they are the standard
synthetic stand-in for SNAP-style datasets (e.g. the Graph500 generator is an R-MAT
with (a, b, c, d) = (0.57, 0.19, 0.19, 0.05)).
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng


def rmat_graph(scale: int, edge_factor: int = 8,
               a: float = 0.57, b: float = 0.19, c: float = 0.19, d: float = 0.05,
               *, seed: SeedLike = None, include_all_nodes: bool = True) -> Graph:
    """Generate an undirected simple R-MAT graph with ``2**scale`` nodes.

    Parameters
    ----------
    scale:
        ``log2`` of the number of nodes.
    edge_factor:
        Target number of edges per node; ``edge_factor * 2**scale`` edge insertions
        are attempted (duplicates and self-loops dropped, so the realised edge count
        is slightly smaller — as in the Graph500 specification).
    a, b, c, d:
        Quadrant probabilities, must be non-negative and sum to 1.
    include_all_nodes:
        Keep isolated node ids in the node set (default) so that ``n`` is exactly
        ``2**scale``.
    """
    if scale < 1:
        raise GraphError(f"scale must be >= 1, got {scale}")
    total = a + b + c + d
    if any(x < 0 for x in (a, b, c, d)) or abs(total - 1.0) > 1e-9:
        raise GraphError("R-MAT quadrant probabilities must be non-negative and sum to 1")
    rng = ensure_rng(seed)
    n = 1 << scale
    target_insertions = edge_factor * n
    graph = Graph(nodes=range(n) if include_all_nodes else None)
    # One uniform draw per recursion level per edge insertion.
    draws = rng.random(size=(target_insertions, scale))
    thresholds = (a, a + b, a + b + c)
    for row in range(target_insertions):
        u = v = 0
        for level in range(scale):
            r = draws[row, level]
            if r < thresholds[0]:
                qu, qv = 0, 0
            elif r < thresholds[1]:
                qu, qv = 0, 1
            elif r < thresholds[2]:
                qu, qv = 1, 0
            else:
                qu, qv = 1, 1
            u = (u << 1) | qu
            v = (v << 1) | qv
        if u == v:
            continue
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, 1.0)
    return graph
