"""Community-structured random graphs.

The paper's motivating applications (Section I) are social-network communities, so
the workload suite includes graphs with planted community structure:

* :func:`planted_partition` — the classic stochastic block model with equal-size
  blocks, intra-block probability ``p_in`` and inter-block probability ``p_out``;
* :func:`relaxed_caveman` — disjoint cliques whose edges are rewired with some
  probability (Watts' relaxed caveman model);
* :func:`core_periphery` — a dense core (clique or near-clique) surrounded by a
  sparse periphery, the canonical workload where coreness separates the two groups.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng


def planted_partition(blocks: int, block_size: int, p_in: float, p_out: float,
                      *, seed: SeedLike = None) -> Graph:
    """Stochastic block model with ``blocks`` equal blocks of ``block_size`` nodes.

    Node ``v`` belongs to block ``v // block_size``.
    """
    if blocks < 1 or block_size < 1:
        raise GraphError("blocks and block_size must be positive")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"{name} must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    n = blocks * block_size
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            same = (u // block_size) == (v // block_size)
            p = p_in if same else p_out
            if p > 0.0 and rng.random() < p:
                graph.add_edge(u, v, 1.0)
    return graph


def block_membership(blocks: int, block_size: int) -> Dict[int, int]:
    """Ground-truth block id for each node of :func:`planted_partition`."""
    return {v: v // block_size for v in range(blocks * block_size)}


def relaxed_caveman(cliques: int, clique_size: int, rewire_probability: float,
                    *, seed: SeedLike = None) -> Graph:
    """Relaxed caveman graph: ``cliques`` disjoint cliques with random rewiring.

    Each intra-clique edge is, independently with probability
    ``rewire_probability``, replaced by an edge to a uniformly random node outside
    the endpoints (duplicates are skipped, keeping the graph simple).
    """
    if cliques < 1 or clique_size < 2:
        raise GraphError("need at least one clique of size >= 2")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError(f"rewire_probability must be in [0, 1], got {rewire_probability}")
    rng = ensure_rng(seed)
    n = cliques * clique_size
    graph = Graph(nodes=range(n))
    for c in range(cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                u, v = base + i, base + j
                if rewire_probability > 0.0 and rng.random() < rewire_probability:
                    w = int(rng.integers(0, n))
                    if w != u and not graph.has_edge(u, w):
                        graph.add_edge(u, w, 1.0)
                        continue
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, 1.0)
    return graph


def core_periphery(core_size: int, periphery_size: int, attach_degree: int = 2,
                   *, core_probability: float = 1.0, seed: SeedLike = None) -> Graph:
    """A dense core with a sparse periphery attached to it.

    The core is an Erdős–Rényi graph G(core_size, core_probability) (a clique when
    ``core_probability == 1``).  Each periphery node attaches to ``attach_degree``
    uniformly random core nodes, giving it low coreness while core nodes keep high
    coreness — the textbook picture behind "influential spreaders" applications.
    """
    if core_size < 2 or periphery_size < 0 or attach_degree < 1:
        raise GraphError("invalid core-periphery parameters")
    if attach_degree > core_size:
        raise GraphError("attach_degree cannot exceed core_size")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(core_size + periphery_size))
    for u in range(core_size):
        for v in range(u + 1, core_size):
            if core_probability >= 1.0 or rng.random() < core_probability:
                graph.add_edge(u, v, 1.0)
    for p in range(core_size, core_size + periphery_size):
        targets = rng.choice(core_size, size=attach_degree, replace=False)
        for t in targets:
            graph.add_edge(p, int(t), 1.0)
    return graph


def community_labels_caveman(cliques: int, clique_size: int) -> List[int]:
    """Ground-truth community id per node for :func:`relaxed_caveman`."""
    return [v // clique_size for v in range(cliques * clique_size)]
