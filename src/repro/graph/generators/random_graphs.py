"""Classic random-graph models implemented from scratch on :class:`Graph`.

Implemented models:

* :func:`erdos_renyi_gnp` — the G(n, p) model,
* :func:`erdos_renyi_gnm` — the G(n, m) model (exactly ``m`` distinct edges),
* :func:`barabasi_albert` — preferential attachment with ``m`` edges per new node,
* :func:`powerlaw_cluster` — Holme–Kim preferential attachment with triad closure,
* :func:`random_regular` — a d-regular graph via the pairing model with retries,
* :func:`configuration_model_simple` — a simple graph approximating a prescribed
  degree sequence (multi-edges and loops dropped).

All generators take a ``seed`` compatible with :func:`repro.utils.rng.ensure_rng`
and produce unit-weight graphs; weights can be layered on with
:mod:`repro.graph.generators.weights`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng


def erdos_renyi_gnp(n: int, p: float, *, seed: SeedLike = None) -> Graph:
    """Erdős–Rényi G(n, p): every pair is an edge independently with probability p."""
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must lie in [0, 1], got {p}")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(n))
    if p == 0.0 or n < 2:
        return graph
    # Geometric skipping (Batagelj–Brandes) keeps this O(n + m) rather than O(n^2).
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v, 1.0)
        return graph
    log_q = np.log1p(-p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(np.floor(np.log1p(-r) / log_q))
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w, 1.0)
    return graph


def erdos_renyi_gnm(n: int, m: int, *, seed: SeedLike = None) -> Graph:
    """Erdős–Rényi G(n, m): exactly ``m`` distinct edges chosen uniformly at random."""
    if n < 0 or m < 0:
        raise GraphError("n and m must be non-negative")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"m={m} exceeds the maximum of {max_edges} for n={n}")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(n))
    chosen: set = set()
    while len(chosen) < m:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in chosen:
            continue
        chosen.add(key)
        graph.add_edge(u, v, 1.0)
    return graph


def barabasi_albert(n: int, m: int, *, seed: SeedLike = None) -> Graph:
    """Barabási–Albert preferential attachment graph.

    Starts from a star on ``m + 1`` nodes; every subsequent node attaches to ``m``
    distinct existing nodes chosen proportionally to their degree.
    """
    if m < 1:
        raise GraphError(f"m must be >= 1, got {m}")
    if n < m + 1:
        raise GraphError(f"n must be at least m + 1 = {m + 1}, got {n}")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(n))
    # repeated_nodes holds one copy of every edge endpoint => degree-proportional sampling.
    repeated_nodes: list[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v, 1.0)
        repeated_nodes.extend((0, v))
    for new in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            pick = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
            targets.add(pick)
        for t in targets:
            graph.add_edge(new, t, 1.0)
            repeated_nodes.extend((new, t))
    return graph


def powerlaw_cluster(n: int, m: int, p_triangle: float, *, seed: SeedLike = None) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert but, after each preferential attachment step, with
    probability ``p_triangle`` the next edge closes a triangle with a random
    neighbour of the previously chosen target.
    """
    if not 0.0 <= p_triangle <= 1.0:
        raise GraphError(f"p_triangle must be in [0, 1], got {p_triangle}")
    if m < 1:
        raise GraphError(f"m must be >= 1, got {m}")
    if n < m + 1:
        raise GraphError(f"n must be at least m + 1 = {m + 1}, got {n}")
    rng = ensure_rng(seed)
    graph = Graph(nodes=range(n))
    repeated_nodes: list[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v, 1.0)
        repeated_nodes.extend((0, v))
    for new in range(m + 1, n):
        added = 0
        last_target: int | None = None
        while added < m:
            if (last_target is not None and rng.random() < p_triangle):
                nbrs = [u for u in graph.neighbors(last_target)
                        if u != new and not graph.has_edge(new, u)]
                if nbrs:
                    target = nbrs[int(rng.integers(0, len(nbrs)))]
                else:
                    target = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
            else:
                target = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
            if target == new or graph.has_edge(new, target):
                last_target = None
                continue
            graph.add_edge(new, target, 1.0)
            repeated_nodes.extend((new, target))
            last_target = target
            added += 1
    return graph


def random_regular(n: int, d: int, *, seed: SeedLike = None, max_retries: int = 200) -> Graph:
    """A simple d-regular graph via the pairing model (rejection sampling)."""
    if d < 0 or n <= d:
        raise GraphError(f"need 0 <= d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise GraphError(f"n*d must be even for a d-regular graph (n={n}, d={d})")
    rng = ensure_rng(seed)
    if d == 0:
        return Graph(nodes=range(n))
    for _ in range(max_retries):
        stubs = np.repeat(np.arange(n), d)
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = int(stubs[i]), int(stubs[i + 1])
            if u == v:
                ok = False
                break
            key = (u, v) if u < v else (v, u)
            if key in edges:
                ok = False
                break
            edges.add(key)
        if ok:
            graph = Graph(nodes=range(n))
            for u, v in edges:
                graph.add_edge(u, v, 1.0)
            return graph
    raise GraphError(f"failed to sample a simple {d}-regular graph after {max_retries} retries")


def configuration_model_simple(degree_sequence: Sequence[int], *, seed: SeedLike = None) -> Graph:
    """A simple graph whose degrees approximate ``degree_sequence``.

    The pairing model is run once; self-loops and multi-edges are silently dropped,
    so actual degrees may fall slightly short of the prescribed values (the standard
    "erased configuration model").
    """
    degree_sequence = [int(d) for d in degree_sequence]
    if any(d < 0 for d in degree_sequence):
        raise GraphError("degrees must be non-negative")
    if sum(degree_sequence) % 2 != 0:
        raise GraphError("the degree sequence must have even sum")
    rng = ensure_rng(seed)
    n = len(degree_sequence)
    stubs = np.repeat(np.arange(n), degree_sequence)
    rng.shuffle(stubs)
    graph = Graph(nodes=range(n))
    for i in range(0, len(stubs) - 1, 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, 1.0)
    return graph


def powerlaw_degree_sequence(n: int, exponent: float = 2.5, d_min: int = 1,
                             d_max: int | None = None, *, seed: SeedLike = None) -> list[int]:
    """Sample a degree sequence from a bounded discrete power law (even sum ensured)."""
    if exponent <= 1.0:
        raise GraphError(f"power-law exponent must exceed 1, got {exponent}")
    rng = ensure_rng(seed)
    d_max = d_max or max(d_min + 1, int(np.sqrt(n)))
    values = np.arange(d_min, d_max + 1, dtype=float)
    probs = values ** (-exponent)
    probs /= probs.sum()
    seq = rng.choice(values, size=n, p=probs).astype(int).tolist()
    if sum(seq) % 2 == 1:
        seq[0] += 1
    return seq
