"""The paper's lower-bound constructions (Figure I.1 and Lemma III.13).

Two families are provided:

* **Figure I.1 gadgets** — three unit-weight graphs around a distinguished node
  ``v``: (a) a long cycle through ``v`` (coreness of ``v`` is 2), and (b)/(c) the
  same picture with one far-away edge removed so that the cycle becomes a path
  (coreness of ``v`` drops to 1, and the optimal orientation around ``v`` changes).
  Any algorithm computing a ``< 2``-approximation of the coreness of ``v`` — or an
  orientation with maximum in-degree ``< 2`` — must distinguish the variants, which
  requires ``Ω(n)`` rounds because they only differ ``n/2`` hops away from ``v``.

* **Lemma III.13 construction** — a complete γ-ary tree ``G`` (coreness of the root
  is 1) and the graph ``G'`` obtained by planting a clique on its leaves (coreness
  of the root becomes ``≥ γ``).  Distinguishing the two requires a number of rounds
  equal to the tree depth ``Θ(log n / log γ)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.generators.structured import balanced_tree, tree_leaves


#: Node label used for the distinguished node ``v`` of Figure I.1.
FIGURE1_SPECIAL_NODE = 0


def figure1_cycle(num_nodes: int) -> Graph:
    """Figure I.1(a): a cycle of ``num_nodes`` unit-weight edges through node 0.

    Every node of a cycle has coreness 2, and any orientation must give some node
    in-degree >= 1 while the worst node of an all-one-direction orientation has
    in-degree exactly 1.
    """
    if num_nodes < 3:
        raise GraphError(f"the cycle gadget needs at least 3 nodes, got {num_nodes}")
    graph = Graph(nodes=range(num_nodes))
    for i in range(num_nodes):
        graph.add_edge(i, (i + 1) % num_nodes, 1.0)
    return graph


def figure1_broken_cycle(num_nodes: int, break_offset: int | None = None) -> Graph:
    """Figure I.1(b)/(c): the cycle of :func:`figure1_cycle` with one far edge removed.

    ``break_offset`` selects which edge (counted from node 0 along the cycle) is
    removed; by default the edge diametrically opposite node 0 is removed, i.e. about
    ``num_nodes / 2`` hops away, which is what forces the Ω(n) round lower bound.
    The resulting graph is a path, so every node has coreness 1 and an orientation
    with maximum in-degree 1 exists.
    """
    graph = figure1_cycle(num_nodes)
    if break_offset is None:
        break_offset = num_nodes // 2
    if not 0 <= break_offset < num_nodes:
        raise GraphError(f"break_offset must be in [0, {num_nodes}), got {break_offset}")
    u = break_offset
    v = (break_offset + 1) % num_nodes
    graph.remove_edge(u, v)
    return graph


@dataclass(frozen=True)
class LowerBoundPair:
    """The (G, G') pair of Lemma III.13 plus its bookkeeping."""

    tree: Graph          #: G  — the bare γ-ary tree
    tree_with_clique: Graph  #: G' — the tree with a clique planted on the leaves
    root: int            #: the root node v whose coreness differs between G and G'
    leaves: List[int]    #: leaf labels (the clique of G' lives on these)
    depth: int           #: tree depth = Θ(log n / log γ) — the round lower bound
    gamma: int           #: the branching factor / target approximation ratio


def lemma313_pair(gamma: int, depth: int) -> LowerBoundPair:
    """Build the Lemma III.13 instance for approximation ratio ``gamma``.

    Parameters
    ----------
    gamma:
        Branching factor of the tree (the paper assumes an integer γ >= 2).
    depth:
        Depth of the tree; the paper requires at least ``2γ + 1`` leaves, i.e.
        ``gamma ** depth >= 2 * gamma + 1``.

    Returns
    -------
    LowerBoundPair
        ``G`` (tree: coreness of the root is 1), ``G'`` (tree + leaf clique:
        coreness of the root is >= γ because every node of ``G'`` has degree >= γ),
        and the parameters needed by the experiment harness.
    """
    if gamma < 2:
        raise GraphError(f"gamma must be >= 2, got {gamma}")
    if depth < 1:
        raise GraphError(f"depth must be >= 1, got {depth}")
    if gamma ** depth < 2 * gamma + 1:
        raise GraphError(
            f"gamma**depth = {gamma ** depth} leaves is fewer than the 2*gamma+1 = "
            f"{2 * gamma + 1} required by the construction")
    tree = balanced_tree(gamma, depth)
    leaves = tree_leaves(gamma, depth)
    with_clique = tree.copy()
    for i, u in enumerate(leaves):
        for v in leaves[i + 1:]:
            with_clique.add_edge(u, v, 1.0)
    return LowerBoundPair(tree=tree, tree_with_clique=with_clique, root=0,
                          leaves=leaves, depth=depth, gamma=gamma)


def figure1_triple(num_nodes: int) -> Tuple[Graph, Graph, Graph]:
    """The three Figure I.1 graphs (a), (b), (c) on ``num_nodes`` nodes.

    (b) and (c) break the cycle at two different far-away positions; from node 0's
    ``T``-hop view (for ``T < num_nodes // 2 - 1``) all three are indistinguishable.
    """
    a = figure1_cycle(num_nodes)
    b = figure1_broken_cycle(num_nodes, num_nodes // 2)
    c = figure1_broken_cycle(num_nodes, num_nodes // 2 - 1)
    return a, b, c
