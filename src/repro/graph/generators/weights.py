"""Edge-weight assignment schemes.

All topology generators produce unit weights; the functions here layer weights on
top, covering the regimes discussed by the paper:

* integers polynomial in ``n`` (the CONGEST-friendly case, Section II),
* the NP-hard ``{1, k}`` weight regime of the min-max orientation problem,
* arbitrary positive reals (the ``Λ = R`` case).
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng


def with_unit_weights(graph: Graph) -> Graph:
    """Copy of ``graph`` with every edge weight reset to 1."""
    result = Graph(nodes=graph.nodes())
    for u, v, _ in graph.edges():
        result.add_edge(u, v, 1.0)
    return result


def with_uniform_integer_weights(graph: Graph, low: int = 1, high: int = 10,
                                 *, seed: SeedLike = None) -> Graph:
    """Copy of ``graph`` with integer weights drawn uniformly from ``[low, high]``."""
    if low < 0 or high < low:
        raise GraphError(f"need 0 <= low <= high, got low={low}, high={high}")
    rng = ensure_rng(seed)
    result = Graph(nodes=graph.nodes())
    for u, v, _ in graph.edges():
        result.add_edge(u, v, float(rng.integers(low, high + 1)))
    return result


def with_two_level_weights(graph: Graph, heavy_weight: float = 5.0,
                           heavy_fraction: float = 0.2, *, seed: SeedLike = None) -> Graph:
    """Copy of ``graph`` with weights in ``{1, heavy_weight}``.

    This is the weight regime for which the centralized min-max orientation problem
    is already NP-hard (Section I.B, Asahiro et al.), making it the natural stress
    test for the distributed approximation.
    """
    if heavy_weight <= 0:
        raise GraphError(f"heavy_weight must be positive, got {heavy_weight}")
    if not 0.0 <= heavy_fraction <= 1.0:
        raise GraphError(f"heavy_fraction must be in [0, 1], got {heavy_fraction}")
    rng = ensure_rng(seed)
    result = Graph(nodes=graph.nodes())
    for u, v, _ in graph.edges():
        w = heavy_weight if rng.random() < heavy_fraction else 1.0
        result.add_edge(u, v, w)
    return result


def with_uniform_real_weights(graph: Graph, low: float = 0.5, high: float = 2.0,
                              *, seed: SeedLike = None) -> Graph:
    """Copy of ``graph`` with real weights drawn uniformly from ``[low, high]``."""
    if low < 0 or high < low:
        raise GraphError(f"need 0 <= low <= high, got low={low}, high={high}")
    rng = ensure_rng(seed)
    result = Graph(nodes=graph.nodes())
    for u, v, _ in graph.edges():
        result.add_edge(u, v, float(rng.uniform(low, high)))
    return result


def with_exponential_weights(graph: Graph, mean: float = 1.0, *, seed: SeedLike = None) -> Graph:
    """Copy of ``graph`` with exponentially distributed weights (heavy-ish tail)."""
    if mean <= 0:
        raise GraphError(f"mean must be positive, got {mean}")
    rng = ensure_rng(seed)
    result = Graph(nodes=graph.nodes())
    for u, v, _ in graph.edges():
        result.add_edge(u, v, float(rng.exponential(mean)) + 1e-9)
    return result
