"""Synthetic stand-in dataset registry.

The full version of the paper reports experiments on real-world SNAP graphs.  Those
datasets cannot be downloaded in this offline environment, so the registry below
provides **seeded synthetic stand-ins** whose structural knobs (degree skew,
clustering, community structure, density) are calibrated to the classes of graphs
used in the k-core / densest-subgraph literature:

=================  =============================================  =========================
Registry name      Stand-in for                                   Generator
=================  =============================================  =========================
``collab-small``   small collaboration network (ca-GrQc-like)     powerlaw-cluster
``collab-medium``  medium collaboration network (ca-AstroPh-like) powerlaw-cluster
``social-ba``      social/follower network (skewed degrees)       Barabási–Albert
``web-rmat``       web-like graph (heavy-tailed, self-similar)    R-MAT
``communities``    ground-truth community network (email-Eu-like) planted partition
``p2p-sparse``     peer-to-peer overlay (Gnutella-like)           Erdős–Rényi G(n, m)
``road-grid``      road-network-like high-diameter graph          2-D grid
``caveman``        tightly clustered social graph                 relaxed caveman
=================  =============================================  =========================

Every entry is deterministic (fixed seed) so experiment tables are reproducible.
``load_dataset(name, weighted=...)`` optionally layers integer weights on top, which
is the regime used by the weighted experiments (E3, E5).

The substitution is documented in DESIGN.md §5: the paper's empirical claim concerns
the convergence speed of the peeling process on skewed-degree, community-structured
graphs, which these models reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.generators.community import planted_partition, relaxed_caveman
from repro.graph.generators.random_graphs import (
    barabasi_albert,
    erdos_renyi_gnm,
    powerlaw_cluster,
)
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.structured import grid_graph
from repro.graph.generators.weights import with_uniform_integer_weights


@dataclass(frozen=True)
class DatasetSpec:
    """A named, seeded synthetic dataset."""

    name: str
    description: str
    builder: Callable[[], Graph]
    category: str  #: "small" (unit tests / quick benches) or "medium" (full benches)


def _registry() -> Dict[str, DatasetSpec]:
    return {
        "collab-small": DatasetSpec(
            name="collab-small",
            description="Small collaboration-network stand-in (powerlaw-cluster, n=400, m~1.5k)",
            builder=lambda: powerlaw_cluster(400, 4, 0.3, seed=101),
            category="small",
        ),
        "collab-medium": DatasetSpec(
            name="collab-medium",
            description="Medium collaboration-network stand-in (powerlaw-cluster, n=3000, m~12k)",
            builder=lambda: powerlaw_cluster(3000, 4, 0.25, seed=102),
            category="medium",
        ),
        "social-ba": DatasetSpec(
            name="social-ba",
            description="Follower-network stand-in (Barabasi-Albert, n=2000, m~6k)",
            builder=lambda: barabasi_albert(2000, 3, seed=103),
            category="medium",
        ),
        "web-rmat": DatasetSpec(
            name="web-rmat",
            description="Web-graph stand-in (R-MAT scale 10, edge factor 6)",
            builder=lambda: rmat_graph(10, 6, seed=104),
            category="medium",
        ),
        "communities": DatasetSpec(
            name="communities",
            description="Ground-truth community stand-in (planted partition, 8 blocks of 50)",
            builder=lambda: planted_partition(8, 50, 0.30, 0.01, seed=105),
            category="small",
        ),
        "p2p-sparse": DatasetSpec(
            name="p2p-sparse",
            description="Peer-to-peer overlay stand-in (G(n, m), n=1500, m=4500)",
            builder=lambda: erdos_renyi_gnm(1500, 4500, seed=106),
            category="medium",
        ),
        "road-grid": DatasetSpec(
            name="road-grid",
            description="Road-network-like high-diameter stand-in (40x40 grid)",
            builder=lambda: grid_graph(40, 40),
            category="small",
        ),
        "caveman": DatasetSpec(
            name="caveman",
            description="Tightly clustered social stand-in (relaxed caveman, 20 cliques of 12)",
            builder=lambda: relaxed_caveman(20, 12, 0.15, seed=107),
            category="small",
        ),
    }


def list_datasets(category: Optional[str] = None) -> List[str]:
    """Names of the registered datasets, optionally filtered by category."""
    specs = _registry()
    if category is None:
        return sorted(specs)
    return sorted(name for name, spec in specs.items() if spec.category == category)


def dataset_info(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` registered under ``name``."""
    specs = _registry()
    if name not in specs:
        raise GraphError(f"unknown dataset {name!r}; available: {sorted(specs)}")
    return specs[name]


def load_dataset(name: str, *, weighted: bool = False, weight_seed: int = 7,
                 weight_high: int = 10) -> Graph:
    """Build the named dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    weighted:
        When ``True`` layer uniform integer weights in ``[1, weight_high]`` on top of
        the unit-weight topology (deterministic given ``weight_seed``).
    """
    spec = dataset_info(name)
    graph = spec.builder()
    if weighted:
        graph = with_uniform_integer_weights(graph, 1, weight_high, seed=weight_seed)
    return graph
