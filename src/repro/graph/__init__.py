"""Graph substrate: weighted undirected graphs, CSR views, quotient graphs,
structural properties, serialisation, generators and the synthetic dataset registry."""

from repro.graph.builders import (
    graph_from_adjacency_matrix,
    graph_from_edges,
    graph_from_networkx,
    graph_to_adjacency_matrix,
    graph_to_networkx,
    with_weights,
)
from repro.graph.csr import (
    CSRAdjacency,
    csr_fingerprint,
    csr_subset_density,
    graph_fingerprint,
    graph_to_csr,
)
from repro.graph.datasets import DatasetSpec, dataset_info, list_datasets, load_dataset
from repro.graph.delta import (
    GraphDelta,
    apply_delta,
    chain_fingerprint,
    changed_labels,
)
from repro.graph.mmap_csr import (
    MappedCSR,
    csr_edge_bytes,
    materialize_csr,
    mmap_csr,
    open_mapped_csr,
)
from repro.graph.graph import Graph
from repro.graph.io import (
    from_dict,
    read_edge_list,
    read_json,
    to_dict,
    write_edge_list,
    write_json,
)
from repro.graph.properties import (
    bfs_distances,
    connected_components,
    count_triangles,
    degeneracy_ordering,
    degree_statistics,
    eccentricity,
    hop_diameter,
    is_connected,
)
from repro.graph.quotient import induced_subgraph, quotient_graph

__all__ = [
    "Graph",
    "CSRAdjacency",
    "csr_fingerprint",
    "csr_subset_density",
    "graph_fingerprint",
    "graph_to_csr",
    "GraphDelta",
    "apply_delta",
    "chain_fingerprint",
    "changed_labels",
    "MappedCSR",
    "csr_edge_bytes",
    "materialize_csr",
    "mmap_csr",
    "open_mapped_csr",
    "graph_from_adjacency_matrix",
    "graph_from_edges",
    "graph_from_networkx",
    "graph_to_adjacency_matrix",
    "graph_to_networkx",
    "with_weights",
    "DatasetSpec",
    "dataset_info",
    "list_datasets",
    "load_dataset",
    "from_dict",
    "read_edge_list",
    "read_json",
    "to_dict",
    "write_edge_list",
    "write_json",
    "bfs_distances",
    "connected_components",
    "count_triangles",
    "degeneracy_ordering",
    "degree_statistics",
    "eccentricity",
    "hop_diameter",
    "is_connected",
    "induced_subgraph",
    "quotient_graph",
]
