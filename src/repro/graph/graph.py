"""Weighted undirected graph with self-loops.

This is the central data structure of the reproduction.  It mirrors the paper's
Section II terminology:

* edges are 2-subsets ``{u, v}`` of the node set, carrying a non-negative weight;
* **self-loops** (singleton edges ``{v}``) are first-class citizens because quotient
  graphs (Definition II.2) turn edges leaving a removed block into self-loops;
* the *weighted degree* of ``v`` is the sum of the weights of the edges containing
  ``v`` — a self-loop contributes its weight **once**;
* ``N(v)`` — the neighbours of ``v`` — excludes ``v`` itself;
* the *density* of ``S ⊆ V`` is ``w(E(S)) / |S|`` where ``E(S)`` is the set of edges
  fully contained in ``S`` (self-loops at nodes of ``S`` included).

The adjacency is stored as a dict-of-dicts which keeps node insertion order, making
iteration deterministic.  For the vectorised engines the graph can be converted to a
:class:`repro.graph.csr.CSRAdjacency`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node]
WeightedEdge = Tuple[Node, Node, float]


class Graph:
    """An undirected, edge-weighted multigraph-free graph with self-loops.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, weight)`` tuples.  Unweighted
        pairs get weight ``1.0``.  Repeated edges accumulate their weights (this is
        the semantics required by quotient-graph construction).
    nodes:
        Optional iterable of nodes to add up-front (isolated nodes are allowed and
        meaningful: their coreness and maximal density are 0).
    """

    # __weakref__ lets long-lived registries (the serve layer's per-graph
    # lock map) hold graphs weakly instead of pinning them forever.
    __slots__ = ("_adj", "_loops", "_num_edges", "_total_weight", "__weakref__")

    def __init__(self, edges: Optional[Iterable[Sequence]] = None,
                 nodes: Optional[Iterable[Node]] = None) -> None:
        # _adj[v] maps neighbour u != v to the edge weight w({u, v}).
        self._adj: Dict[Node, Dict[Node, float]] = {}
        # _loops[v] is the total self-loop weight at v (only present if > 0 was added).
        self._loops: Dict[Node, float] = {}
        self._num_edges: int = 0
        self._total_weight: float = 0.0
        if nodes is not None:
            for v in nodes:
                self.add_node(v)
        if edges is not None:
            for item in edges:
                if len(item) == 2:
                    u, v = item
                    self.add_edge(u, v, 1.0)
                elif len(item) == 3:
                    u, v, w = item
                    self.add_edge(u, v, float(w))
                else:
                    raise GraphError(f"edge tuples must have 2 or 3 entries, got {item!r}")

    # ------------------------------------------------------------------ nodes
    def add_node(self, v: Node) -> None:
        """Add an isolated node (no-op if it already exists)."""
        if v not in self._adj:
            self._adj[v] = {}

    def has_node(self, v: Node) -> bool:
        """Whether ``v`` is a node of the graph."""
        return v in self._adj

    def remove_node(self, v: Node) -> None:
        """Remove ``v`` together with all incident edges (including its self-loop)."""
        if v not in self._adj:
            raise GraphError(f"cannot remove unknown node {v!r}")
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        if v in self._loops:
            self._total_weight -= self._loops.pop(v)
            self._num_edges -= 1
        del self._adj[v]

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n = |V|``."""
        return len(self._adj)

    # ------------------------------------------------------------------ edges
    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge ``{u, v}``.

        Self-loops are allowed (``u == v``).  Adding an edge twice accumulates the
        weights, matching the quotient-graph semantics of Definition II.2.
        """
        w = float(weight)
        if w < 0:
            raise GraphError(f"edge weights must be non-negative, got {w!r} for ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        if u == v:
            if v in self._loops:
                self._loops[v] += w
            else:
                self._loops[v] = w
                self._num_edges += 1
            self._total_weight += w
            return
        if v in self._adj[u]:
            self._adj[u][v] += w
            self._adj[v][u] += w
        else:
            self._adj[u][v] = w
            self._adj[v][u] = w
            self._num_edges += 1
        self._total_weight += w

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}`` entirely (whatever its accumulated weight)."""
        if u == v:
            if u not in self._loops:
                raise GraphError(f"no self-loop at {u!r}")
            self._total_weight -= self._loops.pop(u)
            self._num_edges -= 1
            return
        try:
            w = self._adj[u].pop(v)
            self._adj[v].pop(u)
        except KeyError as exc:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from exc
        self._total_weight -= w
        self._num_edges -= 1

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the edge ``{u, v}`` (or self-loop when ``u == v``) exists."""
        if u == v:
            return u in self._loops
        return u in self._adj and v in self._adj[u]

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of the edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if u == v:
            if u not in self._loops:
                raise GraphError(f"no self-loop at {u!r}")
            return self._loops[u]
        try:
            return self._adj[u][v]
        except KeyError as exc:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from exc

    def edges(self, data: bool = True) -> Iterator:
        """Iterate over edges once each.

        Non-loop edges are yielded as ``(u, v, w)`` with ``u`` appearing before ``v``
        in insertion order; self-loops as ``(v, v, w)``.  With ``data=False`` the
        weight is omitted.
        """
        seen_index = {v: i for i, v in enumerate(self._adj)}
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if seen_index[u] < seen_index[v]:
                    yield (u, v, w) if data else (u, v)
        for v, w in self._loops.items():
            yield (v, v, w) if data else (v, v)

    @property
    def num_edges(self) -> int:
        """Number of edges (self-loops counted once each)."""
        return self._num_edges

    @property
    def total_weight(self) -> float:
        """Total edge weight ``w(E)`` (self-loops counted once each)."""
        return self._total_weight

    # ------------------------------------------------------------- neighbours
    def neighbors(self, v: Node) -> Iterator[Node]:
        """Iterate over ``N(v)`` — the neighbours of ``v`` excluding ``v`` itself."""
        try:
            return iter(self._adj[v])
        except KeyError as exc:
            raise GraphError(f"unknown node {v!r}") from exc

    def neighbor_weights(self, v: Node) -> Mapping[Node, float]:
        """Read-only view of ``{u: w({u, v}) for u in N(v)}``."""
        try:
            return self._adj[v]
        except KeyError as exc:
            raise GraphError(f"unknown node {v!r}") from exc

    def degree(self, v: Node) -> float:
        """Weighted degree ``deg(v)``: edge weights incident to ``v``, loops counted once."""
        try:
            nbrs = self._adj[v]
        except KeyError as exc:
            raise GraphError(f"unknown node {v!r}") from exc
        return sum(nbrs.values()) + self._loops.get(v, 0.0)

    def unweighted_degree(self, v: Node) -> int:
        """Number of incident edges (self-loop counted once)."""
        try:
            nbrs = self._adj[v]
        except KeyError as exc:
            raise GraphError(f"unknown node {v!r}") from exc
        return len(nbrs) + (1 if v in self._loops else 0)

    def self_loop_weight(self, v: Node) -> float:
        """Total self-loop weight at ``v`` (0.0 if there is none)."""
        if v not in self._adj:
            raise GraphError(f"unknown node {v!r}")
        return self._loops.get(v, 0.0)

    def degrees(self) -> Dict[Node, float]:
        """Weighted degrees of all nodes as a dict."""
        return {v: self.degree(v) for v in self._adj}

    # ------------------------------------------------------------------ density
    def density(self) -> float:
        """Average-degree density ``ρ(V) = w(E) / |V|`` of the whole graph."""
        if self.num_nodes == 0:
            raise GraphError("density of the empty graph is undefined")
        return self._total_weight / self.num_nodes

    def subset_weight(self, subset: Iterable[Node]) -> float:
        """Total weight ``w(E(S))`` of edges fully contained in ``subset``."""
        nodes = set(subset)
        for v in nodes:
            if v not in self._adj:
                raise GraphError(f"unknown node {v!r} in subset")
        total = 0.0
        for v in nodes:
            for u, w in self._adj[v].items():
                if u in nodes:
                    total += w
        total /= 2.0  # each non-loop internal edge counted from both endpoints
        for v in nodes:
            total += self._loops.get(v, 0.0)
        return total

    def subset_density(self, subset: Iterable[Node]) -> float:
        """Density ``ρ(S) = w(E(S)) / |S|`` of a non-empty subset ``S``."""
        nodes = set(subset)
        if not nodes:
            raise GraphError("density of the empty subset is undefined")
        return self.subset_weight(nodes) / len(nodes)

    # ----------------------------------------------------------------- copies
    def copy(self) -> "Graph":
        """Deep copy of the graph (weights copied by value)."""
        g = Graph()
        for v in self._adj:
            g.add_node(v)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def is_unit_weighted(self, tol: float = 1e-12) -> bool:
        """Whether every edge (including self-loops) has weight 1 up to ``tol``."""
        return all(abs(w - 1.0) <= tol for _, _, w in self.edges())

    def relabeled_to_integers(self) -> Tuple["Graph", Dict[Node, int]]:
        """Return an isomorphic graph on ``{0, ..., n-1}`` plus the relabelling map."""
        mapping = {v: i for i, v in enumerate(self._adj)}
        g = Graph(nodes=range(self.num_nodes))
        for u, v, w in self.edges():
            g.add_edge(mapping[u], mapping[v], w)
        return g, mapping

    # ------------------------------------------------------------------ dunder
    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Graph(n={self.num_nodes}, m={self.num_edges}, "
                f"w(E)={self._total_weight:.4g})")

    def __eq__(self, other: object) -> bool:
        """Structural equality: same node set, same edges, same weights."""
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        if self._num_edges != other._num_edges:
            return False
        for u, v, w in self.edges():
            if not other.has_edge(u, v):
                return False
            if abs(other.edge_weight(u, v) - w) > 1e-12:
                return False
        return True

    def __hash__(self) -> int:  # Graphs are mutable: identity hash only.
        return id(self)
