"""Compressed-sparse-row view of a :class:`~repro.graph.graph.Graph`.

The faithful per-node simulator (:mod:`repro.distsim`) exchanges Python objects and
is the reference implementation of the paper's protocols.  For larger graphs the
library also ships *vectorised engines* that execute exactly the same synchronous
rounds with NumPy array operations; those engines consume this CSR view.

The CSR view stores, for a graph relabelled to ``0..n-1``:

* ``indptr`` / ``indices`` / ``weights`` — the usual CSR arrays of the (loop-free)
  adjacency, symmetric (each non-loop edge appears in both rows);
* ``loops``   — per-node total self-loop weight;
* ``degrees`` — per-node weighted degree (loops counted once), precomputed because
  every protocol starts from it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class CSRAdjacency:
    """Immutable CSR arrays for a weighted undirected graph on ``0..n-1``."""

    indptr: np.ndarray      #: int64, shape (n + 1,)
    indices: np.ndarray     #: int64, shape (2m',) where m' = number of non-loop edges
    weights: np.ndarray     #: float64, aligned with ``indices``
    loops: np.ndarray       #: float64, shape (n,), self-loop weight per node
    node_order: Tuple[Hashable, ...]  #: original node label for each integer id

    # --------------------------------------------------------------- properties
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def num_directed_entries(self) -> int:
        """Number of stored (directed) adjacency entries, i.e. ``2 * #non-loop edges``."""
        return len(self.indices)

    def degrees(self) -> np.ndarray:
        """Weighted degrees (self-loops counted once) as a float64 array."""
        n = self.num_nodes
        deg = np.zeros(n, dtype=np.float64)
        np.add.at(deg, np.repeat(np.arange(n), np.diff(self.indptr)), self.weights)
        return deg + self.loops

    def neighbors(self, v: int) -> np.ndarray:
        """Integer ids of the neighbours of ``v`` (excluding ``v``)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def label_of(self, v: int) -> Hashable:
        """Original node label of integer id ``v``."""
        return self.node_order[v]

    def labels(self) -> Tuple[Hashable, ...]:
        """Original node labels indexed by integer id."""
        return self.node_order

    def to_graph(self) -> Graph:
        """Rebuild a :class:`Graph` (with original labels) from the CSR arrays."""
        g = Graph(nodes=self.node_order)
        n = self.num_nodes
        for u in range(n):
            lu = self.node_order[u]
            start, stop = self.indptr[u], self.indptr[u + 1]
            for idx in range(start, stop):
                v = int(self.indices[idx])
                if u < v:
                    g.add_edge(lu, self.node_order[v], float(self.weights[idx]))
            if self.loops[u] > 0.0:
                g.add_edge(lu, lu, float(self.loops[u]))
        return g


def graph_to_csr(graph: Graph) -> CSRAdjacency:
    """Convert ``graph`` to a :class:`CSRAdjacency`, relabelling nodes to ``0..n-1``.

    The integer id of a node is its insertion-order index, so the conversion is
    deterministic; the original labels are retained in ``node_order``.
    """
    nodes: List[Hashable] = list(graph.nodes())
    index: Dict[Hashable, int] = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)

    counts = np.zeros(n, dtype=np.int64)
    for v in nodes:
        counts[index[v]] = sum(1 for _ in graph.neighbors(v))
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    indices = np.zeros(int(indptr[-1]), dtype=np.int64)
    weights = np.zeros(int(indptr[-1]), dtype=np.float64)
    cursor = indptr[:-1].copy()
    for v in nodes:
        vi = index[v]
        for u, w in graph.neighbor_weights(v).items():
            pos = cursor[vi]
            indices[pos] = index[u]
            weights[pos] = w
            cursor[vi] += 1

    loops = np.zeros(n, dtype=np.float64)
    for v in nodes:
        loop_w = graph.self_loop_weight(v)
        if loop_w:
            loops[index[v]] = loop_w

    return CSRAdjacency(indptr=indptr, indices=indices, weights=weights,
                        loops=loops, node_order=tuple(nodes))


#: Version prefix mixed into every fingerprint so a change to the hashed
#: representation (array dtypes, label encoding) can never collide with
#: fingerprints minted by an older layout.
_FINGERPRINT_VERSION = b"repro-csr-fingerprint/1\x00"


def csr_fingerprint(csr: CSRAdjacency) -> str:
    """A stable content hash of the graph behind a CSR view (hex, 64 chars).

    Two graphs fingerprint identically exactly when their CSR views agree on
    every array (``indptr`` / ``indices`` / ``weights`` / ``loops``) *and* on
    the node labels in id order — i.e. the same nodes, inserted in the same
    order, with the same edges and weights.  This is the content address of
    the persistent artifact store (:mod:`repro.store`): artifacts saved under
    a fingerprint may be replayed for any graph that hashes to it.

    Labels are hashed through ``type-qualified repr``, so the int node ``1``
    and the string node ``"1"`` fingerprint differently.  Labels whose repr is
    not process-stable (e.g. frozensets of strings under hash randomisation,
    or objects with default reprs) make the fingerprint unstable across
    interpreter runs — the store then treats the graph as new, which costs a
    cold run but never serves wrong artifacts.
    """
    digest = hashlib.sha256()
    digest.update(_FINGERPRINT_VERSION)
    for array, dtype in ((csr.indptr, np.int64), (csr.indices, np.int64),
                         (csr.weights, np.float64), (csr.loops, np.float64)):
        digest.update(np.ascontiguousarray(array, dtype=dtype).tobytes())
    for label in csr.node_order:
        digest.update(f"{type(label).__name__}:{label!r}\x1f".encode("utf-8"))
    return digest.hexdigest()


def graph_fingerprint(graph: Graph) -> str:
    """:func:`csr_fingerprint` of ``graph``'s (freshly built) CSR view.

    Callers that already hold a CSR view — a :class:`~repro.session.Session`
    in particular — should fingerprint that view directly instead of paying
    for a second conversion.
    """
    return csr_fingerprint(graph_to_csr(graph))


def csr_subset_density(csr: CSRAdjacency, mask: np.ndarray) -> float:
    """Density of the node subset selected by the boolean ``mask``.

    Vectorised counterpart of :meth:`Graph.subset_density`, used by the vectorised
    engines and the analysis code.
    """
    if mask.dtype != np.bool_ or mask.shape != (csr.num_nodes,):
        raise GraphError("mask must be a boolean array of shape (num_nodes,)")
    size = int(mask.sum())
    if size == 0:
        raise GraphError("density of the empty subset is undefined")
    rows = np.repeat(np.arange(csr.num_nodes), np.diff(csr.indptr))
    internal = mask[rows] & mask[csr.indices]
    weight = float(csr.weights[internal].sum()) / 2.0 + float(csr.loops[mask].sum())
    return weight / size
