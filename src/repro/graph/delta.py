"""Graph deltas: versioned mutations with chained content fingerprints.

Production graphs mutate constantly, and the elimination process is *local* —
one round only moves a node's value through its neighbourhood — so a small
edit should never force a fully cold re-solve.  This module is the graph-layer
half of that story:

* :class:`GraphDelta` — an immutable, canonicalised batch of mutations
  (edges added / removed / re-weighted, nodes added);
* :func:`apply_delta` — the child graph of a parent and a delta, with a
  deterministic node order (parent nodes keep their insertion order, new
  nodes are appended in the delta's canonical order);
* :func:`changed_labels` — the nodes whose update rule differs between
  parent and child (the seed of the dirty-node frontier in
  :func:`repro.engine.kernels.frontier_trajectory`);
* :func:`chain_fingerprint` — ``child_fp = H(parent_fp, delta)``, the
  lineage address recorded by :class:`repro.store.ArtifactStore` so a chain
  of deltas is cacheable without re-hashing the mutated graph.

A delta is canonicalised at construction (undirected pairs normalised, every
section sorted by type-qualified label repr), so two spellings of the same
mutation batch fingerprint identically *and* apply identically — the chain
fingerprint fully determines the child graph's content fingerprint.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph, Node

#: Version prefix of the chain hash — bumped if the canonical encoding ever
#: changes, so old and new lineage addresses can never collide.
_CHAIN_VERSION = b"repro-delta-chain/1\x00"

#: Wire-format schema tag of :meth:`GraphDelta.to_dict`.
DELTA_SCHEMA = "repro-graph-delta/1"

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")


def _label_key(label: Node) -> Tuple[str, str]:
    """Total order over arbitrary hashable labels (type-qualified repr)."""
    return (type(label).__name__, repr(label))


def _normalise_pair(u: Node, v: Node) -> Tuple[Node, Node]:
    """Canonical endpoint order of the undirected edge ``{u, v}``."""
    return (u, v) if _label_key(u) <= _label_key(v) else (v, u)


def _edge_sort_key(entry: Sequence) -> tuple:
    return tuple(_label_key(x) for x in entry[:2])


def _canonical_edges(entries: Iterable[Sequence], *, weighted: bool,
                     section: str) -> Tuple[tuple, ...]:
    """Normalise, validate and sort one edge section of a delta."""
    canonical = []
    for entry in entries:
        entry = tuple(entry)
        expected = 3 if weighted else 2
        if len(entry) != expected:
            raise GraphError(f"{section} entries must have {expected} fields, "
                             f"got {entry!r}")
        u, v = _normalise_pair(entry[0], entry[1])
        if weighted:
            w = float(entry[2])
            if w < 0:
                raise GraphError(f"{section} weights must be non-negative, "
                                 f"got {w!r} for ({u!r}, {v!r})")
            canonical.append((u, v, w))
        else:
            canonical.append((u, v))
    canonical.sort(key=_edge_sort_key)
    for first, second in zip(canonical, canonical[1:]):
        if first[:2] == second[:2]:
            raise GraphError(f"duplicate edge ({first[0]!r}, {first[1]!r}) "
                             f"in {section}")
    return tuple(canonical)


@dataclass(frozen=True)
class GraphDelta:
    """An immutable batch of graph mutations, canonicalised at construction.

    Application semantics (the order :func:`apply_delta` uses):

    1. ``add_nodes`` — new isolated nodes (appending to the node order);
    2. ``remove_edges`` — remove each edge entirely (error if absent);
    3. ``set_weights`` — set an edge's weight to an absolute value, creating
       the edge (and its endpoints) if absent;
    4. ``add_edges`` — accumulate weight onto an edge, creating it (and its
       endpoints) if absent — the same semantics as :meth:`Graph.add_edge`.

    Every section is stored sorted by type-qualified label repr with
    undirected pairs normalised, so equal mutation batches compare, hash and
    apply identically regardless of how the caller spelled them.
    """

    add_edges: Tuple[Tuple[Node, Node, float], ...] = ()
    remove_edges: Tuple[Tuple[Node, Node], ...] = ()
    set_weights: Tuple[Tuple[Node, Node, float], ...] = ()
    add_nodes: Tuple[Node, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "add_edges", _canonical_edges(
            self.add_edges, weighted=True, section="add_edges"))
        object.__setattr__(self, "remove_edges", _canonical_edges(
            self.remove_edges, weighted=False, section="remove_edges"))
        object.__setattr__(self, "set_weights", _canonical_edges(
            self.set_weights, weighted=True, section="set_weights"))
        nodes = sorted(set(self.add_nodes), key=_label_key)
        if len(nodes) != len(tuple(self.add_nodes)):
            raise GraphError("duplicate node in add_nodes")
        object.__setattr__(self, "add_nodes", tuple(nodes))

    # ------------------------------------------------------------------ basics
    @property
    def is_empty(self) -> bool:
        """Whether the delta mutates nothing."""
        return not (self.add_edges or self.remove_edges or self.set_weights
                    or self.add_nodes)

    @property
    def num_operations(self) -> int:
        """Total mutation count across all sections."""
        return (len(self.add_edges) + len(self.remove_edges)
                + len(self.set_weights) + len(self.add_nodes))

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"delta(+{len(self.add_edges)}e -{len(self.remove_edges)}e "
                f"~{len(self.set_weights)}w +{len(self.add_nodes)}n)")

    # --------------------------------------------------------------- wire form
    def to_dict(self) -> dict:
        """JSON-serialisable wire form (labels must be JSON scalars)."""
        return {
            "schema": DELTA_SCHEMA,
            "add_nodes": list(self.add_nodes),
            "add_edges": [[u, v, w] for u, v, w in self.add_edges],
            "remove_edges": [[u, v] for u, v in self.remove_edges],
            "set_weights": [[u, v, w] for u, v, w in self.set_weights],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "GraphDelta":
        """Rebuild a delta from its wire form (:meth:`to_dict`).

        Node labels on the wire are restricted to JSON scalars (``str`` /
        ``int`` / ``float`` / ``bool``) — richer labels exist only in-process.
        """
        if not isinstance(doc, dict):
            raise GraphError(f"delta document must be an object, got "
                             f"{type(doc).__name__}")
        schema = doc.get("schema", DELTA_SCHEMA)
        if schema != DELTA_SCHEMA:
            raise GraphError(f"unknown delta schema {schema!r} "
                             f"(expected {DELTA_SCHEMA!r})")
        unknown = set(doc) - {"schema", "add_nodes", "add_edges",
                              "remove_edges", "set_weights"}
        if unknown:
            raise GraphError(f"unknown delta fields: {sorted(unknown)}")

        def check_labels(entries, arity):
            for entry in entries:
                if not isinstance(entry, (list, tuple)) or len(entry) != arity:
                    raise GraphError(f"delta edge entries must be "
                                     f"{arity}-element arrays, got {entry!r}")
                for label in entry[:2]:
                    if not isinstance(label, (str, int, float, bool)):
                        raise GraphError(f"wire labels must be JSON scalars, "
                                         f"got {label!r}")
            return entries

        for label in doc.get("add_nodes", ()):
            if not isinstance(label, (str, int, float, bool)):
                raise GraphError(f"wire labels must be JSON scalars, "
                                 f"got {label!r}")
        return cls(
            add_edges=check_labels(doc.get("add_edges", ()), 3),
            remove_edges=check_labels(doc.get("remove_edges", ()), 2),
            set_weights=check_labels(doc.get("set_weights", ()), 3),
            add_nodes=tuple(doc.get("add_nodes", ())),
        )


def apply_delta(graph: Graph, delta: GraphDelta) -> Graph:
    """The child graph of ``graph`` and ``delta`` (the parent is untouched).

    Node order is deterministic: parent nodes keep their insertion order
    (so their CSR integer ids are stable across the delta — what the
    frontier-restricted re-solve relies on), new nodes are appended in the
    delta's canonical order of first appearance.
    """
    child = graph.copy()
    for v in delta.add_nodes:
        child.add_node(v)
    for u, v in delta.remove_edges:
        child.remove_edge(u, v)  # raises GraphError if absent
    for u, v, w in delta.set_weights:
        if child.has_edge(u, v):
            child.remove_edge(u, v)
        child.add_edge(u, v, w)
    for u, v, w in delta.add_edges:
        child.add_edge(u, v, w)
    return child


def changed_labels(delta: GraphDelta) -> Set[Node]:
    """Nodes whose update rule differs between parent and child.

    These are the endpoints of every touched edge plus explicitly added
    nodes: their neighbourhood (or self-loop weight) changed, so their
    per-round update can never be copied from the parent trajectory — they
    seed (and permanently stay in) the dirty-node frontier.
    """
    touched: Set[Node] = set(delta.add_nodes)
    for u, v, _ in delta.add_edges:
        touched.add(u)
        touched.add(v)
    for u, v in delta.remove_edges:
        touched.add(u)
        touched.add(v)
    for u, v, _ in delta.set_weights:
        touched.add(u)
        touched.add(v)
    return touched


def chain_fingerprint(parent_fingerprint: str, delta: GraphDelta) -> str:
    """The lineage address ``H(parent_fp, delta)`` (hex, 64 chars).

    Deterministic in the delta's canonical form: two spellings of the same
    mutation batch chain to the same child fingerprint.  Because the delta
    also *applies* in canonical order, the chain fingerprint fully determines
    the child graph's content fingerprint — the pair is what
    :meth:`repro.store.ArtifactStore.record_lineage` persists.

    ``parent_fingerprint`` may itself be a chain fingerprint (a chain of
    deltas) or a plain content fingerprint (the chain's root).
    """
    if not isinstance(parent_fingerprint, str) \
            or not _FINGERPRINT_RE.match(parent_fingerprint):
        raise GraphError(f"parent fingerprint must be 64 hex chars, "
                         f"got {parent_fingerprint!r}")
    digest = hashlib.sha256()
    digest.update(_CHAIN_VERSION)
    digest.update(parent_fingerprint.encode("ascii"))

    def feed_label(label):
        digest.update(f"{type(label).__name__}:{label!r}\x1f".encode("utf-8"))

    for section, entries in (("add_nodes", delta.add_nodes),
                             ("remove_edges", delta.remove_edges),
                             ("set_weights", delta.set_weights),
                             ("add_edges", delta.add_edges)):
        digest.update(f"\x1e{section}\x1e".encode("ascii"))
        for entry in entries:
            if section == "add_nodes":
                feed_label(entry)
                continue
            feed_label(entry[0])
            feed_label(entry[1])
            if len(entry) == 3:
                digest.update(repr(float(entry[2])).encode("ascii"))
            digest.update(b"\x1f")
    return digest.hexdigest()
