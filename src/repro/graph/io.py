"""Graph serialisation: weighted edge lists and a JSON container format.

The edge-list format is the de-facto standard of the graph-mining literature (one
``u v [w]`` triple per line, ``#`` comments allowed), so synthetic stand-in datasets
written by this library can be swapped for real SNAP downloads without code changes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike, *, write_weights: bool = True,
                    header: str = "") -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Node labels are written with ``str``; isolated nodes are recorded in a trailing
    ``# isolated:`` comment so that a round-trip preserves the node set exactly.
    """
    path = Path(path)
    lines = []
    if header:
        for h in header.splitlines():
            lines.append(f"# {h}")
    lines.append(f"# nodes={graph.num_nodes} edges={graph.num_edges}")
    touched = set()
    for u, v, w in graph.edges():
        touched.add(u)
        touched.add(v)
        if write_weights:
            lines.append(f"{u} {v} {w:.12g}")
        else:
            lines.append(f"{u} {v}")
    isolated = [str(v) for v in graph.nodes() if v not in touched]
    if isolated:
        lines.append("# isolated: " + " ".join(isolated))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _parse_label(token: str):
    """Parse a node label: integers stay integers, everything else stays a string."""
    try:
        return int(token)
    except ValueError:
        return token


def parse_edge_list(text: str, *, default_weight: float = 1.0) -> Graph:
    """Parse edge-list *text* (the format of :func:`write_edge_list`).

    The in-memory twin of :func:`read_edge_list`, shared with transports that
    receive the bytes over a socket instead of a file (the HTTP graph upload
    of :mod:`repro.serve.http`).
    """
    graph = Graph()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# isolated:"):
                for token in line[len("# isolated:"):].split():
                    graph.add_node(_parse_label(token))
            continue
        parts = line.split()
        if len(parts) == 2:
            u, v = parts
            graph.add_edge(_parse_label(u), _parse_label(v), default_weight)
        elif len(parts) == 3:
            u, v, w = parts
            graph.add_edge(_parse_label(u), _parse_label(v), float(w))
        else:
            raise GraphError(f"malformed edge-list line: {raw!r}")
    return graph


def read_edge_list(path: PathLike, *, default_weight: float = 1.0) -> Graph:
    """Read a whitespace-separated edge list written by :func:`write_edge_list`.

    Also accepts plain SNAP-style files (``u v`` per line, ``#`` comments).  Repeated
    edges accumulate weight, consistently with :meth:`Graph.add_edge`.
    """
    return parse_edge_list(Path(path).read_text(encoding="utf-8"),
                           default_weight=default_weight)


def to_dict(graph: Graph) -> dict:
    """JSON-serialisable dict representation (labels stringified)."""
    return {
        "format": "repro-graph-v1",
        "nodes": [str(v) for v in graph.nodes()],
        "edges": [[str(u), str(v), w] for u, v, w in graph.edges()],
    }


def from_dict(payload: dict) -> Graph:
    """Inverse of :func:`to_dict` (node labels come back as strings or ints)."""
    if payload.get("format") != "repro-graph-v1":
        raise GraphError(f"unsupported graph payload format: {payload.get('format')!r}")
    graph = Graph(nodes=(_parse_label(v) for v in payload["nodes"]))
    for u, v, w in payload["edges"]:
        graph.add_edge(_parse_label(u), _parse_label(v), float(w))
    return graph


def write_json(graph: Graph, path: PathLike) -> None:
    """Write the JSON container format."""
    Path(path).write_text(json.dumps(to_dict(graph)), encoding="utf-8")


def read_json(path: PathLike) -> Graph:
    """Read the JSON container format."""
    return from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
