"""Structural graph properties used across the library.

Connected components, BFS distances, (hop-)diameter estimation, degeneracy ordering
and a couple of degree statistics.  These are all centralized helpers: the
*distributed* algorithms never call them — they exist for workload characterisation,
for the baselines and for the analysis of experiment results (e.g. "round complexity
independent of the diameter" requires knowing the diameter of the workload graphs).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph, Node


def connected_components(graph: Graph) -> List[List[Node]]:
    """Connected components as lists of nodes, in order of discovery."""
    seen: set = set()
    components: List[List[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: List[Node] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            component.append(v)
            for u in graph.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        components.append(component)
    return components


def bfs_distances(graph: Graph, source: Node) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node (source included, 0)."""
    if not graph.has_node(source):
        raise GraphError(f"unknown source node {source!r}")
    dist: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def eccentricity(graph: Graph, source: Node) -> int:
    """Largest hop distance from ``source`` within its connected component."""
    return max(bfs_distances(graph, source).values())


def hop_diameter(graph: Graph, exact: bool = True, sample_size: int = 16,
                 seed: Optional[int] = 0) -> int:
    """Hop diameter of the graph (largest eccentricity over its components).

    Parameters
    ----------
    exact:
        When ``True`` (default) run a BFS from every node — O(n·m), fine for the
        workload sizes used in tests and benchmarks.  When ``False`` use the classic
        double-sweep lower bound from a few sampled sources, which is much faster and
        typically exact on the power-law graphs used here.
    sample_size:
        Number of BFS sources when ``exact=False``.
    seed:
        Seed for the sampling in the approximate mode.
    """
    import numpy as np

    nodes = list(graph.nodes())
    if not nodes:
        raise GraphError("diameter of the empty graph is undefined")
    if exact:
        return max(eccentricity(graph, v) for v in nodes)
    rng = np.random.default_rng(seed)
    best = 0
    sources = [nodes[int(i)] for i in rng.integers(0, len(nodes), size=min(sample_size, len(nodes)))]
    for src in sources:
        dist = bfs_distances(graph, src)
        far = max(dist, key=dist.get)
        best = max(best, max(bfs_distances(graph, far).values()))
    return best


def degeneracy_ordering(graph: Graph) -> Tuple[List[Node], int]:
    """Unweighted degeneracy ordering and the degeneracy (max core number).

    Repeatedly removes a node of minimum *unweighted* degree.  Returned order is the
    removal order; the degeneracy is the maximum, over removals, of the degree at
    removal time.  Self-loops are ignored here (they do not affect unweighted
    degeneracy in the usual convention).
    """
    degrees = {v: sum(1 for _ in graph.neighbors(v)) for v in graph.nodes()}
    remaining = dict(degrees)
    # Bucket queue over integer degrees.
    max_deg = max(remaining.values(), default=0)
    buckets: List[set] = [set() for _ in range(max_deg + 1)]
    for v, d in remaining.items():
        buckets[d].add(v)
    order: List[Node] = []
    degeneracy = 0
    removed: set = set()
    pointer = 0
    n = graph.num_nodes
    while len(order) < n:
        while pointer <= max_deg and not buckets[pointer]:
            pointer += 1
        if pointer > max_deg:
            break
        v = buckets[pointer].pop()
        order.append(v)
        removed.add(v)
        degeneracy = max(degeneracy, pointer)
        for u in graph.neighbors(v):
            if u in removed:
                continue
            d = remaining[u]
            buckets[d].discard(u)
            remaining[u] = d - 1
            buckets[d - 1].add(u)
        pointer = max(pointer - 1, 0)
    return order, degeneracy


def degree_statistics(graph: Graph) -> Dict[str, float]:
    """Summary statistics of the weighted degree distribution."""
    degs = [graph.degree(v) for v in graph.nodes()]
    if not degs:
        raise GraphError("degree statistics of the empty graph are undefined")
    degs_sorted = sorted(degs)
    n = len(degs_sorted)
    return {
        "min": degs_sorted[0],
        "max": degs_sorted[-1],
        "mean": sum(degs_sorted) / n,
        "median": degs_sorted[n // 2] if n % 2 == 1 else
                  0.5 * (degs_sorted[n // 2 - 1] + degs_sorted[n // 2]),
    }


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_nodes == 0:
        return True
    return len(connected_components(graph)) == 1


def count_triangles(graph: Graph) -> int:
    """Number of triangles (used only for workload characterisation)."""
    index = {v: i for i, v in enumerate(graph.nodes())}
    count = 0
    for v in graph.nodes():
        nbrs_v = [u for u in graph.neighbors(v) if index[u] > index[v]]
        nbr_set = set(nbrs_v)
        for u in nbrs_v:
            for w in graph.neighbors(u):
                if index[w] > index[u] and w in nbr_set:
                    count += 1
    return count
