"""Out-of-core CSR storage: graph arrays as memory-mapped files on disk.

The in-memory :class:`~repro.graph.csr.CSRAdjacency` holds ``indptr`` /
``indices`` / ``weights`` / ``loops`` as NumPy arrays; for graphs whose edge
arrays exceed RAM the execution engines instead *map* those arrays from disk.
This module materialises a CSR view once as raw little-endian array files and
reopens them as read-only ``np.memmap`` views:

    <root>/
      <fingerprint>/            # the store's content address (64 hex chars)
        csr/
          meta.json             # schema, fingerprint, dtypes, shapes, byte sizes
          indptr.bin            # int64,   shape (n + 1,)
          indices.bin           # int64,   shape (2m',)
          weights.bin           # float64, aligned with indices
          loops.bin             # float64, shape (n,)

The layout deliberately shares the per-fingerprint directory of
:class:`repro.store.ArtifactStore` (``<root>/<fingerprint>/``), so a session
with a persistent store spills its CSR arrays next to the trajectories they
produce, and ``repro cache ls`` accounts for both.

Guarantees:

* **written once, revalidated by fingerprint** — :func:`materialize_csr` is a
  no-op when ``meta.json`` already names the same fingerprint and every array
  file has exactly the advertised byte size; anything else (missing file,
  truncation, foreign fingerprint, unparseable metadata) triggers a full
  rewrite, so a corrupted directory can cost a rewrite, never a wrong answer;
* **atomic publication** — every file goes to a same-directory temp name and
  is published with ``os.replace``; ``meta.json`` is written *last*, so a
  directory with valid metadata always has complete arrays;
* **bit-identical execution** — the mapped arrays carry the same dtypes and
  byte order as the in-memory view, so the per-round kernels
  (:mod:`repro.engine.kernels`) produce bit-identical trajectories whether
  their operands live in RAM, shared memory or a mapped file (the cross-engine
  equivalence suite pins this).

Concurrent mappers of one fingerprint are safe: writers only ever publish
complete files under the same content address, and readers that raced a
rewrite re-open identical bytes.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

from repro.errors import StoreError
from repro.graph.csr import CSRAdjacency, csr_fingerprint

#: Name of the per-fingerprint subdirectory holding the mapped arrays.
CSR_DIR_NAME = "csr"

#: Schema stamp embedded in (and required of) every ``meta.json``.
MMAP_SCHEMA_VERSION = "repro-csr-mmap/1"

#: The four CSR arrays that are materialised, with their canonical
#: little-endian dtypes (matching :class:`CSRAdjacency` exactly).
CSR_ARRAYS: Tuple[Tuple[str, str], ...] = (
    ("indptr", "<i8"),
    ("indices", "<i8"),
    ("weights", "<f8"),
    ("loops", "<f8"),
)

_HEX_DIGITS = frozenset("0123456789abcdef")


def is_fingerprint(fingerprint) -> bool:
    """Whether ``fingerprint`` is a well-formed CSR content address.

    Exactly 64 lowercase hex characters — the output shape of
    :func:`repro.graph.csr.csr_fingerprint`.  Anything else (prefixes,
    uppercase spellings, arbitrary strings) must be rejected before it touches
    the filesystem, or stray directories pollute the store layout.
    """
    return (isinstance(fingerprint, str) and len(fingerprint) == 64
            and set(fingerprint) <= _HEX_DIGITS)


def csr_edge_bytes(csr) -> int:
    """Bytes of the edge-proportional arrays (``indices`` + ``weights``).

    The spill decision of :class:`~repro.engine.sharded.ShardedEngine` keys on
    this: ``indptr``/``loops`` are O(n) and stay cheap, while the two O(m)
    arrays are what outgrows RAM.
    """
    return int(csr.indices.nbytes) + int(csr.weights.nbytes)


class MappedCSR:
    """Duck-typed CSR view whose arrays are read-only ``np.memmap`` files.

    Carries exactly the attributes the per-round kernels consume (``indptr`` /
    ``indices`` / ``weights`` / ``loops`` plus :attr:`num_nodes`); node labels
    stay with the caller's in-memory view — result assembly never runs on the
    mapped arrays.
    """

    __slots__ = ("indptr", "indices", "weights", "loops", "fingerprint",
                 "directory")

    def __init__(self, indptr, indices, weights, loops, *,
                 fingerprint: str, directory: Path) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.loops = loops
        self.fingerprint = fingerprint
        self.directory = directory

    @property
    def num_nodes(self) -> int:
        """Number of nodes (kernel contract, same as :class:`CSRAdjacency`)."""
        return len(self.indptr) - 1

    @property
    def num_directed_entries(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return len(self.indices)

    def file_specs(self) -> Dict[str, Tuple[str, str, tuple]]:
        """``{array: (path, dtype, shape)}`` for re-opening in another process.

        The process-pool workers of :mod:`repro.engine.shm` receive this
        instead of shared-memory block names: each worker maps the same files
        by path, so the CSR never occupies more than one page-cache copy.
        """
        return {key: (str(self.directory / f"{key}.bin"), dtype,
                      tuple(getattr(self, key).shape))
                for key, dtype in CSR_ARRAYS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MappedCSR n={self.num_nodes} "
                f"entries={self.num_directed_entries} dir={self.directory}>")


def csr_mmap_dir(root, fingerprint: str) -> Path:
    """The directory holding the mapped arrays of ``fingerprint`` under ``root``."""
    if not is_fingerprint(fingerprint):
        raise StoreError(f"not a 64-char hex fingerprint: {fingerprint!r}")
    return Path(root) / fingerprint / CSR_DIR_NAME


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    try:
        tmp.write_bytes(payload)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _atomic_write_array(path: Path, array: np.ndarray, dtype: str) -> int:
    """Write ``array`` as raw little-endian bytes; returns the byte size."""
    data = np.ascontiguousarray(array, dtype=np.dtype(dtype))
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    try:
        data.tofile(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return int(data.nbytes)


def _read_meta(directory: Path) -> dict:
    """The parsed ``meta.json`` of a csr directory, or {} when absent/corrupt."""
    try:
        meta = json.loads((directory / "meta.json").read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return meta if isinstance(meta, dict) else {}


def _meta_matches(directory: Path, meta: dict, fingerprint: str) -> bool:
    """Whether ``meta`` describes a complete, same-fingerprint array set."""
    if (meta.get("schema") != MMAP_SCHEMA_VERSION
            or meta.get("fingerprint") != fingerprint):
        return False
    arrays = meta.get("arrays")
    if not isinstance(arrays, dict):
        return False
    for key, dtype in CSR_ARRAYS:
        spec = arrays.get(key)
        if not isinstance(spec, dict) or spec.get("dtype") != dtype:
            return False
        shape, nbytes = spec.get("shape"), spec.get("nbytes")
        if not isinstance(shape, list) or not isinstance(nbytes, int):
            return False
        try:
            if (directory / f"{key}.bin").stat().st_size != nbytes:
                return False
        except OSError:
            return False
    return True


def materialize_csr(csr: CSRAdjacency, root, *,
                    fingerprint: str = None) -> Tuple[str, Path]:
    """Ensure the arrays of ``csr`` exist on disk; returns ``(fingerprint, dir)``.

    Idempotent by content address: when the directory already holds a valid
    array set for the same fingerprint nothing is written (the write-once
    path), otherwise every array is rewritten atomically and ``meta.json`` is
    published last.  ``fingerprint`` may be passed by callers that already
    computed it (a :class:`~repro.session.Session`); it is trusted to be the
    fingerprint *of this csr* — the content-addressing contract of the store.
    """
    if fingerprint is None:
        fingerprint = csr_fingerprint(csr)
    directory = csr_mmap_dir(root, fingerprint)
    meta = _read_meta(directory)
    if _meta_matches(directory, meta, fingerprint):
        return fingerprint, directory
    directory.mkdir(parents=True, exist_ok=True)
    arrays = {}
    for key, dtype in CSR_ARRAYS:
        data = getattr(csr, key)
        nbytes = _atomic_write_array(directory / f"{key}.bin", data, dtype)
        arrays[key] = {"dtype": dtype, "shape": list(data.shape), "nbytes": nbytes}
    meta = {"schema": MMAP_SCHEMA_VERSION, "fingerprint": fingerprint,
            "n": int(csr.num_nodes), "entries": int(csr.num_directed_entries),
            "arrays": arrays}
    _atomic_write_bytes(directory / "meta.json",
                        (json.dumps(meta, indent=2) + "\n").encode("utf-8"))
    return fingerprint, directory


def open_mapped_csr(root, fingerprint: str) -> MappedCSR:
    """Open the materialised arrays of ``fingerprint`` as a :class:`MappedCSR`.

    Raises :class:`~repro.errors.StoreError` when the directory does not hold
    a valid array set (use :func:`mmap_csr` to materialise-and-open in one
    step).  Zero-length arrays (an edgeless graph) cannot be mmapped by the
    OS and are served as ordinary empty arrays of the right dtype.
    """
    directory = csr_mmap_dir(root, fingerprint)
    meta = _read_meta(directory)
    if not _meta_matches(directory, meta, fingerprint):
        raise StoreError(f"no valid mapped CSR for {fingerprint[:16]}… "
                         f"under {directory}")
    arrays = {}
    for key, dtype in CSR_ARRAYS:
        spec = meta["arrays"][key]
        shape = tuple(spec["shape"])
        arrays[key] = open_array_file(directory / f"{key}.bin", dtype, shape)
    return MappedCSR(**arrays, fingerprint=fingerprint, directory=directory)


def open_array_file(path, dtype: str, shape: tuple) -> np.ndarray:
    """Read-only ``np.memmap`` over one raw array file (shared worker path).

    Zero-length arrays are returned as ordinary empty arrays — the OS rejects
    zero-byte mappings.  Used both by :func:`open_mapped_csr` and by the
    process-pool workers of :mod:`repro.engine.shm`, which re-open the same
    files from a :meth:`MappedCSR.file_specs` spec.
    """
    if int(np.prod(shape, dtype=np.int64)) == 0:
        return np.empty(shape, dtype=np.dtype(dtype))
    try:
        return np.memmap(path, dtype=np.dtype(dtype), mode="r", shape=shape)
    except (OSError, ValueError) as exc:
        raise StoreError(f"cannot map {path}: {exc}") from exc


def mmap_csr(csr: CSRAdjacency, root, *, fingerprint: str = None) -> MappedCSR:
    """Materialise (or revalidate) and open the mapped view of ``csr``."""
    fingerprint, _ = materialize_csr(csr, root, fingerprint=fingerprint)
    return open_mapped_csr(root, fingerprint)
