"""Quotient graphs (Definition II.2) and the induced-subgraph helper.

Given a graph ``G = (V, E, w)`` and a block ``B ⊆ V``, the quotient graph ``G \\ B``
has node set ``V \\ B`` and an edge ``e ∩ (V \\ B)`` for every edge ``e`` not fully
contained in ``B``; weights of coinciding images accumulate.  In particular an edge
``{u, v}`` with ``u ∈ B`` and ``v ∉ B`` becomes a **self-loop** at ``v``.

Quotient graphs are the backbone of the diminishingly-dense decomposition
(Definition II.3), of the exact maximal-density baseline and of the approximation
analysis (Lemma III.3 applies the elimination procedure to ``G_i = G \\ B_{i-1}``).
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.errors import GraphError
from repro.graph.graph import Graph, Node


def quotient_graph(graph: Graph, block: Iterable[Node]) -> Graph:
    """Return the quotient graph ``G \\ B``.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    block:
        The node subset ``B`` to contract away.  Every element must be a node of
        ``G``; ``B`` may be empty (the result is then a copy of ``G``).

    Returns
    -------
    Graph
        A new graph on ``V \\ B``.  Edges fully inside ``B`` disappear, edges
        crossing the boundary become self-loops on their surviving endpoint, edges
        fully outside ``B`` are kept unchanged; weights accumulate on collisions.
    """
    removed: Set[Node] = set(block)
    for v in removed:
        if not graph.has_node(v):
            raise GraphError(f"block contains unknown node {v!r}")
    result = Graph(nodes=(v for v in graph.nodes() if v not in removed))
    for u, v, w in graph.edges():
        u_in, v_in = u in removed, v in removed
        if u_in and v_in:
            continue
        if u_in:
            result.add_edge(v, v, w)
        elif v_in:
            result.add_edge(u, u, w)
        else:
            result.add_edge(u, v, w)
    return result


def induced_subgraph(graph: Graph, subset: Iterable[Node]) -> Graph:
    """Return the subgraph of ``graph`` induced by ``subset``.

    Unlike the quotient graph, edges leaving the subset are dropped entirely (they
    do **not** become self-loops).  Self-loops at retained nodes are kept.
    """
    keep: Set[Node] = set(subset)
    for v in keep:
        if not graph.has_node(v):
            raise GraphError(f"subset contains unknown node {v!r}")
    result = Graph(nodes=(v for v in graph.nodes() if v in keep))
    for u, v, w in graph.edges():
        if u in keep and v in keep:
            result.add_edge(u, v, w)
    return result
