"""Total orders and tie-breaking keys used by the paper's algorithms.

Two places in the paper need a deterministic total order:

* **Algorithm 3 (Update)** sorts neighbours by their current surviving numbers and
  breaks ties by the *lexicographic order on the surviving numbers from all past
  iterations, where more recent iterations have higher priority*, with any remaining
  tie resolved by node identity.  :func:`lexicographic_history_key` builds exactly
  that key.
* **Algorithm 4 (BFS construction)** orders candidate leaders by ``(b_v, v)`` under a
  globally known total order; :func:`total_order_key` builds the corresponding key so
  that ``max()`` over keys picks the paper's leader.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Sequence, Tuple


def lexicographic_history_key(history: Sequence[float], node_id: Hashable,
                              ) -> Tuple[Tuple[float, ...], Hashable]:
    """Tie-breaking key for Algorithm 3's stateful sort.

    Parameters
    ----------
    history:
        The neighbour's surviving numbers observed in past iterations, oldest first.
        The most recent iteration has the highest priority, hence the reversal.
    node_id:
        The neighbour's identity, used as the final tie-breaker.  Node identifiers
        are assumed mutually comparable (the library relabels graphs to integers
        before running protocols, so this always holds in practice).

    Returns
    -------
    tuple
        A key suitable for :func:`sorted`; comparing keys compares the most recent
        surviving numbers first and falls back to the node identity.
    """
    return (tuple(reversed(tuple(history))), node_id)


def total_order_key(b_value: float, node_id: Hashable) -> Tuple[float, Hashable]:
    """Key realising the paper's total order ``⪰`` on pairs ``(v, b_v)``.

    ``(u, b_u) ⪰ (v, b_v)`` iff ``b_u > b_v``, or ``b_u == b_v`` and ``u ⪰ v`` under
    the globally known order on node identities.  With integer node labels the
    natural ``>`` order is used, so the *maximum* key corresponds to the paper's
    maximum element.
    """
    return (b_value, node_id)


def rank_by_value(values: Mapping[Hashable, float]) -> List[Hashable]:
    """The nodes of ``values`` from largest to smallest value, deterministically.

    Ties are broken by the *ascending natural order of the nodes themselves*, so
    integer nodes rank numerically (9 before 10).  Only when the node set mixes
    unorderable types (e.g. ints and strings) does the tie-break fall back to
    the lexicographic order of ``repr(node)`` — the total order is then still
    deterministic, just no longer the natural one.
    """
    nodes = list(values)
    try:
        return sorted(nodes, key=lambda v: (-values[v], v))
    except TypeError:
        return sorted(nodes, key=lambda v: (-values[v], repr(v)))


def stable_node_order(nodes: Sequence[Hashable]) -> List[Hashable]:
    """Nodes in ascending natural order, with the same ``repr`` fallback as
    :func:`rank_by_value` for unorderable mixed-type node sets."""
    nodes = list(nodes)
    try:
        return sorted(nodes)
    except TypeError:
        return sorted(nodes, key=repr)


def argmax_total_order(pairs: Sequence[Tuple[Hashable, float]]) -> Tuple[Hashable, float]:
    """Return the pair ``(v, b_v)`` that is maximal under the total order ``⪰``.

    Used by the BFS-construction protocol to pick the winning leader among the
    candidates heard from neighbours.
    """
    if not pairs:
        raise ValueError("argmax_total_order of an empty sequence is undefined")
    best = pairs[0]
    for node, value in pairs[1:]:
        if (value, node) > (best[1], best[0]):
            best = (node, value)
    return best
