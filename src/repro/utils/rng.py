"""Random-number-generator plumbing.

Every stochastic entry point of the library (graph generators, weight assignment,
fault injection) accepts a ``seed`` argument that may be ``None``, an integer or an
existing :class:`numpy.random.Generator`.  :func:`ensure_rng` normalises all three
into a Generator so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    * ``None``      → a fresh, OS-seeded generator,
    * ``int``       → ``np.random.default_rng(seed)``,
    * ``Generator`` → returned unchanged (shared state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when a workload needs several statistically independent streams (e.g. one
    for topology and one for edge weights) derived from a single user-facing seed.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
