"""JSON serialization helpers for the uniform result protocol.

Every problem result (:mod:`repro.problems`) exposes ``to_dict()`` returning a
structure ``json.dumps`` accepts verbatim.  Node labels are arbitrary hashables,
so per-node maps are emitted as *lists of pairs* rather than str-keyed objects:
a dict keyed by ``str(node)`` would silently merge the int node ``1`` with the
string node ``"1"``, while pairs are collision-free and order-preserving.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping

#: JSON scalar types that pass through :func:`json_node` unchanged.
_JSON_SCALARS = (bool, int, float, str)


def json_node(node: Hashable):
    """A JSON-representable stand-in for a node label.

    ``None`` and JSON scalars (bool/int/float/str) pass through unchanged; any
    other hashable (tuples, frozensets, objects) serializes as its ``repr``.
    """
    if node is None or isinstance(node, _JSON_SCALARS):
        return node
    return repr(node)


def json_value_pairs(values: Mapping[Hashable, float]) -> List[list]:
    """``[[node, value], ...]`` pairs in mapping order (see module docstring)."""
    return [[json_node(node), value] for node, value in values.items()]
