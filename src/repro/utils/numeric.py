"""Numeric helpers shared by the core algorithms.

The paper (Section III-C, "Message Size") restricts the numbers sent in messages to a
set ``Lambda`` of *powers of (1 + lambda)* in order to bound message size in the
CONGEST model.  This module provides the corresponding grid construction and
rounding-down operation, together with a handful of small floating point helpers.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import AlgorithmError, InvalidLambdaError

#: Convenience alias used to initialise surviving numbers (Algorithm 2, line 1).
POS_INFINITY: float = math.inf

#: Default relative tolerance for floating point comparisons within the library.
DEFAULT_REL_TOL: float = 1e-9

#: Default absolute tolerance for floating point comparisons within the library.
DEFAULT_ABS_TOL: float = 1e-12


def canonical_lam(lam) -> float:
    """The canonical float spelling of a Λ-grid parameter.

    Every λ-keyed cache in the library — the in-memory grid/trajectory/result
    dicts of :class:`~repro.session.Session`, the request keys of
    :meth:`~repro.problems.Problem.request_key` and the artifact filenames of
    :class:`~repro.store.ArtifactStore` — must agree on *one* spelling per
    value, or a request can hit memory yet miss disk.  The subtle case is
    ``-0.0``: it compares (and hashes) equal to ``0.0``, so dict keys
    collapse the two, while ``repr(-0.0)`` spells ``"-0.0"`` and would split
    the on-disk artifact namespace.  Adding positive zero normalises
    ``-0.0`` to ``0.0`` and is the identity for every other float.

    Non-finite values (``nan`` / ``±inf``) can never name a grid — and would
    produce un-reloadable artifact filenames — so they are rejected here, at
    the entry points, with a clear ``ValueError``
    (:class:`~repro.errors.InvalidLambdaError`, which is also a
    :class:`~repro.errors.ReproError` so the CLI reports it cleanly).
    """
    lam = float(lam) + 0.0
    if not math.isfinite(lam):
        raise InvalidLambdaError(f"lambda must be a finite float, got {lam!r}")
    return lam


def is_close(a: float, b: float, *, rel_tol: float = DEFAULT_REL_TOL,
             abs_tol: float = DEFAULT_ABS_TOL) -> bool:
    """Return ``True`` when ``a`` and ``b`` are equal up to library tolerances.

    A thin wrapper over :func:`math.isclose` with the package-wide defaults; used by
    analysis code that compares densities/coreness values produced by different
    algorithms.
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def next_power_below(value: float, base: float) -> float:
    """Largest power of ``base`` that is ``<= value``.

    Parameters
    ----------
    value:
        A strictly positive number.
    base:
        The grid base, strictly greater than 1 (i.e. ``1 + lambda`` for λ > 0).

    Returns
    -------
    float
        ``base ** floor(log_base(value))``.  ``0.0`` is returned for ``value == 0``
        and ``inf`` for ``value == inf`` so that the function can be applied directly
        to surviving numbers at any point of Algorithm 2.

    Raises
    ------
    AlgorithmError
        If ``value`` is negative or ``base <= 1``.
    """
    if base <= 1.0:
        raise AlgorithmError(f"grid base must be > 1, got {base!r}")
    if value < 0:
        raise AlgorithmError(f"cannot round a negative value ({value!r}) onto a geometric grid")
    if value == 0.0:
        return 0.0
    if math.isinf(value):
        return value
    exponent = math.floor(math.log(value, base))
    power = base ** exponent
    # Guard against floating point log inaccuracies at grid boundaries.
    while power > value:
        exponent -= 1
        power = base ** exponent
    while power * base <= value:
        exponent += 1
        power = base ** exponent
    return power


def round_down_to_grid(value: float, lam: float) -> float:
    """Round ``value`` down to the next element of ``Lambda = {(1+lam)^k : k ∈ Z}``.

    ``lam == 0`` denotes the paper's convention ``Lambda = R`` (no rounding); the
    value is returned unchanged.  ``0`` and ``+inf`` are fixed points.
    """
    if lam < 0:
        raise AlgorithmError(f"lambda must be non-negative, got {lam!r}")
    if lam == 0.0:
        return value
    return next_power_below(value, 1.0 + lam)


def geometric_grid(lo: float, hi: float, base: float) -> list[float]:
    """All powers of ``base`` in the closed interval ``[lo, hi]``, ascending.

    Useful for enumerating the candidate thresholds of the single-threshold
    elimination procedure (Algorithm 1) when sweeping over a bounded range.
    """
    if base <= 1.0:
        raise AlgorithmError(f"grid base must be > 1, got {base!r}")
    if lo <= 0:
        raise AlgorithmError(f"grid lower bound must be positive, got {lo!r}")
    if hi < lo:
        return []
    grid: list[float] = []
    k = math.ceil(math.log(lo, base) - 1e-12)
    power = base ** k
    while power <= hi * (1 + 1e-12):
        if power >= lo * (1 - 1e-12):
            grid.append(power)
        k += 1
        power = base ** k
    return grid


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of strictly positive values (used by analysis summaries)."""
    vals = list(values)
    if not vals:
        raise AlgorithmError("harmonic_mean of an empty sequence is undefined")
    if any(v <= 0 for v in vals):
        raise AlgorithmError("harmonic_mean requires strictly positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with the convention ``0 / 0 == 1``.

    Approximation ratios in the paper's Definition II.5 compare a non-negative
    estimate against a non-negative true value; for isolated nodes both the coreness
    and the surviving number are ``0`` and the ratio is taken to be 1 (a perfect
    approximation).
    """
    if denominator == 0.0:
        if numerator == 0.0:
            return 1.0
        return math.inf
    return numerator / denominator
