"""Deprecated wall-clock timer — superseded by :mod:`repro.obs` spans.

:class:`Timer` predates the observability subsystem; new code should use
``repro.obs.timed(name)`` (always measures, additionally records a span when
tracing is enabled) or ``repro.obs.span(name)`` inside instrumented paths.
The class stays as a thin shim so existing experiment scripts keep working,
but constructing one raises a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager

from repro.obs import trace as obs_trace


@dataclass
class Timer:
    """Accumulates named wall-clock durations.

    .. deprecated::
        Use :func:`repro.obs.timed` / :func:`repro.obs.span` instead; a
        traced run then exports these measurements alongside every other
        span instead of keeping them in a private dict.

    Example
    -------
    >>> import warnings
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     timer = Timer()
    >>> with timer.measure("peel"):
    ...     _ = sum(range(10))
    >>> timer.total("peel") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        warnings.warn(
            "repro.utils.timers.Timer is deprecated; use repro.obs.timed() "
            "or repro.obs.span() instead", DeprecationWarning, stacklevel=2)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager accumulating the elapsed time under ``name``."""
        timing = obs_trace.timed(name)
        try:
            with timing:
                yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + timing.seconds
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total accumulated seconds for ``name`` (0.0 if never measured)."""
        return self.totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of completed measurements for ``name``."""
        return self.counts.get(name, 0)

    def summary(self) -> str:
        """Human-readable one-line-per-timer summary."""
        lines = []
        for name in sorted(self.totals):
            lines.append(f"{name}: {self.totals[name]:.4f}s over {self.counts[name]} call(s)")
        return "\n".join(lines)
