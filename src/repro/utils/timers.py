"""A tiny wall-clock timer used by the experiment harnesses.

The benchmark harness relies on ``pytest-benchmark`` for statistically sound
measurements; :class:`Timer` only provides coarse timings for progress reporting in
examples and experiment scripts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


@dataclass
class Timer:
    """Accumulates named wall-clock durations.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("peel"):
    ...     _ = sum(range(10))
    >>> timer.total("peel") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager accumulating the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total accumulated seconds for ``name`` (0.0 if never measured)."""
        return self.totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of completed measurements for ``name``."""
        return self.counts.get(name, 0)

    def summary(self) -> str:
        """Human-readable one-line-per-timer summary."""
        lines = []
        for name in sorted(self.totals):
            lines.append(f"{name}: {self.totals[name]:.4f}s over {self.counts[name]} call(s)")
        return "\n".join(lines)
