"""Small shared utilities: numeric grids, orderings, RNG handling and timers."""

from repro.utils.numeric import (
    POS_INFINITY,
    canonical_lam,
    geometric_grid,
    is_close,
    next_power_below,
    round_down_to_grid,
)
from repro.utils.ordering import lexicographic_history_key, total_order_key
from repro.utils.rng import ensure_rng
from repro.utils.timers import Timer

__all__ = [
    "POS_INFINITY",
    "canonical_lam",
    "geometric_grid",
    "is_close",
    "next_power_below",
    "round_down_to_grid",
    "lexicographic_history_key",
    "total_order_key",
    "ensure_rng",
    "Timer",
]
