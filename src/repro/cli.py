"""Command-line interface.

Lets a user run the paper's algorithms on an edge-list file (or a bundled synthetic
dataset) without writing Python::

    python -m repro coreness --dataset collab-small --epsilon 0.5 --top 10
    python -m repro coreness --input graph.edges --rounds 8 --output values.tsv
    python -m repro coreness --dataset social-ba --epsilon 0.5 --engine sharded:4
    python -m repro coreness --dataset social-ba --epsilon 0.5 --engine sharded --parallel process --workers 4
    python -m repro coreness --dataset social-ba --epsilon 0.5 --engine sharded --storage mmap
    python -m repro orientation --dataset caveman --weighted --epsilon 0.5
    python -m repro densest --input graph.edges --epsilon 1.0
    python -m repro batch --dataset caveman --dataset communities --epsilon 0.5 --rounds 4
    python -m repro batch --dataset caveman --problem orientation --epsilon 0.5 --json -
    python -m repro batch --dataset social-ba --rounds 8 --store ./cache --async
    python -m repro cache ls --store ./cache
    python -m repro cache info --store ./cache
    python -m repro cache purge --store ./cache [--fingerprint HEX]
    python -m repro serve --host 127.0.0.1 --port 8080 --store ./cache --workers 4
    python -m repro serve --port 8080 --access-log access.ndjson
    python -m repro coreness --dataset caveman --epsilon 0.5 --trace run.trace
    python -m repro trace summarize --input run.trace
    python -m repro trace export --input run.trace --chrome --output run.json
    python -m repro engines
    python -m repro problems
    python -m repro datasets

Edge-list files use the same format as :mod:`repro.graph.io` (``u v [w]`` per line,
``#`` comments allowed).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from pathlib import Path
from typing import Optional, Sequence

from repro._version import __version__
from repro.analysis.tables import format_table
from repro.engine import BatchRunner, available_engines, get_engine, sweep_jobs
from repro.errors import ReproError
from repro.graph.datasets import dataset_info, list_datasets, load_dataset
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list
from repro.problems import available_problems, get_problem
from repro.serve import JobQueue
from repro.session import Session
from repro.store import ArtifactStore


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed approximate k-core decomposition, min-max edge "
                    "orientation and weak densest subsets (Chan, Sozio, Sun; IPDPS 2019).")
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_arguments(sub: argparse.ArgumentParser) -> None:
        source = sub.add_mutually_exclusive_group(required=True)
        source.add_argument("--input", type=Path, help="edge-list file (u v [w] per line)")
        source.add_argument("--dataset", choices=list_datasets(),
                            help="bundled synthetic stand-in dataset")
        sub.add_argument("--weighted", action="store_true",
                         help="layer integer weights onto a bundled dataset")
        budget = sub.add_mutually_exclusive_group(required=True)
        budget.add_argument("--epsilon", type=float, help="target ratio 2(1+epsilon)")
        budget.add_argument("--rounds", type=int, help="explicit round budget T")
        sub.add_argument("--output", type=Path, default=None,
                         help="write per-node results as TSV instead of a table")
        add_trace_argument(sub)

    def add_trace_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--trace", type=Path, default=None, metavar="PATH",
                         help="enable repro.obs tracing for this run and "
                              "append span records (JSONL) to PATH; inspect "
                              "with the 'trace' subcommand")

    def add_engine_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--engine", default="vectorized", metavar="SPEC",
                         help="execution engine spec, e.g. 'vectorized', 'faithful', "
                              "'sharded:4' (see the 'engines' subcommand)")
        sub.add_argument("--parallel", choices=("thread", "process"), default=None,
                         help="shard parallel mode for the sharded engine "
                              "(process breaks the GIL via shared memory)")
        sub.add_argument("--workers", type=int, default=None, metavar="N",
                         help="pool size for --parallel (default: the CPU count)")
        sub.add_argument("--storage", choices=("memory", "mmap", "auto"),
                         default=None,
                         help="where the sharded engine keeps the CSR arrays: "
                              "'mmap' streams them from memory-mapped files "
                              "(out-of-core), 'auto' spills only when a --store "
                              "is set and the graph exceeds the threshold")
        sub.add_argument("--trajectory-storage",
                         choices=("memory", "mmap", "auto"), default=None,
                         help="where the sharded engine keeps the elimination "
                              "trajectory: 'mmap' appends completed rounds to "
                              "an on-disk .traj buffer (out-of-core, "
                              "crash-resumable), 'auto' spills only when a "
                              "--store is set and the trajectory exceeds the "
                              "threshold")

    coreness_parser = subparsers.add_parser(
        "coreness", help="approximate coreness / maximal density per node (Theorem I.1)")
    add_graph_arguments(coreness_parser)
    add_engine_argument(coreness_parser)
    coreness_parser.add_argument("--top", type=int, default=10,
                                 help="number of top nodes to print (default 10)")
    coreness_parser.add_argument("--lam", type=float, default=0.0,
                                 help="Lambda-grid parameter for message-size reduction")

    orientation_parser = subparsers.add_parser(
        "orientation", help="approximate min-max edge orientation (Theorem I.2)")
    add_graph_arguments(orientation_parser)
    add_engine_argument(orientation_parser)

    densest_parser = subparsers.add_parser(
        "densest", help="weak densest subset collection (Theorem I.3)")
    add_graph_arguments(densest_parser)

    batch_parser = subparsers.add_parser(
        "batch", help="run a batch of problem jobs (graphs x budgets x lambdas) "
                      "through one engine with shared per-graph sessions")
    batch_parser.add_argument("--input", type=Path, action="append", default=[],
                              help="edge-list file; repeatable")
    batch_parser.add_argument("--dataset", choices=list_datasets(), action="append",
                              default=[], help="bundled dataset; repeatable")
    batch_parser.add_argument("--weighted", action="store_true",
                              help="layer integer weights onto the bundled datasets")
    batch_parser.add_argument("--problem", choices=available_problems(),
                              default="coreness",
                              help="registered problem every job runs (default: coreness)")
    batch_parser.add_argument("--epsilon", type=float, action="append", default=[],
                              help="budget variant: target ratio 2(1+epsilon); repeatable")
    batch_parser.add_argument("--rounds", type=int, action="append", default=[],
                              help="budget variant: explicit round budget T; repeatable")
    batch_parser.add_argument("--lam", type=float, action="append", default=[],
                              help="Lambda-grid variant, coreness only "
                                   "(default: 0.0 only); repeatable")
    batch_parser.add_argument("--output", type=Path, default=None,
                              help="write per-job stats as TSV in addition to the table")
    batch_parser.add_argument("--json", default=None, metavar="PATH",
                              help="write per-job results as JSON (each result's "
                                   "to_dict()); '-' prints pure JSON to stdout, "
                                   "suppressing the table")
    batch_parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                              help="persistent artifact store: sessions resume "
                                   "bit-identically from (and extend) this cache")
    batch_parser.add_argument("--async", dest="use_async", action="store_true",
                              help="submit jobs through the async JobQueue "
                                   "(worker pool, in-flight dedup) instead of "
                                   "running them sequentially")
    batch_parser.add_argument("--serve-workers", type=int, default=2, metavar="N",
                              help="JobQueue worker threads for --async (default 2)")
    add_engine_argument(batch_parser)
    add_trace_argument(batch_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or purge a persistent artifact store")
    cache_parser.add_argument("action", choices=("ls", "info", "purge"),
                              help="ls: per-graph artifacts; info: store totals; "
                                   "purge: delete artifacts")
    cache_parser.add_argument("--store", type=Path, required=True, metavar="DIR",
                              help="store root directory")
    cache_parser.add_argument("--fingerprint", default=None, metavar="HEX",
                              help="restrict ls/purge to one graph fingerprint")

    serve_parser = subparsers.add_parser(
        "serve", help="serve jobs over HTTP/JSON (graph uploads, submission, "
                      "long-polling, /metrics) until SIGTERM/SIGINT")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="TCP port; 0 picks an ephemeral port "
                                   "(default 8080)")
    serve_parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                              help="persistent artifact store backing the "
                                   "served sessions (resumed across restarts)")
    serve_parser.add_argument("--workers", type=int, default=2, metavar="N",
                              help="job worker threads (default 2)")
    serve_parser.add_argument("--max-pending", type=int, default=None,
                              metavar="N",
                              help="backpressure bound: submissions beyond N "
                                   "queued-or-running jobs get HTTP 429 "
                                   "(default: unbounded)")
    serve_parser.add_argument("--quota-rate", type=float, default=None,
                              metavar="R",
                              help="per-tenant request quota: R requests/s "
                                   "token-bucket refill (default: no quotas)")
    serve_parser.add_argument("--quota-burst", type=float, default=None,
                              metavar="B",
                              help="token-bucket burst size (default: "
                                   "max(1, quota-rate))")
    serve_parser.add_argument("--engine", default="vectorized", metavar="SPEC",
                              help="execution engine spec for every served job "
                                   "(default: vectorized)")
    serve_parser.add_argument("--access-log", type=Path, default=None,
                              metavar="PATH",
                              help="append one NDJSON access-log line per "
                                   "request (method, path, status, tenant, "
                                   "duration, job id) to PATH; default: no "
                                   "access logging")
    add_trace_argument(serve_parser)
    serve_parser.add_argument("--trace-sample", type=int, default=1,
                              metavar="N",
                              help="with --trace: record 1 in every N trace "
                                   "trees (deterministic counter over root "
                                   "spans, not an RNG; default 1 = trace "
                                   "every request)")

    delta_parser = subparsers.add_parser(
        "delta", help="apply a graph delta against a running repro serve "
                      "instance (POST /graphs/<fp>/deltas); prints the child "
                      "version's fingerprint")
    delta_parser.add_argument("--host", default="127.0.0.1",
                              help="server address (default 127.0.0.1)")
    delta_parser.add_argument("--port", type=int, default=8080,
                              help="server TCP port (default 8080)")
    delta_parser.add_argument("--fingerprint", required=True, metavar="HEX",
                              help="parent graph fingerprint (a root content "
                                   "fingerprint or a delta chain fingerprint)")
    delta_parser.add_argument("--delta", type=Path, required=True,
                              metavar="PATH",
                              help="delta document (repro-graph-delta/1 JSON, "
                                   "see GraphDelta.to_dict)")
    delta_parser.add_argument("--max-frontier-fraction", type=float,
                              default=None, metavar="F",
                              help="fall back to a cold solve when the dirty "
                                   "frontier exceeds F*n nodes "
                                   "(default: the server's 0.25)")
    delta_parser.add_argument("--tenant", default=None,
                              help="X-Repro-Tenant header value")

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a JSONL span trace recorded with --trace")
    trace_parser.add_argument("action", choices=("export", "summarize"),
                              help="export: re-emit the trace as JSON "
                                   "(--chrome renders Chrome trace-event "
                                   "format); summarize: per-span-name "
                                   "latency table")
    trace_parser.add_argument("--input", type=Path, required=True,
                              metavar="PATH", help="JSONL trace file")
    trace_parser.add_argument("--chrome", action="store_true",
                              help="export as Chrome trace-event JSON "
                                   "(openable in Perfetto / chrome://tracing)")
    trace_parser.add_argument("--output", type=Path, default=None,
                              metavar="PATH",
                              help="write the export to PATH instead of stdout")

    subparsers.add_parser("engines", help="list the registered execution engines")
    subparsers.add_parser("problems", help="list the registered problems")
    subparsers.add_parser("datasets", help="list the bundled synthetic datasets")
    return parser


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.input is not None:
        return read_edge_list(args.input)
    return load_dataset(args.dataset, weighted=args.weighted)


def _resolve_engine(args: argparse.Namespace):
    """The engine instance for an engine-taking command.

    ``--parallel`` / ``--workers`` are forwarded as engine options, so they
    compose with any spec (``--engine sharded:8 --parallel process``); engines
    that do not take them fail with the registry's invalid-option error.
    """
    options = {}
    if args.parallel is not None:
        options["parallel"] = args.parallel
    if args.workers is not None:
        options["max_workers"] = args.workers
    if getattr(args, "storage", None) is not None:
        options["storage"] = args.storage
    if getattr(args, "trajectory_storage", None) is not None:
        options["trajectory_storage"] = args.trajectory_storage
    return get_engine(args.engine, **options)


def _budget_kwargs(args: argparse.Namespace) -> dict:
    if args.epsilon is not None:
        return {"epsilon": args.epsilon}
    return {"rounds": args.rounds}


def _command_datasets(out) -> int:
    rows = []
    for name in list_datasets():
        spec = dataset_info(name)
        graph = load_dataset(name)
        rows.append([name, spec.category, graph.num_nodes, graph.num_edges, spec.description])
    print(format_table(["name", "category", "n", "m", "description"], rows), file=out)
    return 0


def _command_engines(out) -> int:
    rows = [[name, get_engine(name).describe()] for name in available_engines()]
    print(format_table(["name", "description"], rows), file=out)
    print("# specs may carry options, e.g. 'sharded:4', 'sharded:shards=4,max_workers=2',\n"
          "# 'sharded:workers=4,parallel=process' or 'sharded:storage=mmap' (out-of-core;\n"
          "# also: --parallel/--workers/--storage flags)",
          file=out)
    return 0


def _command_problems(out) -> int:
    rows = [[name, get_problem(name).describe()] for name in available_problems()]
    print(format_table(["name", "description"], rows), file=out)
    print("# run a problem over many graphs/budgets with: repro batch --problem NAME ...",
          file=out)
    return 0


def _command_cache(args: argparse.Namespace, out) -> int:
    store = ArtifactStore(args.store)
    if args.action == "purge":
        removed = store.purge(args.fingerprint)
        print(f"# purged {removed} file(s) from {store.root}", file=out)
        return 0
    info = store.info(args.fingerprint)
    if args.action == "ls":
        # Full fingerprints: `purge`/`info --fingerprint` require the exact
        # 64-char address, so ls must print something copy-pasteable.
        rows = [[row["fingerprint"], row["files"], row["bytes"],
                 row.get("csr_bytes", 0), row.get("traj_bytes", 0),
                 ",".join(row["kinds"])]
                for row in info["graphs"]]
        if rows:
            print(format_table(["fingerprint", "files", "bytes", "csr_bytes",
                                "traj_bytes", "kinds"], rows), file=out)
        else:
            print("(store is empty)", file=out)
    print(f"# store={info['root']} graphs={len(info['graphs'])} "
          f"files={info['files']} bytes={info['bytes']}", file=out)
    return 0


def _command_serve(args: argparse.Namespace, out,
                   ready: Optional[threading.Event] = None,
                   stop: Optional[threading.Event] = None) -> int:
    """Run the HTTP server until SIGTERM/SIGINT, then drain gracefully.

    ``ready``/``stop`` exist for in-process tests (and embedding): ``ready``
    is set once the socket is bound, ``stop`` requests the same graceful
    drain a signal would.  Signal handlers are installed only on the main
    thread (the only place Python allows them).
    """
    from repro.serve.http import ReproHTTPServer

    server = ReproHTTPServer(
        args.host, args.port, engine=get_engine(args.engine),
        store=args.store, workers=args.workers, max_pending=args.max_pending,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        access_log=args.access_log)
    stop = stop if stop is not None else threading.Event()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda _s, _f: stop.set())
    server.start()
    print(f"# repro-serve {__version__} listening on "
          f"http://{server.host}:{server.port} "
          f"(engine={args.engine}, workers={args.workers}, "
          f"store={args.store if args.store is not None else '-'})",
          file=out, flush=True)
    if ready is not None:
        ready.set()
    stop.wait()
    print("# draining: finishing in-flight jobs, flushing the store",
          file=out, flush=True)
    server.drain()
    print("# drained; bye", file=out, flush=True)
    return 0


def _command_batch(args: argparse.Namespace, out) -> int:
    graphs = {}
    for path in args.input:
        graphs[str(path)] = read_edge_list(path)
    for name in args.dataset:
        graphs[name] = load_dataset(name, weighted=args.weighted)
    if not graphs:
        raise ReproError("batch needs at least one --input or --dataset")
    problem = get_problem(args.problem)
    if any(args.lam) and "lam" not in problem.batch_params:
        raise ReproError(f"--lam only applies to problems that take a Lambda grid "
                         f"(problem {problem.name!r} does not)")
    jobs = sweep_jobs(graphs, epsilons=args.epsilon, rounds=args.rounds,
                      lams=args.lam or (0.0,), problem=args.problem)
    store = ArtifactStore(args.store) if args.store is not None else None
    runner = BatchRunner(_resolve_engine(args), store=store)
    if args.use_async:
        with JobQueue(runner, max_workers=args.serve_workers) as queue:
            results = queue.run(jobs)
    else:
        results = runner.run(jobs)
    header = ["job", "engine", "problem", "n", "m", "rounds", "seconds", "converged",
              "objective"]
    json_to_stdout = args.json == "-"
    rows = []
    if not json_to_stdout or args.output is not None:
        for result in results:
            stats = result.stats
            rows.append([stats.job, stats.engine, stats.problem, stats.num_nodes,
                         stats.num_edges, stats.rounds, f"{stats.seconds:.4f}",
                         stats.converged_round if stats.converged_round is not None
                         else "-",
                         f"{stats.objective:.6g}"])
    if not json_to_stdout:  # keep stdout pure JSON for `--json -` pipelines
        engine_desc = runner.engine.describe()
        if problem.forced_engine:
            engine_desc = f"{problem.forced_engine} (forced by the problem)"
        print(f"# engine={engine_desc} problem={problem.name} "
              f"jobs={len(results)} graphs={runner.cached_graphs}", file=out)
        if store is not None:
            totals = runner.aggregate_stats()
            print(f"# store={store.root} disk_hits={totals['disk_hits']} "
                  f"disk_misses={totals['disk_misses']} "
                  f"disk_writes={totals['disk_writes']}", file=out)
        print(format_table(header, rows), file=out)
    if args.output is not None:
        lines = ["\t".join(str(cell) for cell in row) for row in rows]
        args.output.write_text("\n".join(["\t".join(header)] + lines) + "\n",
                               encoding="utf-8")
        if not json_to_stdout:
            print(f"# per-job stats written to {args.output}", file=out)
    if args.json is not None:
        payload = [{"job": r.stats.job, "problem": r.stats.problem,
                    "engine": r.stats.engine, "rounds": r.stats.rounds,
                    "seconds": r.stats.seconds, "objective": r.stats.objective,
                    "result": r.result.to_dict()} for r in results]
        text = json.dumps(payload, indent=2)
        if json_to_stdout:
            print(text, file=out)
        else:
            Path(args.json).write_text(text + "\n", encoding="utf-8")
            print(f"# per-job results written to {args.json}", file=out)
    return 0


def _command_coreness(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    result = Session(graph, engine=_resolve_engine(args), lam=args.lam).coreness(
        **_budget_kwargs(args))
    print(f"# n={graph.num_nodes} m={graph.num_edges} rounds={result.rounds} "
          f"guarantee={result.guarantee:.4g}", file=out)
    if args.output is not None:
        lines = [f"{v}\t{result.values[v]:.10g}" for v in graph.nodes()]
        args.output.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"# per-node values written to {args.output}", file=out)
        return 0
    rows = [[v, f"{result.values[v]:.6g}"] for v in result.top_nodes(args.top)]
    print(format_table(["node", "approx coreness"], rows), file=out)
    return 0


def _command_orientation(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    result = Session(graph, engine=_resolve_engine(args)).orientation(**_budget_kwargs(args))
    print(f"# n={graph.num_nodes} m={graph.num_edges} rounds={result.rounds} "
          f"guarantee={result.guarantee:.4g}", file=out)
    print(f"max weighted in-degree: {result.max_in_weight:.6g}", file=out)
    print(f"conflicts resolved: {result.orientation.conflicts}; "
          f"uncovered edges: {result.orientation.violations}", file=out)
    if args.output is not None:
        lines = [f"{u}\t{v}\t{owner}" for (u, v), owner in sorted(
            result.orientation.assignment.items(), key=lambda kv: repr(kv[0]))]
        args.output.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"# edge assignment written to {args.output}", file=out)
    return 0


def _command_densest(args: argparse.Namespace, out) -> int:
    graph = _load_graph(args)
    result = Session(graph).densest(**_budget_kwargs(args))
    print(f"# n={graph.num_nodes} m={graph.num_edges} rounds_total={result.rounds_total} "
          f"gamma={result.gamma:.4g}", file=out)
    rows = [[str(leader), len(members),
             f"{result.reported_densities.get(leader, float('nan')):.6g}",
             f"{result.actual_densities[leader]:.6g}"]
            for leader, members in sorted(result.subsets.items(), key=lambda kv: -len(kv[1]))]
    if rows:
        print(format_table(["leader", "size", "announced density", "true density"], rows),
              file=out)
    else:
        print("(no subset was announced)", file=out)
    if args.output is not None:
        lines = [f"{v}\t{leader if leader is not None else '-'}"
                 for v, leader in result.node_assignment.items()]
        args.output.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"# per-node subset assignment written to {args.output}", file=out)
    return 0


def _command_delta(args: argparse.Namespace, out) -> int:
    """Apply a GraphDelta to a served graph; print the child fingerprint."""
    from repro.graph.delta import GraphDelta
    from repro.serve.client import ServeClient

    try:
        payload = json.loads(args.delta.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read delta document {args.delta}: {exc}") from exc
    delta = GraphDelta.from_dict(payload)   # validate before going on the wire
    with ServeClient(args.host, args.port, tenant=args.tenant) as client:
        doc = client.apply_delta(args.fingerprint, delta,
                                 max_frontier_fraction=args.max_frontier_fraction)
    print(f"# {doc['delta']} on {args.fingerprint[:12]}... -> "
          f"n={doc['n']} m={doc['m']} "
          f"created={doc['created']} content={doc['content_fingerprint'][:12]}...",
          file=out)
    print(doc["fingerprint"], file=out)
    return 0


def _command_trace(args: argparse.Namespace, out) -> int:
    """Inspect a JSONL span trace: per-name latency table or re-export."""
    from repro.obs import trace as obs_trace

    records = obs_trace.read_jsonl(args.input)
    if args.action == "summarize":
        rows = [[row["name"], row["count"], f"{row['total_seconds']:.6g}",
                 f"{row['mean_seconds']:.6g}", f"{row['p50_seconds']:.6g}",
                 f"{row['p95_seconds']:.6g}", f"{row['max_seconds']:.6g}"]
                for row in obs_trace.summarize(records)]
        if rows:
            print(format_table(["span", "count", "total_s", "mean_s",
                                "p50_s", "p95_s", "max_s"], rows), file=out)
        else:
            print("(trace is empty)", file=out)
        print(f"# spans={len(records)} input={args.input}", file=out)
        return 0
    payload = obs_trace.chrome_trace(records) if args.chrome else records
    text = json.dumps(payload, indent=2)
    if args.output is None:
        print(text, file=out)
    else:
        args.output.write_text(text + "\n", encoding="utf-8")
        kind = "chrome trace" if args.chrome else "trace records"
        print(f"# {kind} ({len(records)} span(s)) written to {args.output}",
              file=out)
    return 0


_COMMANDS = {
    "batch": _command_batch,
    "cache": _command_cache,
    "serve": _command_serve,
    "delta": _command_delta,
    "trace": _command_trace,
    "coreness": _command_coreness,
    "orientation": _command_orientation,
    "densest": _command_densest,
}

_PLAIN_COMMANDS = {
    "datasets": _command_datasets,
    "engines": _command_engines,
    "problems": _command_problems,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path is not None:
        from repro.obs import trace as obs_trace
        obs_trace.enable(jsonl_path=trace_path,
                         sample_rate=getattr(args, "trace_sample", 1))
    try:
        if args.command in _PLAIN_COMMANDS:
            code = _PLAIN_COMMANDS[args.command](out)
        else:
            code = _COMMANDS[args.command](args, out)
        # Flush inside the handler's reach: a downstream reader that quit
        # (broken pipe) usually only surfaces when buffered output is flushed,
        # which would otherwise happen during interpreter shutdown — as an
        # unhandled BrokenPipeError traceback and exit code 120.
        if hasattr(out, "flush"):
            out.flush()
        return code
    except ReproError as exc:
        # Covers InvalidLambdaError too (a non-finite --lam rejected at the
        # boundary): it is a ReproError first, a ValueError second — so
        # arbitrary internal ValueErrors still surface as tracebacks.  The
        # bracketed code is the same stable identifier the HTTP error bodies
        # carry (the repro.errors wire protocol).
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error [not-found]: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed stdout early (`repro cache ls | head -1`, or a
        # `grep -q` that matched and quit): a normal end of conversation, not
        # a crash.  Point stdout at devnull so interpreter shutdown does not
        # die flushing the dead pipe, and exit 0 — the command did its work;
        # failing here would break `set -o pipefail` pipelines whose readers
        # legitimately stop early.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if trace_path is not None:
            obs_trace.disable()  # flush + close the JSONL exporter


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
