"""`repro.obs` — stdlib-only observability: spans, traces and metrics.

Two halves, both disabled-by-default and dependency-free:

* **Tracing** (:mod:`repro.obs.trace`) — hierarchical wall-clock spans
  (``obs.span("session.solve", lam=0.0)``) recorded into a bounded in-memory
  ring and, optionally, a JSONL file.  Span context propagates across the
  serving worker pool and into ``sharded:parallel=process`` workers (the
  context rides the existing task payloads; workers return child-span records
  tagged with their shard ranges).  A recorded JSONL trace renders to Chrome
  trace-event format (``repro trace export --chrome``) so a solve opens in
  Perfetto, and aggregates to a per-span-name latency table
  (``repro trace summarize``).  When tracing is disabled — the default —
  ``span()`` returns a shared no-op object; the hot paths pay one module
  attribute read per span site (the ``obs_overhead`` bench scenario pins the
  end-to-end cost).

* **Metrics** (:mod:`repro.obs.metrics`) — a :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms (notably per-problem solve
  latency and per-round kernel time, observed into the process-wide default
  registry), rendered in Prometheus text exposition at
  ``GET /metrics?format=prometheus``.  ``SessionStats`` / ``ServeStats`` /
  store counters register as scrape-time collector families instead of being
  hand-merged into one JSON blob.

Tracing never changes results: spans observe wall time and attributes only,
and the equivalence tests pin bit-identity with tracing enabled.
"""

from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanContext,
    Tracer,
    active,
    chrome_trace,
    current_context,
    disable,
    enable,
    enabled,
    read_jsonl,
    remote_span_record,
    span,
    summarize,
    timed,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_families,
    family,
    gauge_family,
    get_registry,
)

__all__ = [
    "NOOP_SPAN",
    "Span",
    "SpanContext",
    "Tracer",
    "active",
    "chrome_trace",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "read_jsonl",
    "remote_span_record",
    "span",
    "summarize",
    "timed",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_families",
    "family",
    "gauge_family",
    "get_registry",
]
