"""Hierarchical wall-clock spans with a bounded ring and JSONL export.

The module-level API is the one hot paths use::

    from repro.obs import trace as obs_trace

    with obs_trace.span("session.solve", problem="coreness", lam=0.0) as sp:
        ...
        sp.set(rounds=rounds)

When no tracer is enabled (the default) ``span()`` returns a shared no-op
object, so an instrumented call site costs one module attribute read and one
``is None`` check.  Inner loops that would otherwise allocate a span per
round fetch the tracer once (``tracer = obs_trace.active()``) and call
:meth:`Tracer.record_span` with an explicit start/duration only when it is
not ``None`` — zero per-iteration work when disabled.

Span records are plain JSON-safe dicts::

    {"name": ..., "trace": ..., "span": ..., "parent": ...,
     "ts": <unix seconds>, "dur": <seconds>, "pid": ..., "tid": ...,
     "attrs": {...}}

Parenting is implicit through a per-thread span stack; spans recorded from
worker threads pass the submitting thread's :class:`SpanContext` explicitly
(``obs_trace.span(..., parent=ctx)``), and ``sharded:parallel=process``
workers — which cannot reach the parent's tracer at all — build record dicts
with :func:`remote_span_record` and ship them back in the task result for the
parent to :meth:`Tracer.ingest`.

``read_jsonl`` / ``chrome_trace`` / ``summarize`` turn a recorded JSONL file
into a Perfetto-openable Chrome trace-event document or a per-span-name
latency table (``repro trace export --chrome`` / ``repro trace summarize``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import WireFormatError

__all__ = [
    "NOOP_SPAN",
    "Span",
    "SpanContext",
    "Tracer",
    "active",
    "chrome_trace",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "read_jsonl",
    "remote_span_record",
    "span",
    "summarize",
    "timed",
]

_IDS = itertools.count(1)


def _new_id() -> str:
    # ``itertools.count.__next__`` is atomic under the GIL; the pid prefix
    # keeps ids unique across ``parallel=process`` workers.
    return f"{os.getpid():x}-{next(_IDS):x}"


def _clean_attrs(attrs: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars (numpy included)."""
    if not attrs:
        return {}
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            out[str(key)] = value
        else:
            try:
                out[str(key)] = float(value)
            except (TypeError, ValueError):
                out[str(key)] = str(value)
    return out


class SpanContext:
    """The portable identity of a span: ``(trace_id, span_id)``."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self) -> Tuple[str, str]:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, wire: Optional[Sequence[str]]) -> Optional["SpanContext"]:
        if wire is None:
            return None
        if isinstance(wire, SpanContext):
            return wire
        trace_id, span_id = wire
        return cls(str(trace_id), str(span_id))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanContext(trace={self.trace_id!r}, span={self.span_id!r})"


_LOCAL = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    seconds = None
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    @property
    def context(self) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _SuppressedSpan:
    """Context manager for an unsampled root span.

    Records nothing, but suppresses descendant tracing on this thread for
    its dynamic extent (``active()`` answers ``None`` and ``span()`` returns
    the no-op inside it), so a sampled-out request drops its *whole* tree —
    not just the root with orphaned children.  Stateless, hence shared.
    """

    __slots__ = ()
    name = ""
    seconds = None
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_SuppressedSpan":
        _LOCAL.suppressed = getattr(_LOCAL, "suppressed", 0) + 1
        return self

    def __exit__(self, *exc) -> bool:
        _LOCAL.suppressed = getattr(_LOCAL, "suppressed", 1) - 1
        return False

    def set(self, **attrs) -> "_SuppressedSpan":
        return self

    @property
    def context(self) -> None:
        return None


SUPPRESSED_SPAN = _SuppressedSpan()


class Span:
    """A live span; use as a context manager (``with obs.span(...)``)."""

    __slots__ = ("name", "attrs", "trace_id", "span_id", "parent_id",
                 "start_unix", "seconds", "_tracer", "_start_perf", "_parent")

    def __init__(self, tracer: "Tracer", name: str,
                 parent: Optional[SpanContext], attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = str(name)
        self.attrs = attrs
        self._parent = parent
        self.trace_id = ""
        self.span_id = _new_id()
        self.parent_id: Optional[str] = None
        self.start_unix = 0.0
        self.seconds: Optional[float] = None
        self._start_perf = 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        parent = self._parent
        stack = _stack()
        if parent is None and stack:
            parent = stack[-1].context
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = _new_id()
        stack.append(self)
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start_perf
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - unbalanced exit
            stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._record({
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "ts": self.start_unix,
            "dur": self.seconds,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": _clean_attrs(self.attrs),
        })
        return False


class _Timed:
    """Always-measuring context manager; records a span only when enabled.

    This is the drop-in replacement for the deprecated
    ``repro.utils.timers.Timer``: the elapsed wall time is available as
    ``.seconds`` whether or not tracing is on, so experiment scripts can
    keep reporting durations while traced runs additionally get a span.
    """

    __slots__ = ("name", "attrs", "seconds", "_start_perf", "_start_unix")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = str(name)
        self.attrs = attrs
        self.seconds: Optional[float] = None
        self._start_perf = 0.0
        self._start_unix = 0.0

    def __enter__(self) -> "_Timed":
        self._start_unix = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start_perf
        tracer = active()   # honours sampling suppression, unlike _TRACER
        if tracer is not None:
            tracer.record_span(self.name, start_unix=self._start_unix,
                               duration=self.seconds,
                               parent=current_context(), attrs=self.attrs)
        return False

    def set(self, **attrs) -> "_Timed":
        self.attrs.update(attrs)
        return self


def timed(name: str, **attrs) -> _Timed:
    """Measure a block's wall time; ``.seconds`` is set on exit.

    Unlike :func:`span`, the measurement happens even when tracing is
    disabled — only the span record is conditional.
    """
    return _Timed(name, attrs)


class Tracer:
    """Bounded in-memory ring of span records plus an optional JSONL sink."""

    def __init__(self, *, ring_size: int = 4096,
                 jsonl_path: Optional[str] = None,
                 sample_rate: int = 1):
        ring_size = int(ring_size)
        if ring_size < 1:
            raise ValueError("tracer ring_size must be >= 1")
        sample_rate = int(sample_rate)
        if sample_rate < 1:
            raise ValueError("tracer sample_rate must be >= 1")
        self.ring_size = ring_size
        self.sample_rate = sample_rate
        self.jsonl_path = os.fspath(jsonl_path) if jsonl_path is not None else None
        self._ring: deque = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._jsonl = (open(self.jsonl_path, "a", encoding="utf-8")
                       if self.jsonl_path is not None else None)
        self.emitted = 0
        # Deterministic 1-in-N sampling: a plain counter over root spans, not
        # an RNG, so a test hitting a sampled server N times knows exactly
        # which requests were traced.  ``count.__next__`` is GIL-atomic.
        self._root_counter = itertools.count()

    def sample_root(self) -> bool:
        """Admission decision for a new root span (1-in-``sample_rate``)."""
        if self.sample_rate <= 1:
            return True
        return next(self._root_counter) % self.sample_rate == 0

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._ring.append(record)
            self.emitted += 1
            if self._jsonl is not None:
                try:
                    self._jsonl.write(json.dumps(record, separators=(",", ":"))
                                      + "\n")
                    self._jsonl.flush()
                except (OSError, ValueError):  # pragma: no cover - sink gone
                    pass

    def record_span(self, name: str, *, start_unix: float, duration: float,
                    parent: Optional[SpanContext] = None,
                    attrs: Optional[Dict[str, Any]] = None) -> SpanContext:
        """Record an explicitly-timed span (for loops that avoid allocation)."""
        parent = SpanContext.from_wire(parent) if not (
            parent is None or isinstance(parent, SpanContext)) else parent
        trace_id = parent.trace_id if parent is not None else _new_id()
        span_id = _new_id()
        self._record({
            "name": str(name),
            "trace": trace_id,
            "span": span_id,
            "parent": parent.span_id if parent is not None else None,
            "ts": float(start_unix),
            "dur": max(0.0, float(duration)),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": _clean_attrs(attrs),
        })
        return SpanContext(trace_id, span_id)

    def ingest(self, record: Dict[str, Any]) -> None:
        """Adopt a record produced elsewhere (e.g. a process worker)."""
        if isinstance(record, dict) and "name" in record:
            self._record(dict(record))

    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        with self._lock:
            if self._jsonl is not None:
                try:
                    self._jsonl.close()
                except OSError:  # pragma: no cover
                    pass
                self._jsonl = None


_TRACER: Optional[Tracer] = None


def enable(*, ring_size: int = 4096,
           jsonl_path: Optional[str] = None,
           sample_rate: int = 1) -> Tracer:
    """Install (and return) a process-wide tracer; replaces any previous one.

    ``sample_rate=N`` keeps 1 in every N trace *trees*: the decision is made
    once per root span by a deterministic counter (the 1st, N+1st, ... roots
    are traced), and an unsampled root suppresses every descendant span on
    its thread for its dynamic extent.  ``sample_rate=1`` (default) traces
    everything.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = Tracer(ring_size=ring_size, jsonl_path=jsonl_path,
                     sample_rate=sample_rate)
    if previous is not None:
        previous.close()
    return _TRACER


def disable() -> None:
    """Tear the tracer down; ``span()`` reverts to the shared no-op."""
    global _TRACER
    previous = _TRACER
    _TRACER = None
    if previous is not None:
        previous.close()


def enabled() -> bool:
    return _TRACER is not None


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` — the cheap hot-loop gate.

    Answers ``None`` inside a sampled-out root span's extent, so hot loops
    gating on ``active()`` drop their records along with the rest of the
    suppressed tree.
    """
    if getattr(_LOCAL, "suppressed", 0) > 0:
        return None
    return _TRACER


def span(name: str, parent: Optional[SpanContext] = None, **attrs):
    """Open a span; returns the shared no-op when tracing is disabled."""
    tracer = _TRACER
    if tracer is None or getattr(_LOCAL, "suppressed", 0) > 0:
        return NOOP_SPAN
    if parent is not None and not isinstance(parent, SpanContext):
        parent = SpanContext.from_wire(parent)
    if parent is None and not _stack() and not tracer.sample_root():
        return SUPPRESSED_SPAN
    return Span(tracer, name, parent, attrs)


def current_context() -> Optional[SpanContext]:
    """The innermost open span's context on this thread, if any."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1].context
    return None


def remote_span_record(name: str, wire: Optional[Sequence[str]], *,
                       start_unix: float, duration: float,
                       attrs: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a span record in a worker that has no tracer of its own.

    ``wire`` is the parent's ``SpanContext.to_wire()`` tuple as shipped in
    the task payload (empty strings mean "no parent").  The caller returns
    the dict to the coordinating process, which :meth:`Tracer.ingest`\\ s it.
    """
    trace_id = str(wire[0]) if wire and wire[0] else _new_id()
    parent_id = str(wire[1]) if wire and len(wire) > 1 and wire[1] else None
    return {
        "name": str(name),
        "trace": trace_id,
        "span": _new_id(),
        "parent": parent_id,
        "ts": float(start_unix),
        "dur": max(0.0, float(duration)),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "attrs": _clean_attrs(attrs),
    }


# --------------------------------------------------------------------------
# Trace file tooling (CLI back-end): JSONL -> Chrome trace / latency table.
# --------------------------------------------------------------------------

def read_jsonl(path) -> List[Dict[str, Any]]:
    """Load span records from a JSONL trace file."""
    records: List[Dict[str, Any]] = []
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise WireFormatError(
                        f"{path}:{lineno}: not valid JSON ({exc})") from exc
                if not isinstance(record, dict) or "name" not in record:
                    raise WireFormatError(
                        f"{path}:{lineno}: not a span record")
                records.append(record)
    except OSError as exc:
        raise WireFormatError(f"cannot read trace file {path}: {exc}") from exc
    return records


def chrome_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Render span records as a Chrome trace-event document (Perfetto)."""
    events = []
    for record in records:
        attrs = record.get("attrs") or {}
        args = dict(attrs)
        args["trace"] = record.get("trace")
        args["span"] = record.get("span")
        if record.get("parent"):
            args["parent"] = record.get("parent")
        events.append({
            "name": record.get("name", "?"),
            "cat": "repro",
            "ph": "X",
            "ts": float(record.get("ts", 0.0)) * 1e6,
            "dur": max(0.0, float(record.get("dur", 0.0))) * 1e6,
            "pid": int(record.get("pid", 0)),
            "tid": int(record.get("tid", 0)),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate records into per-span-name latency rows (sorted by total)."""
    durations: Dict[str, List[float]] = {}
    for record in records:
        name = str(record.get("name", "?"))
        durations.setdefault(name, []).append(
            max(0.0, float(record.get("dur", 0.0))))
    rows = []
    for name, durs in durations.items():
        durs.sort()
        count = len(durs)
        total = sum(durs)
        rows.append({
            "name": name,
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count,
            "p50_seconds": durs[(count - 1) // 2],
            "p95_seconds": durs[min(count - 1, (95 * count) // 100)],
            "max_seconds": durs[-1],
        })
    rows.sort(key=lambda row: (-row["total_seconds"], row["name"]))
    return rows
