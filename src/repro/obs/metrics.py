"""Counters, gauges, fixed-bucket histograms and Prometheus exposition.

A :class:`MetricsRegistry` holds two kinds of sources:

* **Instruments** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  objects created through :meth:`MetricsRegistry.counter` (etc.) and updated
  by the code that owns them.  Creation is idempotent by name so module-level
  instruments survive re-imports and multiple servers in one process.
* **Collectors** — callables returning metric *families* at scrape time.
  This is how the existing hand-maintained stats objects
  (``SessionStats``/``ServeStats``/store counters) register into the
  registry without changing their internal representation: the collector
  adapts a snapshot of the stats dict into families on each scrape.

A *family* is ``(name, type, help, samples)`` with ``samples`` a list of
``(suffix, labels_dict, value)`` — the exact shape
:meth:`MetricsRegistry.render` turns into Prometheus text exposition
(``# HELP`` / ``# TYPE`` lines, label escaping, cumulative ``_bucket{le=}``
series with ``_sum`` / ``_count``).

A process-wide default registry (:func:`get_registry`) carries the always-on
instruments — per-round kernel time and per-problem solve latency — which
the HTTP server's ``/metrics?format=prometheus`` renders alongside its own
per-server registry.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_families",
    "family",
    "gauge_family",
    "get_registry",
]

#: Solve latencies span ~100µs (tiny cached corpora) to minutes (100k-node
#: cold solves); round kernels reuse the low half.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

Family = Tuple[str, str, str, List[Tuple[str, Dict[str, str], float]]]


def family(name: str, type_: str, help_: str,
           samples: Iterable[Tuple[str, Dict[str, str], float]]) -> Family:
    """Build a metric family tuple (the shape collectors return)."""
    return (str(name), str(type_), str(help_), list(samples))


def gauge_family(name: str, help_: str, value: float,
                 labels: Optional[Dict[str, str]] = None) -> Family:
    return family(name, "gauge", help_, [("", dict(labels or {}), float(value))])


def counter_families(prefix: str, totals: Dict[str, Any],
                     help_prefix: str) -> List[Family]:
    """One ``<prefix>_<key>_total`` counter family per numeric dict entry.

    The adapter that lets hand-maintained stats dicts (``SessionStats``,
    store counters) register into a registry unchanged.
    """
    families = []
    for key in sorted(totals):
        value = totals[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        families.append(family(
            f"{prefix}_{key}_total", "counter", f"{help_prefix}: {key}",
            [("", {}, float(value))]))
    return families


def _check_name(name: str) -> str:
    name = str(name)
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name: {name!r}")
    if name[0].isdigit():
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _label_key(labelnames: Sequence[str],
               labels: Dict[str, Any]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {tuple(labelnames)}, got {tuple(labels)}")
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """Monotonically increasing value, optionally per label set."""

    def __init__(self, name: str, help_: str,
                 labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = str(help_)
        self.labelnames = tuple(str(n) for n in labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        amount = float(amount)
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def families(self) -> List[Family]:
        with self._lock:
            values = dict(self._values)
        if not self.labelnames and not values:
            values = {(): 0.0}
        samples = [("", dict(zip(self.labelnames, key)), value)
                   for key, value in sorted(values.items())]
        return [family(self.name, "counter", self.help, samples)]


class Gauge:
    """A value that can go up and down, optionally per label set."""

    def __init__(self, name: str, help_: str,
                 labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = str(help_)
        self.labelnames = tuple(str(n) for n in labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-float(amount), **labels)

    def families(self) -> List[Family]:
        with self._lock:
            values = dict(self._values)
        if not self.labelnames and not values:
            values = {(): 0.0}
        samples = [("", dict(zip(self.labelnames, key)), value)
                   for key, value in sorted(values.items())]
        return [family(self.name, "gauge", self.help, samples)]


class Histogram:
    """Fixed-bucket histogram: cumulative bucket counts plus sum/count."""

    def __init__(self, name: str, help_: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.name = _check_name(name)
        self.help = str(help_)
        self.labelnames = tuple(str(n) for n in labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds or any(not math.isfinite(b) for b in bounds):
            raise ValueError("histogram buckets must be finite and non-empty")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        self.buckets = tuple(bounds)
        self._lock = threading.Lock()
        # per label set: [per-bucket counts..., +Inf count], sum
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        key = _label_key(self.labelnames, labels)
        # Index of the first bucket with value <= bound; len(buckets) = +Inf.
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[index] += 1
            self._sums[key] += value

    def families(self) -> List[Family]:
        with self._lock:
            counts = {key: list(value) for key, value in self._counts.items()}
            sums = dict(self._sums)
        samples: List[Tuple[str, Dict[str, str], float]] = []
        for key in sorted(counts):
            labels = dict(zip(self.labelnames, key))
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts[key]):
                cumulative += bucket_count
                samples.append(("_bucket", {**labels, "le": _format_value(bound)},
                                float(cumulative)))
            cumulative += counts[key][-1]
            samples.append(("_bucket", {**labels, "le": "+Inf"},
                            float(cumulative)))
            samples.append(("_sum", labels, sums[key]))
            samples.append(("_count", labels, float(cumulative)))
        if not samples and not self.labelnames:
            cumulative = 0.0
            for bound in self.buckets:
                samples.append(("_bucket", {"le": _format_value(bound)}, 0.0))
            samples.append(("_bucket", {"le": "+Inf"}, 0.0))
            samples.append(("_sum", {}, 0.0))
            samples.append(("_count", {}, 0.0))
        return [family(self.name, "histogram", self.help, samples)]


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(value: str) -> str:
    return str(value).replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Named instruments plus scrape-time collectors, rendered as Prometheus."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}
        self._collectors: List[Callable[[], Iterable[Family]]] = []

    def _instrument(self, cls, name: str, help_: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}")
                return existing
            instrument = cls(name, help_, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._instrument(Counter, name, help_, labelnames=labelnames)

    def gauge(self, name: str, help_: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._instrument(Gauge, name, help_, labelnames=labelnames)

    def histogram(self, name: str, help_: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._instrument(Histogram, name, help_,
                                labelnames=labelnames, buckets=buckets)

    def register_collector(self,
                           collector: Callable[[], Iterable[Family]]) -> None:
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> List[Family]:
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        families: List[Family] = []
        for instrument in instruments:
            families.extend(instrument.families())
        for collector in collectors:
            families.extend(collector())
        return families

    def render(self, *extra: "MetricsRegistry") -> str:
        """Prometheus text exposition of this registry plus ``extra`` ones."""
        families: List[Family] = list(self.collect())
        for registry in extra:
            families.extend(registry.collect())
        seen = set()
        lines: List[str] = []
        for name, type_, help_, samples in families:
            if name in seen:
                # Two sources exporting the same family: keep the first
                # (HELP/TYPE may appear only once per exposition).
                continue
            seen.add(name)
            lines.append(f"# HELP {name} {_escape_help(help_)}")
            lines.append(f"# TYPE {name} {type_}")
            for suffix, labels, value in samples:
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(labels[key])}"'
                        for key in labels)
                    lines.append(
                        f"{name}{suffix}{{{rendered}}} {_format_value(value)}")
                else:
                    lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (always-on instruments live here)."""
    return _DEFAULT
