#!/usr/bin/env python
"""Quickstart: the three problems of the paper on one small graph.

Builds a small collaboration-network-like graph, opens one :class:`repro.Session`
for it, then runs

1. the approximate coreness protocol (Theorem I.1),
2. the approximate min-max edge orientation (Theorem I.2),
3. the weak densest subset pipeline (Theorem I.3),

and compares each output against its exact centralized baseline.  The session
is the recommended entry point: the three requests share one CSR view and one
λ=0 elimination trajectory (the orientation replays the rounds the coreness
request already computed).

Run with:  python examples/quickstart.py          (REPRO_SMOKE=1 shrinks the graph)
"""

from __future__ import annotations

import os

from repro import Session
from repro.analysis.tables import format_table
from repro.baselines import coreness, lp_lower_bound, maximum_density
from repro.graph.generators import powerlaw_cluster

SMOKE = os.environ.get("REPRO_SMOKE") == "1"   #: CI smoke mode: smaller graph


def main() -> None:
    graph = powerlaw_cluster(80 if SMOKE else 300, 3, 0.3, seed=7)
    session = Session(graph)
    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}, density={graph.density():.3f}")

    # ------------------------------------------------------------- coreness
    epsilon = 0.5
    approx = session.coreness(epsilon=epsilon)
    exact = coreness(graph)
    worst = max(approx.values[v] / max(exact[v], 1e-12) for v in graph.nodes())
    print(f"\n[coreness]  rounds={approx.rounds}  proven guarantee={approx.guarantee:.2f}")
    print(f"[coreness]  worst-node measured ratio = {worst:.3f} (paper: converges to ~2 quickly)")
    rows = [[v, exact[v], approx.values[v]] for v in approx.top_nodes(5)]
    print(format_table(["node", "exact coreness", "approximate"], rows))

    # ---------------------------------------------------------- orientation
    orientation = session.orientation(epsilon=epsilon)
    rho_star = lp_lower_bound(graph)
    print(f"\n[orientation]  max weighted in-degree = {orientation.max_in_weight:.2f}"
          f"  (LP lower bound rho* = {rho_star:.2f},"
          f" ratio = {orientation.max_in_weight / rho_star:.2f})")
    print(f"[orientation]  conflicts resolved = {orientation.orientation.conflicts},"
          f" uncovered edges = {orientation.orientation.violations}")

    # ------------------------------------------------------- densest subset
    densest = session.densest(epsilon=1.0)
    print(f"\n[densest]  reported subsets = {len(densest.subsets)},"
          f" best density = {densest.best_density:.3f},"
          f" exact rho* = {maximum_density(graph):.3f}")
    print(f"[densest]  total rounds across the 4 phases = {densest.rounds_total}"
          f" (independent of the graph diameter)")

    # The orientation reused every round the coreness request had computed:
    stats = session.stats
    print(f"\n[session]  rounds executed = {stats.rounds_executed},"
          f" reused from cached trajectories = {stats.rounds_reused}")


if __name__ == "__main__":
    main()
