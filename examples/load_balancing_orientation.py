#!/usr/bin/env python
"""Scenario: min-max edge orientation as distributed load balancing.

Each node is a machine and each edge is a job that must be executed by one of its
two endpoints; the weight is the job's cost.  Minimising the maximum weighted
in-degree is exactly minimising the makespan (Section I.B of the paper).  We build a
weighted peer-to-peer-like graph, run the augmented elimination procedure and
compare the resulting assignment against the LP lower bound ρ*, the centralized
greedy heuristic, and the Barenboim–Elkin-style two-phase distributed baseline
(which pays an extra factor ~2 because it needs a separate density-estimation
phase).

Run with:  python examples/load_balancing_orientation.py   (REPRO_SMOKE=1 shrinks it)
"""

from __future__ import annotations

import os

from repro import Session
from repro.analysis.tables import format_table
from repro.baselines import greedy_orientation, lp_lower_bound, two_phase_orientation
from repro.graph.generators import erdos_renyi_gnm, with_two_level_weights

SMOKE = os.environ.get("REPRO_SMOKE") == "1"   #: CI smoke mode: smaller cluster


def main() -> None:
    machines, jobs = (150, 600) if SMOKE else (500, 2000)
    topology = erdos_renyi_gnm(machines, jobs, seed=23)
    # Two job classes: cheap (cost 1) and expensive (cost 8) -- the weight regime in
    # which the centralized problem is already NP-hard.
    graph = with_two_level_weights(topology, heavy_weight=8.0, heavy_fraction=0.25, seed=24)
    print(f"cluster: machines={graph.num_nodes}, jobs={graph.num_edges}, "
          f"total work={graph.total_weight:.0f}")

    rho_star = lp_lower_bound(graph)
    ours = Session(graph).orientation(epsilon=0.5)
    greedy = greedy_orientation(graph)
    two_phase = two_phase_orientation(graph, epsilon=0.5)

    rows = [
        ["LP lower bound (rho*)", f"{rho_star:.2f}", "-", "-"],
        ["this paper (Alg. 2 + N_v)", f"{ours.max_in_weight:.2f}",
         f"{ours.max_in_weight / rho_star:.2f}", ours.rounds],
        ["greedy (centralized)", f"{greedy.max_in_weight:.2f}",
         f"{greedy.max_in_weight / rho_star:.2f}", "-"],
        ["two-phase (Barenboim-Elkin style)", f"{two_phase.max_in_weight:.2f}",
         f"{two_phase.max_in_weight / rho_star:.2f}", two_phase.total_rounds],
    ]
    print(format_table(["method", "makespan (max in-degree)", "ratio vs rho*", "rounds"], rows))

    print(f"\nproven guarantee for this paper's algorithm: {ours.guarantee:.2f}x rho*")
    print(f"conflicts resolved with the extra round: {ours.orientation.conflicts}; "
          f"edges claimed by neither endpoint: {ours.orientation.violations} "
          f"(always 0 with Lambda = R, Lemma III.11)")


if __name__ == "__main__":
    main()
