#!/usr/bin/env python
"""Scenario: measuring community density in a distributed social graph.

The paper motivates the densest-subset problem as a way to quantify how strongly a
set of users forms a community.  Because the exact problem fundamentally needs Ω(D)
rounds (a node cannot know about denser regions far away), the paper defines the
*weak* densest subset problem (Definition IV.1): a collection of disjoint,
leader-labelled subsets such that at least one of them is a 2(1+ε)-approximate
densest subset.

This example plants communities of different densities, runs the 4-phase pipeline
and reports every subset the protocol announces, alongside the exact ρ* and the
classical centralized baselines.

Run with:  python examples/community_density.py   (REPRO_SMOKE=1 shrinks the network)
"""

from __future__ import annotations

import os

from repro import Session
from repro.analysis.tables import format_table
from repro.baselines import bahmani_densest_subset, charikar_peeling, maximum_density
from repro.graph.generators import complete_graph, erdos_renyi_gnp
from repro.graph.graph import Graph
from repro.graph.properties import hop_diameter
from repro.utils.rng import ensure_rng

SMOKE = os.environ.get("REPRO_SMOKE") == "1"   #: CI smoke mode: half-size communities
SCALE = 1 if SMOKE else 2                       #: community size multiplier


def build_network() -> Graph:
    """Three communities of very different densities plus sparse cross links.

    At full scale (SCALE = 2; smoke mode halves every size):

    * community A: a 20-user clique (density 9.5)      -> nodes   0..19
    * community B: 40 users, ER(p=0.25) (density ~4.9) -> nodes  20..59
    * community C: 60 users, ER(p=0.10) (density ~3.0) -> nodes  60..119
    * ~40 random cross-community acquaintance edges.
    """
    a, b, c = 10 * SCALE, 20 * SCALE, 30 * SCALE
    graph = Graph()
    for u, v, w in complete_graph(a).edges():
        graph.add_edge(u, v, w)
    for u, v, w in erdos_renyi_gnp(b, 0.25, seed=31).edges():
        graph.add_edge(a + u, a + v, w)
    for u, v, w in erdos_renyi_gnp(c, 0.10, seed=32).edges():
        graph.add_edge(a + b + u, a + b + v, w)
    rng = ensure_rng(33)
    total = a + b + c
    added = 0
    while added < 20 * SCALE:
        u = int(rng.integers(0, total))
        v = int(rng.integers(0, total))
        if u // a != v // a and u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, 1.0)
            added += 1
    return graph


def main() -> None:
    graph = build_network()
    print(f"network: n={graph.num_nodes}, m={graph.num_edges}, "
          f"diameter={hop_diameter(graph, exact=False)}")

    epsilon = 1.0
    result = Session(graph).densest(epsilon=epsilon)
    rho_star = maximum_density(graph)

    rows = []
    for leader, members in sorted(result.subsets.items(), key=lambda kv: -len(kv[1])):
        rows.append([
            str(leader),
            len(members),
            f"{result.reported_densities.get(leader, float('nan')):.3f}",
            f"{result.actual_densities[leader]:.3f}",
        ])
    print("\nsubsets announced by the weak densest subset protocol:")
    print(format_table(["leader", "size", "announced density", "true density"], rows))

    print(f"\nexact rho*                       = {rho_star:.3f}")
    print(f"best announced subset density    = {result.best_density:.3f}"
          f"  (required: >= rho*/{result.gamma:.2f} = {rho_star / result.gamma:.3f})")
    print(f"Charikar greedy peeling          = {charikar_peeling(graph).density:.3f}")
    print(f"Bahmani et al. (pass-based)      = "
          f"{bahmani_densest_subset(graph, epsilon).density:.3f}")
    print(f"rounds used by the pipeline      = {result.rounds_total} "
          f"({result.rounds_per_phase})")


if __name__ == "__main__":
    main()
