#!/usr/bin/env python
"""Scenario: identifying influential spreaders in a social network.

The paper's motivating application (Section I, citing Kitsak et al.): users with
high coreness are good "spreaders".  We build a core–periphery social network, run
the distributed approximate-coreness protocol with a modest round budget, and show
that the top-k nodes by approximate coreness are exactly the planted core — i.e. the
approximation is good enough for the downstream ranking task long before the exact
values are available, and without ever paying the network diameter in rounds.

The epsilon sweep below is the Session API's sweet spot: the round budget grows
as epsilon shrinks, so every request *resumes* the elimination trajectory the
previous one cached instead of recomputing it from round 1.

Run with:  python examples/social_influencers.py   (REPRO_SMOKE=1 shrinks it)
"""

from __future__ import annotations

import os

from repro import Session
from repro.analysis.ratios import summarize_ratios
from repro.analysis.tables import format_table
from repro.baselines import coreness, montresor_kcore
from repro.graph.generators import core_periphery
from repro.graph.properties import hop_diameter

SMOKE = os.environ.get("REPRO_SMOKE") == "1"   #: CI smoke mode: smaller network
CORE_SIZE = 25
PERIPHERY = 120 if SMOKE else 400
CHAIN_LENGTH = 40 if SMOKE else 120   #: a long "chain of followers" that inflates the diameter


def build_network():
    """A core-periphery community with one long follower chain attached.

    The chain is what makes the *exact* distributed k-core protocol slow: its
    surviving numbers only settle one hop per round, so convergence costs Θ(chain
    length) rounds, while the approximate protocol's budget stays O(log n).
    """
    graph = core_periphery(CORE_SIZE, PERIPHERY, attach_degree=3, seed=13)
    anchor = CORE_SIZE  # first periphery user
    next_id = graph.num_nodes
    prev = anchor
    for _ in range(CHAIN_LENGTH):
        graph.add_edge(prev, next_id, 1.0)
        prev = next_id
        next_id += 1
    return graph


def main() -> None:
    graph = build_network()
    print(f"social network: n={graph.num_nodes}, m={graph.num_edges}, "
          f"diameter={hop_diameter(graph, exact=False)}")

    exact = coreness(graph)
    session = Session(graph)
    rows = []
    for epsilon in (2.0, 1.0, 0.5, 0.25):
        # Each shrinking epsilon means a larger budget T; the session resumes the
        # cached trajectory, so only the new rounds are computed.
        result = session.coreness(epsilon=epsilon)
        summary = summarize_ratios(result.values, exact)
        top = set(result.top_nodes(CORE_SIZE))
        recovered = len(top & set(range(CORE_SIZE)))
        rows.append([epsilon, result.rounds, f"{result.guarantee:.2f}",
                     f"{summary.max:.3f}", f"{summary.mean:.3f}",
                     f"{recovered}/{CORE_SIZE}"])
    print(format_table(
        ["epsilon", "rounds T", "guarantee 2n^(1/T)", "worst ratio", "mean ratio",
         "core recovered in top-k"],
        rows))

    # For reference: the exact distributed protocol (Montresor et al.) has to wait
    # for the follower chain to peel away one hop per round.
    exact_distributed = montresor_kcore(graph)
    print(f"\nMontresor et al. (exact distributed k-core) needed "
          f"{exact_distributed.rounds_to_convergence} rounds to converge on this graph; "
          f"the approximate protocol above used "
          f"{session.coreness(epsilon=0.5).rounds} rounds for a "
          f"ranking-equivalent answer (and its budget grows only with log n, never "
          f"with the chain length).")
    print(f"session: {session.stats.rounds_executed} rounds executed across the sweep, "
          f"{session.stats.rounds_reused} reused from cached trajectories.")


if __name__ == "__main__":
    main()
