#!/usr/bin/env python
"""Scenario: fitting the protocol into the CONGEST model with Λ-rounding.

With arbitrary real edge weights, a surviving number may need many bits; the paper
(Section III-C, Corollary III.10) rounds every value down onto a geometric grid
``Λ = {(1+λ)^k}`` so that a message only needs ``log2 |Λ|`` bits, at the price of a
``(1+λ)`` slack on the lower side of the guarantee.

This example opens a ``Session`` over the *faithful* engine on a weighted graph
(the per-node simulator charges message sizes through the CONGEST accounting
model and attaches them to every result as ``message_stats``), runs the compact
elimination procedure for several values of λ, and prints the traffic/accuracy
trade-off together with the per-message budget of the CONGEST model for that
graph size.

Run with:  python examples/message_size_tradeoff.py   (REPRO_SMOKE=1 shrinks it)
"""

from __future__ import annotations

import os

from repro import Session
from repro.analysis.ratios import summarize_ratios
from repro.analysis.tables import format_table
from repro.baselines import coreness
from repro.core.rounds import rounds_for_epsilon
from repro.distsim.congest import CongestBudget
from repro.graph.generators import barabasi_albert, with_uniform_real_weights

SMOKE = os.environ.get("REPRO_SMOKE") == "1"   #: CI smoke mode: smaller graph


def main() -> None:
    topology = barabasi_albert(150 if SMOKE else 600, 3, seed=41)
    graph = with_uniform_real_weights(topology, 0.5, 4.0, seed=42)   # real-valued weights
    exact = coreness(graph)
    epsilon = 0.5
    T = rounds_for_epsilon(graph.num_nodes, epsilon)
    budget = CongestBudget(num_nodes=graph.num_nodes, words=2)
    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}, real-valued weights")
    print(f"round budget T = {T} (epsilon = {epsilon}); CONGEST budget per message = "
          f"{budget.budget_bits} bits\n")

    session = Session(graph, engine="faithful")
    rows = []
    for lam in (0.0, 0.05, 0.1, 0.25, 0.5):
        result = session.surviving(rounds=T, lam=lam, track_kept=False)
        stats = result.message_stats
        summary = summarize_ratios(result.values, exact)
        fits = stats.max_message_bits <= budget.budget_bits
        rows.append([
            lam,
            result.grid.grid_size() or "unbounded",
            stats.max_message_bits,
            f"{stats.total_bits / 1e6:.3f}",
            f"{summary.max:.3f}",
            f"{summary.mean:.3f}",
            "yes" if fits else "no",
        ])
    print(format_table(
        ["lambda", "|Lambda|", "max message bits", "total megabits",
         "worst ratio vs coreness", "mean ratio", "fits CONGEST budget"],
        rows))
    print("\nCorollary III.10: with rounding the values may dip below the exact coreness,"
          " but never below c(v)/(1+lambda); the upper-side guarantee is unchanged.")


if __name__ == "__main__":
    main()
