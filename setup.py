"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can also be installed in environments where PEP-517 editable builds are
unavailable (e.g. offline machines without the ``wheel`` package), via
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
