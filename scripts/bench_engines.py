#!/usr/bin/env python
"""Micro-benchmark: sharded vs vectorized engine on one generated graph.

Prints a one-line timing comparison (plus a values-identical check), e.g.::

    $ python scripts/bench_engines.py --nodes 100000 --rounds 10 --shards 8
    engines n=100000 m=299994 T=10 | vectorized 2.31s | sharded(8) 2.78s | ratio 1.20x | identical=True

Used by ``scripts/check.sh`` with a small graph as a smoke check; run it with
``--nodes 100000`` to reproduce the E8 acceptance measurement (sharded must
stay within 2x of vectorized while touching one shard's frontier arrays at a
time).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.engine import get_engine  # noqa: E402
from repro.graph.csr import graph_to_csr  # noqa: E402
from repro.graph.generators.random_graphs import barabasi_albert  # noqa: E402


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=20000, help="graph size n")
    parser.add_argument("--degree", type=int, default=3, help="BA attachment degree")
    parser.add_argument("--rounds", type=int, default=10, help="round budget T")
    parser.add_argument("--shards", type=int, default=8, help="shard count")
    parser.add_argument("--workers", type=int, default=None,
                        help="thread-pool size for the sharded engine (default: sequential)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args()

    graph = barabasi_albert(args.nodes, args.degree, seed=args.seed)
    csr = graph_to_csr(graph)  # shared view: time the engines, not the conversion

    vectorized = get_engine("vectorized")
    sharded = get_engine("sharded", num_shards=args.shards, max_workers=args.workers)

    vec_seconds = best_of(
        lambda: vectorized.run(graph, args.rounds, track_kept=False, csr=csr),
        args.repeats)
    sharded_seconds = best_of(
        lambda: sharded.run(graph, args.rounds, track_kept=False, csr=csr),
        args.repeats)

    vec_result = vectorized.run(graph, args.rounds, track_kept=False, csr=csr)
    sharded_result = sharded.run(graph, args.rounds, track_kept=False, csr=csr)
    identical = bool(np.array_equal(vec_result.trajectory, sharded_result.trajectory))

    ratio = sharded_seconds / vec_seconds if vec_seconds > 0 else float("inf")
    shard_label = f"{args.shards}" + (f"x{args.workers}w" if args.workers else "")
    print(f"engines n={graph.num_nodes} m={graph.num_edges} T={args.rounds} | "
          f"vectorized {vec_seconds:.2f}s | sharded({shard_label}) {sharded_seconds:.2f}s | "
          f"ratio {ratio:.2f}x | identical={identical}")
    if not identical:
        print("error: engines disagree on the surviving numbers", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
