#!/usr/bin/env python
"""Compatibility shim: sharded-vs-vectorized timing, now part of scripts/bench.py.

Historically this script carried the E8 acceptance measurement; its docstring
claimed a 2x gate that nothing here actually enforced (the in-suite variant in
``tests/test_engine_bench.py`` enforces it on a smaller graph).  The
measurement now lives in the unified harness — run::

    python scripts/bench.py --sizes 100000 --rounds 10

for the full engine × parallel-mode comparison with persisted JSON.  This
shim keeps the old one-line interface working, delegating to the harness; it
still exits non-zero when the engines disagree on the surviving numbers.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench import bench_engines  # noqa: E402
from repro.graph.generators.random_graphs import barabasi_albert  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=20000, help="graph size n")
    parser.add_argument("--degree", type=int, default=3, help="BA attachment degree")
    parser.add_argument("--rounds", type=int, default=10, help="round budget T")
    parser.add_argument("--shards", type=int, default=8, help="shard count")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the parallel sharded modes (default 2)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args()

    graph = barabasi_albert(args.nodes, args.degree, seed=args.seed)
    # Historically --workers switched the single sharded timing onto a thread
    # pool; keep that meaning (and skip the configs the shim never reports).
    sharded_config = "sharded-thread" if args.workers else "sharded-seq"
    rows = bench_engines([(f"ba-{args.nodes}", graph)], args.rounds, args.shards,
                         args.workers or 2, args.repeats, lambda line: None,
                         configs=("vectorized", sharded_config))
    by_config = {row["config"]: row for row in rows}
    vec = by_config["vectorized"]
    sharded = by_config[sharded_config]
    ratio = sharded["seconds"] / vec["seconds"] if vec["seconds"] else float("inf")
    identical = all(row["identical"] for row in rows)
    shard_label = f"{args.shards}" + (f"x{args.workers}w" if args.workers else "")
    print(f"engines n={graph.num_nodes} m={graph.num_edges} T={args.rounds} | "
          f"vectorized {vec['seconds']:.2f}s | sharded({shard_label}) "
          f"{sharded['seconds']:.2f}s | ratio {ratio:.2f}x | identical={identical}")
    if not identical:
        print("error: engines disagree on the surviving numbers", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
