#!/usr/bin/env python
"""Repeated-request throughput: cold one-shot calls vs one warm Session.

Simulates the serving shape the session API is built for — many parametrised
requests against one shared graph — and times two strategies over the *same*
request sequence:

* **cold**: a fresh ``Session`` per request (what the one-shot free functions
  do): every request rebuilds the CSR view and reruns every round;
* **warm**: one long-lived ``Session``: the CSR view and Λ-grids are built
  once, repeated requests hit the result cache, and growing round budgets
  resume cached trajectory prefixes.

The default workload issues 50 mixed coreness/orientation requests (several
round budgets, one rounded-λ variant) against a 10k-node Barabási–Albert
graph, e.g.::

    $ python scripts/bench_session.py --nodes 10000 --requests 50 --require 2.0
    session n=10000 m=29994 | requests=50 | cold 12.41s | warm 1.03s | speedup 12.0x | identical=True

``--require X`` exits non-zero when the speedup falls below ``X`` (used by
``scripts/check.sh`` with the acceptance threshold of 2x).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.graph.generators.random_graphs import barabasi_albert  # noqa: E402
from repro.session import Session  # noqa: E402


def build_workload(requests: int, budgets) -> list:
    """A cycling mixed-problem request list: ``(problem, params)`` pairs.

    Orientation appears once per cycle (its kept-set recovery dominates cold
    cost); coreness covers several budgets plus one λ-rounded variant, so the
    warm session exercises result hits, grid memoisation and prefix resumes.
    """
    cycle = [("coreness", {"rounds": t}) for t in budgets]
    cycle.append(("coreness", {"rounds": max(budgets), "lam": 0.1}))
    cycle.append(("orientation", {"rounds": max(budgets)}))
    return [cycle[i % len(cycle)] for i in range(requests)]


def run_cold(graph, engine, workload) -> tuple:
    start = time.perf_counter()
    results = [Session(graph, engine=engine).solve(problem, **params)
               for problem, params in workload]
    return time.perf_counter() - start, results


def run_warm(graph, engine, workload) -> tuple:
    session = Session(graph, engine=engine)
    start = time.perf_counter()
    results = [session.solve(problem, **params) for problem, params in workload]
    return time.perf_counter() - start, results, session


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10000, help="graph size n")
    parser.add_argument("--degree", type=int, default=3, help="BA attachment degree")
    parser.add_argument("--requests", type=int, default=50,
                        help="number of mixed-problem requests")
    parser.add_argument("--budgets", type=int, nargs="+", default=[4, 6, 8, 10],
                        help="coreness round budgets cycled through")
    parser.add_argument("--engine", default="vectorized", help="engine spec")
    parser.add_argument("--require", type=float, default=None,
                        help="exit non-zero when the warm speedup is below this")
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args()

    graph = barabasi_albert(args.nodes, args.degree, seed=args.seed)
    workload = build_workload(args.requests, sorted(args.budgets))

    cold_seconds, cold_results = run_cold(graph, args.engine, workload)
    warm_seconds, warm_results, session = run_warm(graph, args.engine, workload)

    identical = all(c.to_dict() == w.to_dict()
                    for c, w in zip(cold_results, warm_results))
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    stats = session.stats
    print(f"session n={graph.num_nodes} m={graph.num_edges} | "
          f"requests={len(workload)} | cold {cold_seconds:.2f}s | "
          f"warm {warm_seconds:.2f}s | speedup {speedup:.1f}x | identical={identical}")
    print(f"warm session: {stats.rounds_executed} rounds executed, "
          f"{stats.rounds_reused} reused, {stats.problem_hits} request-cache hits, "
          f"{stats.csr_builds} CSR build(s)")
    if not identical:
        print("error: warm session results differ from cold runs", file=sys.stderr)
        return 1
    if args.require is not None and speedup < args.require:
        print(f"error: speedup {speedup:.1f}x below required {args.require:g}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
