#!/usr/bin/env bash
# CI / pre-merge check: tier-1 tests, a quickstart smoke run, and the
# sharded-vs-vectorized engine micro-benchmark.
#
# Usage:  ./scripts/check.sh            (from anywhere; repo root is inferred)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== slow + bench tests =="
python -m pytest -q -m "slow or bench"

echo
echo "== quickstart smoke run =="
python examples/quickstart.py

echo
echo "== engine micro-benchmark (sharded vs vectorized) =="
python scripts/bench_engines.py --nodes 20000 --rounds 10 --shards 8 --repeats 2

echo
echo "check.sh: all green"
