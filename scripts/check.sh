#!/usr/bin/env bash
# CI / pre-merge check: tier-1 tests, smoke runs of every example, the
# sharded-vs-vectorized engine micro-benchmark, and the warm-session
# throughput benchmark (>= 2x over cold per-call on repeated mixed requests).
#
# Usage:  ./scripts/check.sh            (from anywhere; repo root is inferred)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== slow + bench tests =="
python -m pytest -q -m "slow or bench"

echo
echo "== example smoke runs (REPRO_SMOKE=1) =="
for example in examples/*.py; do
    echo "-- $example"
    REPRO_SMOKE=1 python "$example" > /dev/null
done

echo
echo "== engine micro-benchmark (sharded vs vectorized) =="
python scripts/bench_engines.py --nodes 20000 --rounds 10 --shards 8 --repeats 2

echo
echo "== session throughput (warm Session vs cold per-call) =="
python scripts/bench_session.py --nodes 10000 --requests 50 --require 2.0

echo
echo "check.sh: all green"
