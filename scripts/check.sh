#!/usr/bin/env bash
# CI / pre-merge check: tier-1 tests, smoke runs of every example, the
# unified benchmark harness (engines x parallel modes, kept-set
# reconstruction, cold/warm sessions — scripts/bench.py), and the
# warm-session throughput benchmark (>= 2x over cold per-call on repeated
# mixed requests).
#
# Usage:  ./scripts/check.sh            (from anywhere; repo root is inferred)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== slow + bench tests =="
python -m pytest -q -m "slow or bench"

echo
echo "== example smoke runs (REPRO_SMOKE=1) =="
for example in examples/*.py; do
    echo "-- $example"
    REPRO_SMOKE=1 python "$example" > /dev/null
done

echo
echo "== unified benchmark harness (smoke) =="
python scripts/bench.py --smoke --output "$(mktemp -t bench_smoke.XXXXXX.json)"

echo
echo "== session throughput (warm Session vs cold per-call) =="
python scripts/bench_session.py --nodes 10000 --requests 50 --require 2.0

echo
echo "check.sh: all green"
