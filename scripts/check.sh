#!/usr/bin/env bash
# CI / pre-merge check: tier-1 tests, smoke runs of every example, the
# unified benchmark harness (engines x parallel modes, kept-set
# reconstruction, cold/warm sessions, store restart, out-of-core mmap —
# scripts/bench.py), the out-of-core mmap smoke (small graph forced through
# storage=mmap, bit-identical to in-memory), the mmap-trajectory smoke
# (trajectory spilled to the append-only .traj buffer, bit-identical and
# prefix-resumable), the warm-session throughput
# benchmark (>= 2x over cold per-call on repeated mixed requests), the
# persistent-store smoke (second run served from disk, bit-identical),
# the `repro cache` CLI smoke, the HTTP serve smoke (`repro serve` as a
# subprocess on an ephemeral port: jobs over a real socket, /metrics in both
# JSON and Prometheus exposition, graceful SIGTERM drain with no staging
# files left in the store), the densest fast-path smoke (phases 2-4 on the
# CSR kernels, bit-identical to the faithful 4-phase simulator pipeline),
# and the observability smoke (a traced solve exported to Chrome trace
# format plus a non-empty `repro trace summarize` per-span table).
#
# Usage:  ./scripts/check.sh            (from anywhere; repo root is inferred)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repo hygiene (no tracked bytecode) =="
if git ls-files | grep -E '(\.py[co]$|__pycache__/)' ; then
    echo "check.sh: tracked Python bytecode found; git rm --cached it" >&2
    exit 1
fi
echo "clean"

echo
echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== slow + bench tests =="
python -m pytest -q -m "slow or bench"

echo
echo "== example smoke runs (REPRO_SMOKE=1) =="
for example in examples/*.py; do
    echo "-- $example"
    REPRO_SMOKE=1 python "$example" > /dev/null
done

echo
echo "== unified benchmark harness (smoke) =="
python scripts/bench.py --smoke --output "$(mktemp -t bench_smoke.XXXXXX.json)"

echo
echo "== out-of-core mmap smoke (storage=mmap bit-identical to in-memory) =="
python - <<'PY'
import numpy as np
from repro.engine import get_engine
from repro.graph.generators.random_graphs import barabasi_albert

graph = barabasi_albert(2000, 3, seed=21)
memory = get_engine("sharded:4").run(graph, 8, track_kept=True)
mapped = get_engine("sharded:shards=4,storage=mmap").run(graph, 8, track_kept=True)
assert mapped.values == memory.values, "mmap values differ from in-memory"
assert mapped.kept == memory.kept, "mmap kept sets differ from in-memory"
assert np.array_equal(mapped.trajectory, memory.trajectory), \
    "mmap trajectory is not bit-identical"
print("mmap smoke: storage=mmap bit-identical on n=2000 (8 rounds)")
PY

echo
echo "== mmap-trajectory smoke (traj=mmap bit-identical, prefix-resumable) =="
python - <<'PY'
import tempfile

import numpy as np

from repro.engine import get_engine
from repro.engine.sharded import ShardedEngine
from repro.graph.generators.random_graphs import barabasi_albert

graph = barabasi_albert(2000, 3, seed=21)
memory = get_engine("sharded:4").run(graph, 8, track_kept=True)
with tempfile.TemporaryDirectory(prefix="repro-traj-smoke-") as tmp:
    engine = ShardedEngine(num_shards=4, storage="mmap",
                           trajectory_storage="mmap", storage_dir=tmp)
    spilled = engine.run(graph, 8, track_kept=True)
    assert spilled.values == memory.values, "traj values differ from in-memory"
    assert spilled.kept == memory.kept, "traj kept sets differ from in-memory"
    assert np.array_equal(spilled.trajectory, memory.trajectory), \
        "spilled trajectory is not bit-identical"
    assert isinstance(spilled.trajectory, np.memmap), \
        "trajectory did not spill to disk"
    engine.close()
    # A fresh engine must resume from the on-disk prefix, bit-identically.
    resumed = ShardedEngine(num_shards=4, storage="mmap",
                            trajectory_storage="mmap", storage_dir=tmp)
    longer = resumed.run(graph, 12, track_kept=False)
    reference = get_engine("sharded:4").run(graph, 12, track_kept=False)
    assert np.array_equal(longer.trajectory, reference.trajectory), \
        "resumed trajectory is not bit-identical"
    resumed.close()
print("traj smoke: trajectory_storage=mmap bit-identical and resumable "
      "on n=2000 (8 -> 12 rounds)")
PY

echo
echo "== session throughput (warm Session vs cold per-call) =="
python scripts/bench_session.py --nodes 10000 --requests 50 --require 2.0

echo
echo "== persistent store smoke (restart served from disk, bit-identical) =="
python scripts/store_smoke.py

echo
echo "== repro cache CLI smoke =="
STORE_DIR="$(mktemp -d -t repro_cache_smoke.XXXXXX)"
trap 'rm -rf "$STORE_DIR"' EXIT
python -m repro batch --dataset caveman --rounds 6 --store "$STORE_DIR" > /dev/null
# A plain pipe is safe under pipefail: the CLI exits 0 on BrokenPipeError,
# so grep -q quitting on the first match cannot fail the check.
python -m repro batch --dataset caveman --rounds 6 --store "$STORE_DIR" --async \
    | grep -q "disk_hits=1" \
    || { echo "cache smoke: second run missed the store"; exit 1; }
python -m repro cache ls --store "$STORE_DIR"
python -m repro cache info --store "$STORE_DIR" > /dev/null
python -m repro cache purge --store "$STORE_DIR" | grep -q "purged" \
    || { echo "cache smoke: purge failed"; exit 1; }

echo
echo "== HTTP serve smoke (ephemeral port, jobs over the wire, SIGTERM drain) =="
python scripts/serve_smoke.py

echo
echo "== densest fast-path smoke (engine=array bit-identical to simulator) =="
python - <<'PY'
from repro.core.densest import weak_densest_subsets
from repro.graph.generators.random_graphs import barabasi_albert

graph = barabasi_albert(1500, 3, seed=33)
reference = weak_densest_subsets(graph, rounds=4)
fast = weak_densest_subsets(graph, rounds=4, engine="array")
assert fast.subsets == reference.subsets, "array subsets differ"
assert fast.reported_densities == reference.reported_densities, \
    "array reported densities differ"
assert fast.node_assignment == reference.node_assignment, \
    "array node assignment differs"
assert fast.best_leader == reference.best_leader, "array best leader differs"
assert fast.messages_total == 0 and reference.messages_total > 0
print(f"densest smoke: engine=array bit-identical on n=1500 (T=4, "
      f"{len(fast.subsets)} subsets)")
PY

echo
echo "== observability smoke (traced solve -> export -> summarize; /metrics prometheus) =="
OBS_DIR="$(mktemp -d -t repro_obs_smoke.XXXXXX)"
trap 'rm -rf "$STORE_DIR" "$OBS_DIR"' EXIT
python -m repro coreness --dataset caveman --epsilon 0.5 \
    --trace "$OBS_DIR/run.trace" > /dev/null
python -m repro trace export --input "$OBS_DIR/run.trace" --chrome \
    --output "$OBS_DIR/run.chrome.json" > /dev/null
python - "$OBS_DIR/run.chrome.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
names = {event["name"] for event in doc["traceEvents"]}
missing = {"session.solve", "engine.run", "kernel.round_range"} - names
assert not missing, f"chrome trace is missing hot-path spans: {missing}"
print(f"obs smoke: chrome trace carries {len(doc['traceEvents'])} spans")
PY
python -m repro trace summarize --input "$OBS_DIR/run.trace" \
    | grep -q "kernel.round_range" \
    || { echo "obs smoke: summarize has no per-phase table"; exit 1; }

echo
echo "check.sh: all green"
