#!/usr/bin/env python
"""Standing benchmark harness — the repo's one perf trajectory.

Times, on seeded Barabási–Albert and Erdős–Rényi graphs:

* **engines** — cold trajectory runs for every engine × parallel mode
  (``vectorized``, ``sharded`` sequential / ``thread`` / ``process``, and the
  ``faithful`` simulator on graphs small enough to finish), with a
  bit-identical check against the vectorized trajectory and speedups relative
  to the single-worker sharded baseline;
* **kept_sets** — the batched `kept_sets_from_trajectory` vs the per-node
  `_reference` Python loop, for all three tie-break rules;
* **sessions** — cold vs warm (request-cache) vs prefix-resumed
  `Session.coreness` requests per engine;
* **store** — a cold run against a fresh persistent artifact store vs a
  warm-*restart*-from-disk (a brand-new `Session(store=...)` on the same
  graph), with a bit-identical check — the perf trajectory of `repro.store`;
* **serve** — a load generator against a live ``repro serve`` HTTP server on
  loopback: the graph is shipped over the wire as a repro-graph-v1 document,
  then N client threads submit a mixed problem schedule (each thread walks
  the request matrix from a different offset) and long-poll every job to
  completion.  Reports p50/p99 submit-to-done latency, throughput, and the
  in-flight dedup hit-rate from ``/metrics``; one ``include=result`` fetch
  per distinct request is checked bit-identical against an in-process
  ``Session.solve`` on the same document — the perf trajectory of
  `repro.serve.http`;
* **densest** — the Theorem I.3 weak-densest pipeline end to end:
  ``weak_densest_subsets(engine="array")`` (phases 2-4 on the CSR kernels of
  `repro.engine.densest_kernels`, Phase 1 on the vectorised trajectory)
  against the faithful 4-phase simulator pipeline, with per-phase wall-times
  for the array path, a bit-identical check on the reported
  subsets/densities/assignment, and the end-to-end speedup (the simulator
  reference runs once per graph up to ``--densest-reference-max-nodes``; the
  acceptance bar is >= 5x at 100k nodes) — the perf trajectory of the
  densest fast path;
* **out_of_core** — the memory-mapped CSR mode (`sharded:storage=mmap`,
  sequential and process-pool): cold (materialise the arrays on disk, then
  run over `np.memmap` views) vs warm (files revalidated by fingerprint, no
  rewrite), against the in-memory sharded baseline, with a bit-identical
  check and the on-disk array footprint — the perf trajectory of
  `repro.graph.mmap_csr`.  The ``mmap-traj-*`` configs additionally spill the
  *output* (`trajectory_storage=mmap`, sequential / thread / process) at a
  larger round budget ``--traj-rounds`` chosen so the full ``(T+1) × n``
  trajectory dwarfs the run's other allocations: the spilled run keeps only
  a two-row window resident, appends rounds to the on-disk ``.traj`` buffer,
  must stay bit-identical to the in-memory run — and, after the file is
  truncated mid-round to simulate a crash, a fresh engine must *resume* from
  the surviving prefix and still produce the bit-identical trajectory.

* **obs_overhead** — the observability tax: cold solves with tracing
  disabled (the default — instrumented call sites pay only a no-op guard)
  vs the same solves with a ring tracer installed, with a bit-identity
  check, the recorded span inventory of one traced solve, and the measured
  per-call cost of a disabled span — the perf trajectory of `repro.obs`.
* **streaming** — k small edge deltas chained against the largest graph:
  per-update staleness (delta application + frontier-restricted incremental
  re-solve), the incremental-vs-cold speedup with a bit-identity check, and
  a forced frontier-fraction-0 update exercising the cold-fallback
  threshold — the perf trajectory of ``Session.apply_delta``.

Results are written as machine-readable JSON (``--out``, default
``BENCH_PR10.json`` at the repo root) so future PRs have a baseline to regress
against::

    python scripts/bench.py                     # full run (10k-200k nodes)
    python scripts/bench.py --smoke             # seconds-long CI smoke run
    python scripts/bench.py --sizes 100000 --rounds 10 --workers 4
    python scripts/bench.py --out /tmp/b.json   # parameterised output path

The JSON schema (validated by ``tests/test_bench_harness.py``) is
``{"schema": "repro-bench/3", "machine": {...}, "params": {...},
"engines": [...], "kept_sets": [...], "sessions": [...], "store": [...],
"out_of_core": [...], "serve": [...]}``; every row carries its graph, timings
and speedups.  Legacy documents still validate minus the sections added later
(``repro-bench/1`` without ``store``, ``repro-bench/2`` without
``out_of_core``, and schema-3 documents written before the HTTP front-end,
the densest fast path or the observability layer without ``serve`` /
``densest`` / ``obs_overhead`` — all optional-but-validated within
schema 3), so the committed PR3-PR8 trajectories stay checkable.
Speedup claims are only meaningful relative to ``machine.cpu_count`` —
process parallelism cannot beat the baseline on a single-CPU container, and
the JSON records that context instead of hiding it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.orientation import (  # noqa: E402
    kept_sets_from_trajectory,
    kept_sets_from_trajectory_reference,
)
from repro.engine import get_engine  # noqa: E402
from repro.engine.kernels import compact_trajectory  # noqa: E402
from repro.graph.csr import graph_to_csr  # noqa: E402
from repro.graph.generators.random_graphs import (  # noqa: E402
    barabasi_albert,
    erdos_renyi_gnp,
)
from repro.session import Session  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

SCHEMA = "repro-bench/3"

#: Older schemas validate_document still accepts (minus the newer sections).
LEGACY_SCHEMAS = ("repro-bench/1", "repro-bench/2")

#: Keys every emitted document must carry (pinned by the bench smoke test);
#: ``store`` only exists from schema 2 on, ``out_of_core`` from schema 3.
REQUIRED_TOP_LEVEL = ("schema", "generated_by", "smoke", "machine", "params",
                      "engines", "kept_sets", "sessions", "store",
                      "out_of_core")

#: Sections every *new* document carries but older documents of the same
#: schema string may lack (added mid-schema): validated when present, never
#: required.  ``serve`` landed with the HTTP front-end and ``densest`` with
#: the array-path densest pipeline, after schema 3 documents had already
#: been committed.
OPTIONAL_TOP_LEVEL = ("serve", "densest", "obs_overhead", "streaming")

#: Sections absent from the legacy schemas (schema -> missing keys).
_LEGACY_MISSING = {"repro-bench/1": ("store", "out_of_core"),
                   "repro-bench/2": ("out_of_core",)}

#: Largest graph the faithful per-node simulator is timed on.
FAITHFUL_MAX_NODES = 20_000

#: Largest graph the faithful 4-phase densest reference (≈ ``5T + 6``
#: simulator rounds of per-node message objects) is run on for the speedup /
#: bit-identity check.  The default covers the 100k acceptance point; the
#: 200k row then reports the array path's timings only.
DENSEST_REFERENCE_MAX_NODES = 120_000


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _graphs(sizes, seed):
    for n in sizes:
        yield f"ba-{n}", barabasi_albert(n, 3, seed=seed)
        yield f"er-{n}", erdos_renyi_gnp(n, min(1.0, 6.0 / max(1, n)), seed=seed + 1)


def _engine_configs(shards, workers):
    """(label, spec dict) for every engine × parallel mode that is timed."""
    return [
        ("vectorized", {"engine": "vectorized"}),
        ("sharded-seq", {"engine": "sharded", "num_shards": shards}),
        ("sharded-thread", {"engine": "sharded", "num_shards": shards,
                            "max_workers": workers, "parallel": "thread"}),
        ("sharded-process", {"engine": "sharded", "num_shards": shards,
                             "max_workers": workers, "parallel": "process"}),
        ("faithful", {"engine": "faithful"}),
    ]


def bench_engines(graphs, rounds, shards, workers, repeats, log, configs=None):
    """Time every engine config on every graph; ``configs`` filters by label."""
    rows = []
    for graph_name, graph in graphs:
        csr = graph_to_csr(graph)  # shared: time the engines, not the conversion
        reference = get_engine("vectorized").run(graph, rounds, track_kept=False,
                                                 csr=csr)
        baseline_seconds = None
        graph_rows = []
        for label, spec in _engine_configs(shards, workers):
            if configs is not None and label not in configs:
                continue
            if spec["engine"] == "faithful" and graph.num_nodes > FAITHFUL_MAX_NODES:
                continue
            engine = get_engine(spec["engine"],
                                **{k: v for k, v in spec.items() if k != "engine"})
            seconds = best_of(
                lambda: engine.run(graph, rounds, track_kept=False, csr=csr),
                repeats)
            result = engine.run(graph, rounds, track_kept=False, csr=csr)
            if result.trajectory is not None:
                identical = bool(np.array_equal(result.trajectory,
                                                reference.trajectory))
            else:  # the faithful simulator keeps no trajectory; compare values
                identical = result.values == reference.values
            if label == "sharded-seq":
                baseline_seconds = seconds
            graph_rows.append({
                "graph": graph_name, "n": graph.num_nodes, "m": graph.num_edges,
                "rounds": rounds, "config": label, **spec,
                "seconds": round(seconds, 6), "identical": identical,
            })
            log(f"  engines {graph_name:>12s} {label:<16s} {seconds:8.3f}s"
                f"  identical={identical}")
        if baseline_seconds is not None:
            # Backfilled after the loop so every row — including the ones
            # timed before the baseline — carries the ratio.
            for row in graph_rows:
                row["speedup_vs_sharded_seq"] = round(
                    baseline_seconds / row["seconds"], 4)
        rows.extend(graph_rows)
    return rows


def bench_kept_sets(graphs, rounds, repeats, log):
    rows = []
    for graph_name, graph in graphs:
        csr = graph_to_csr(graph)
        trajectory = compact_trajectory(csr, rounds)
        for tie_break in ("history", "stable", "naive"):
            reference_seconds = best_of(
                lambda: kept_sets_from_trajectory_reference(
                    csr, trajectory, tie_break=tie_break), max(1, repeats - 1))
            vectorized_seconds = best_of(
                lambda: kept_sets_from_trajectory(
                    csr, trajectory, tie_break=tie_break), repeats)
            identical = kept_sets_from_trajectory(
                csr, trajectory, tie_break=tie_break) == \
                kept_sets_from_trajectory_reference(
                    csr, trajectory, tie_break=tie_break)
            speedup = reference_seconds / vectorized_seconds
            rows.append({
                "graph": graph_name, "n": graph.num_nodes, "m": graph.num_edges,
                "rounds": rounds, "tie_break": tie_break,
                "reference_seconds": round(reference_seconds, 6),
                "vectorized_seconds": round(vectorized_seconds, 6),
                "speedup": round(speedup, 4), "identical": identical,
            })
            log(f"  kept    {graph_name:>12s} {tie_break:<8s} reference "
                f"{reference_seconds:7.3f}s vectorized {vectorized_seconds:7.3f}s "
                f"speedup {speedup:5.1f}x identical={identical}")
    return rows


def bench_sessions(graphs, rounds, shards, workers, log):
    rows = []
    for graph_name, graph in graphs:
        for label, spec in _engine_configs(shards, workers):
            if spec["engine"] == "faithful":
                continue  # the session layer adds nothing to replay per node
            options = {k: v for k, v in spec.items() if k != "engine"}

            session = Session(graph, engine=spec["engine"], **options)
            start = time.perf_counter()
            session.coreness(rounds=rounds)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            session.coreness(rounds=rounds)
            warm = time.perf_counter() - start

            resumed_session = Session(graph, engine=spec["engine"], **options)
            resumed_session.coreness(rounds=max(1, rounds - 2))
            start = time.perf_counter()
            resumed_session.coreness(rounds=rounds)
            resumed = time.perf_counter() - start

            rows.append({
                "graph": graph_name, "n": graph.num_nodes, "m": graph.num_edges,
                "rounds": rounds, "config": label, **spec,
                "cold_seconds": round(cold, 6), "warm_seconds": round(warm, 6),
                "resumed_seconds": round(resumed, 6),
                "speedup_warm": round(cold / warm, 2) if warm > 0 else float("inf"),
            })
            log(f"  session {graph_name:>12s} {label:<16s} cold {cold:7.3f}s "
                f"warm {warm:9.6f}s resumed {resumed:7.3f}s")
    return rows


def bench_store(graphs, rounds, log):
    """Cold run against a fresh store vs warm restart of a brand-new session."""
    rows = []
    for graph_name, graph in graphs:
        with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
            store = ArtifactStore(tmp)
            cold_session = Session(graph, store=store)
            start = time.perf_counter()
            cold_result = cold_session.coreness(rounds=rounds)
            cold = time.perf_counter() - start

            restarted = Session(graph, store=store)  # fresh process stand-in
            start = time.perf_counter()
            restart_result = restarted.coreness(rounds=rounds)
            restart = time.perf_counter() - start

            identical = restart_result.values == cold_result.values and \
                bool(np.array_equal(restart_result.surviving.trajectory,
                                    cold_result.surviving.trajectory))
            rows.append({
                "graph": graph_name, "n": graph.num_nodes, "m": graph.num_edges,
                "rounds": rounds,
                "cold_seconds": round(cold, 6),
                "restart_seconds": round(restart, 6),
                "speedup_restart": round(cold / restart, 2)
                if restart > 0 else float("inf"),
                "disk_hits": restarted.stats.disk_hits,
                "store_bytes": store.info()["bytes"],
                "identical": identical,
            })
            log(f"  store   {graph_name:>12s} cold {cold:7.3f}s "
                f"restart {restart:9.6f}s identical={identical}")
    return rows


def bench_serve(graphs, rounds, serve_workers, clients, log):
    """N client threads of mixed problems against a live loopback server.

    The graph crosses the wire as a repro-graph-v1 document (so the reference
    session below consumes the *same* document — CSR fingerprints hash
    adjacency insertion order).  Each client thread owns one keep-alive
    connection and walks the request matrix (coreness / orientation × two
    round budgets) from its own offset, so distinct requests race and
    identical in-flight ones exercise the dedup path.  Latency is
    submit-to-done per request (summary polling, so the measurement is not
    dominated by shipping per-node JSON); one ``include=result`` fetch per
    distinct request is compared bit-for-bit against ``Session.solve``.
    """
    import threading

    from repro.graph import io as graph_io
    from repro.serve.client import ServeClient
    from repro.serve.http import ReproHTTPServer

    rows = []
    for graph_name, graph in graphs:
        payload = graph_io.to_dict(graph)
        requests = [{"problem": problem, "rounds": budget}
                    for problem in ("coreness", "orientation")
                    for budget in (max(1, rounds // 2), rounds)]
        with ReproHTTPServer(workers=serve_workers) as server:
            with ServeClient(server.host, server.port) as setup:
                fingerprint = setup.upload_graph(graph_io.from_dict(payload))
            latencies, failures = [], []
            lock = threading.Lock()

            def hammer(thread_index):
                try:
                    with ServeClient(server.host, server.port,
                                     tenant=f"bench-{thread_index}") as cli:
                        offset = thread_index % len(requests)
                        for request in (requests[offset:]
                                        + requests[:offset]):
                            start = time.perf_counter()
                            issued = cli.submit(fingerprint, **request)
                            cli.result(issued["job"])
                            elapsed = time.perf_counter() - start
                            with lock:
                                latencies.append(elapsed)
                except Exception as exc:  # pragma: no cover - diagnostics
                    with lock:
                        failures.append(f"client {thread_index}: {exc!r}")

            start_total = time.perf_counter()
            threads = [threading.Thread(target=hammer, args=(index,))
                       for index in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            total_seconds = time.perf_counter() - start_total
            if failures:
                raise RuntimeError(f"serve bench clients failed: {failures}")

            # Bit-identity: one full-result fetch per distinct request vs the
            # in-process session on the same document.
            reference = Session(graph_io.from_dict(payload))
            identical = True
            with ServeClient(server.host, server.port) as checker:
                for request in requests:
                    issued = checker.submit(fingerprint, **request)
                    doc = checker.result(issued["job"], include_result=True)
                    want = json.loads(json.dumps(reference.solve(
                        request["problem"],
                        rounds=request["rounds"]).to_dict()))
                    identical = identical and doc["result"] == want
                metrics = checker.metrics()
        serve_stats = metrics["serve"]
        observed = serve_stats["submitted"] + serve_stats["dedup_hits"]
        row = {
            "graph": graph_name, "n": graph.num_nodes, "m": graph.num_edges,
            "rounds": rounds, "config": f"serve-{clients}x{serve_workers}",
            "clients": clients, "serve_workers": serve_workers,
            "requests": len(latencies),
            "total_seconds": round(total_seconds, 6),
            "throughput_rps": round(len(latencies) / total_seconds, 4)
            if total_seconds > 0 else float("inf"),
            "p50_latency_seconds": round(
                float(np.percentile(latencies, 50)), 6),
            "p99_latency_seconds": round(
                float(np.percentile(latencies, 99)), 6),
            "submitted": serve_stats["submitted"],
            "dedup_hits": serve_stats["dedup_hits"],
            "dedup_hit_rate": round(serve_stats["dedup_hits"] / observed, 4)
            if observed else 0.0,
            "identical": identical,
        }
        rows.append(row)
        log(f"  serve   {graph_name:>12s} {row['config']:<14s} "
            f"p50 {row['p50_latency_seconds']:8.4f}s "
            f"p99 {row['p99_latency_seconds']:8.4f}s "
            f"{row['throughput_rps']:7.2f} req/s "
            f"dedup {row['dedup_hit_rate']:.0%} identical={identical}")
    return rows


def bench_densest(graphs, densest_rounds, repeats, log,
                  reference_max_nodes=DENSEST_REFERENCE_MAX_NODES):
    """The weak-densest fast path (phases 2-4 as CSR kernels) vs the simulator.

    Every row times the array path twice over: the four phases individually
    (Phase 1 as the vectorised λ=0 trajectory, then the ``densest_kernels``
    BFS forest / per-tree elimination / aggregation on exactly the inputs the
    end-to-end run feeds them) and the end-to-end
    ``weak_densest_subsets(engine="array")`` call including dict assembly.
    Graphs up to ``reference_max_nodes`` additionally run the faithful
    4-phase simulator pipeline once (far too slow for best-of repeats) for
    the speedup and the bit-identity check on ``subsets`` /
    ``reported_densities`` / ``node_assignment`` / ``best_leader``.
    """
    from repro.core.densest import weak_densest_subsets
    from repro.core.rounds import guarantee_after_rounds
    from repro.engine.densest_kernels import (
        aggregate_and_decide,
        bfs_forest,
        identity_ranks,
        local_elimination_rounds,
    )

    T = densest_rounds
    rows = []
    for graph_name, graph in graphs:
        csr = graph_to_csr(graph)

        phase1_seconds = best_of(lambda: compact_trajectory(csr, T), repeats)
        values = np.ascontiguousarray(compact_trajectory(csr, T)[T])
        ranks_seconds = best_of(lambda: identity_ranks(csr), repeats)
        ranks = identity_ranks(csr)
        phase2_seconds = best_of(
            lambda: bfs_forest(csr, values, T, ranks=ranks), repeats)
        forest = bfs_forest(csr, values, T, ranks=ranks)
        phase3_seconds = best_of(
            lambda: local_elimination_rounds(csr, forest, values, T), repeats)
        num, deg = local_elimination_rounds(csr, forest, values, T)
        factor = guarantee_after_rounds(graph.num_nodes, T)
        phase4_seconds = best_of(
            lambda: aggregate_and_decide(forest, num, deg, values, factor),
            repeats)

        fast_seconds = best_of(
            lambda: weak_densest_subsets(graph, rounds=T, engine="array",
                                         csr=csr),
            repeats)
        fast = weak_densest_subsets(graph, rounds=T, engine="array", csr=csr)

        row = {
            "graph": graph_name, "n": graph.num_nodes, "m": graph.num_edges,
            "rounds": T, "config": "densest-array",
            "fast_seconds": round(fast_seconds, 6),
            "phase_seconds": {
                "phase1_surviving": round(phase1_seconds, 6),
                "identity_ranks": round(ranks_seconds, 6),
                "phase2_bfs_forest": round(phase2_seconds, 6),
                "phase3_local_elimination": round(phase3_seconds, 6),
                "phase4_aggregation": round(phase4_seconds, 6),
            },
            "num_subsets": len(fast.subsets),
        }
        if graph.num_nodes <= reference_max_nodes:
            start = time.perf_counter()
            reference = weak_densest_subsets(graph, rounds=T)
            reference_seconds = time.perf_counter() - start
            identical = (
                fast.subsets == reference.subsets
                and fast.reported_densities == reference.reported_densities
                and fast.node_assignment == reference.node_assignment
                and fast.best_leader == reference.best_leader)
            row.update({
                "reference_seconds": round(reference_seconds, 6),
                "speedup_vs_reference": round(
                    reference_seconds / fast_seconds, 4)
                if fast_seconds > 0 else float("inf"),
                "identical": identical,
            })
            log(f"  densest {graph_name:>12s} fast {fast_seconds:8.3f}s "
                f"reference {reference_seconds:8.3f}s "
                f"speedup {row['speedup_vs_reference']:8.1f}x "
                f"identical={identical}")
        else:
            log(f"  densest {graph_name:>12s} fast {fast_seconds:8.3f}s "
                f"(reference skipped: n > {reference_max_nodes})")
        rows.append(row)
    return rows


def bench_obs_overhead(graphs, rounds, repeats, log):
    """Traced vs untraced cold solves: tracing must be free when off.

    Per graph: best-of cold ``Session.coreness`` with tracing disabled (the
    shipping default — every instrumented call site pays only its no-op
    guard), then the same cold solve with a ring tracer installed.  The two
    must be bit-identical; the row reports the enabled-tracing overhead, the
    spans a single traced solve records (the hot path end to end must
    appear), and the measured per-call cost of a disabled ``span()`` — the
    number that has to stay negligible for the ≤2% end-to-end budget.
    """
    from repro.obs import trace as obs_trace

    required_spans = ("session.solve", "session.surviving", "engine.run",
                      "kernel.round_range")
    rows = []
    for graph_name, graph in graphs:

        def cold_solve():
            return Session(graph).coreness(rounds=rounds)

        obs_trace.disable()
        untraced_seconds = best_of(cold_solve, repeats)
        untraced_values = cold_solve().values

        # Disabled-gate microcost: what every instrumented call site pays
        # per request when tracing is off.
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            with obs_trace.span("noop.probe"):
                pass
        noop_span_seconds = (time.perf_counter() - start) / calls

        tracer = obs_trace.enable()
        try:
            traced_seconds = best_of(cold_solve, repeats)
            tracer.clear()
            traced_values = cold_solve().values
            span_names = sorted({record["name"] for record in tracer.spans()})
            spans_recorded = tracer.emitted
        finally:
            obs_trace.disable()

        identical = traced_values == untraced_values
        overhead = ((traced_seconds - untraced_seconds) / untraced_seconds
                    * 100.0) if untraced_seconds > 0 else 0.0
        row = {
            "graph": graph_name, "n": graph.num_nodes, "m": graph.num_edges,
            "rounds": rounds, "config": "obs-overhead",
            "untraced_seconds": round(untraced_seconds, 6),
            "traced_seconds": round(traced_seconds, 6),
            "overhead_percent": round(overhead, 4),
            "noop_span_seconds_per_call": round(noop_span_seconds, 10),
            "spans_recorded": int(spans_recorded),
            "span_names": span_names,
            "spans_complete": all(name in span_names
                                  for name in required_spans),
            "identical": identical,
        }
        rows.append(row)
        log(f"  obs     {graph_name:>12s} untraced {untraced_seconds:7.3f}s "
            f"traced {traced_seconds:7.3f}s overhead {overhead:+6.2f}% "
            f"spans {spans_recorded:>5d} identical={identical}")
    return rows


def bench_out_of_core(graphs, rounds, shards, workers, repeats, log,
                      traj_rounds=None):
    """The memory-mapped CSR mode against the in-memory sharded baseline.

    ``cold`` pays the one-time materialisation of the arrays under the
    store layout plus the mapped run; ``warm`` re-runs with the files already
    on disk (revalidated by fingerprint, not rewritten).  Both must be
    bit-identical to the in-memory trajectory.

    The ``mmap-traj-*`` configs additionally spill the trajectory itself
    (``trajectory_storage=mmap``) at a larger round budget ``traj_rounds``
    picked so the full ``(T+1) × n`` float64 trajectory dominates the
    in-memory engine's allocations: the spilled run appends rounds to the
    on-disk ``.traj`` buffer keeping only a two-row window resident.  Each
    such row also truncates the rows file mid-round (a simulated crash) and
    re-runs on a *fresh* engine, which must resume from the surviving
    published prefix and still match the in-memory trajectory bit for bit.
    """
    from repro.engine.sharded import ShardedEngine
    from repro.store import traj as traj_store

    traj_rounds = rounds if traj_rounds is None else traj_rounds
    rows = []
    for graph_name, graph in graphs:
        csr = graph_to_csr(graph)
        baseline_engine = get_engine("sharded", num_shards=shards)
        baselines = {}

        def baseline_for(budget):
            if budget not in baselines:
                seconds = best_of(
                    lambda: baseline_engine.run(graph, budget,
                                                track_kept=False, csr=csr),
                    repeats)
                reference = baseline_engine.run(graph, budget,
                                                track_kept=False, csr=csr)
                baselines[budget] = (seconds, reference)
            return baselines[budget]

        for label, run_rounds, options in (
                ("mmap-seq", rounds, {}),
                ("mmap-process", rounds, {"max_workers": workers,
                                          "parallel": "process"}),
                ("mmap-traj-seq", traj_rounds,
                 {"trajectory_storage": "mmap"}),
                ("mmap-traj-thread", traj_rounds,
                 {"max_workers": workers, "parallel": "thread",
                  "trajectory_storage": "mmap"}),
                ("mmap-traj-process", traj_rounds,
                 {"max_workers": workers, "parallel": "process",
                  "trajectory_storage": "mmap"})):
            baseline_seconds, reference = baseline_for(run_rounds)
            with tempfile.TemporaryDirectory(prefix="repro-bench-mmap-") as tmp:
                engine = ShardedEngine(num_shards=shards, storage="mmap",
                                       storage_dir=tmp, **options)
                start = time.perf_counter()
                result = engine.run(graph, run_rounds, track_kept=False, csr=csr)
                cold = time.perf_counter() - start
                warm = best_of(
                    lambda: engine.run(graph, run_rounds, track_kept=False,
                                       csr=csr),
                    repeats)
                mapped = next(iter(engine._mapped_cache.values()))
                csr_bytes = sum(Path(path).stat().st_size
                                for path, _, _ in mapped.file_specs().values())
                identical = bool(np.array_equal(result.trajectory,
                                                reference.trajectory))
                row = {
                    "graph": graph_name, "n": graph.num_nodes,
                    "m": graph.num_edges, "rounds": run_rounds, "config": label,
                    "cold_seconds": round(cold, 6),
                    "warm_seconds": round(warm, 6),
                    "in_memory_seconds": round(baseline_seconds, 6),
                    "slowdown_vs_memory": round(warm / baseline_seconds, 4)
                    if baseline_seconds > 0 else float("inf"),
                    "csr_bytes_on_disk": csr_bytes,
                    "identical": identical,
                }
                if options.get("trajectory_storage") == "mmap":
                    engine.close()
                    fingerprint = engine._fingerprint_of(csr)
                    rows_file = traj_store.rows_path(tmp, fingerprint, 0.0)
                    row["traj_bytes_on_disk"] = rows_file.stat().st_size
                    # Simulated crash: truncate to roughly half the rows plus
                    # a torn partial row; a fresh engine must resume from the
                    # surviving prefix and match the reference bit for bit.
                    keep_rows = max(1, run_rounds // 2)
                    with open(rows_file, "r+b") as handle:
                        handle.truncate(
                            keep_rows * graph.num_nodes * 8 + 123)
                    resumed_engine = ShardedEngine(
                        num_shards=shards, storage="mmap", storage_dir=tmp,
                        **options)
                    start = time.perf_counter()
                    resumed = resumed_engine.run(graph, run_rounds,
                                                 track_kept=False, csr=csr)
                    row["resume_seconds"] = round(
                        time.perf_counter() - start, 6)
                    row["resume_from_rounds"] = keep_rows - 1
                    row["resumed_identical"] = bool(np.array_equal(
                        resumed.trajectory, reference.trajectory))
                    resumed_engine.close()
                rows.append(row)
                extra = ""
                if "traj_bytes_on_disk" in row:
                    extra = (f" traj {row['traj_bytes_on_disk'] / 1e6:8.1f}MB"
                             f" resumed={row['resumed_identical']}")
                log(f"  mmap    {graph_name:>12s} {label:<18s} cold {cold:7.3f}s "
                    f"warm {warm:7.3f}s memory {baseline_seconds:7.3f}s "
                    f"disk {csr_bytes / 1e6:8.1f}MB identical={identical}"
                    + extra)
                engine.close()
    return rows


def bench_streaming(graphs, rounds, log, *, updates, ops_per_update, seed,
                    frontier_fraction=0.75):
    """Edge-stream scenario: k small deltas chained against the largest graph.

    Each update mutates a handful of edges (far below 1% of m), derives the
    child session with ``Session.apply_delta`` and re-solves through the
    frontier-restricted path; a cold solve on the mutated graph checks
    bit-identity (and provides the speedup baseline) at the first and last
    update.  One extra update runs with ``max_frontier_fraction=0`` so the
    fallback threshold is exercised in every benchmark run.  ``staleness`` is
    the wall-clock from an update's arrival to a fresh result (delta
    application + incremental re-solve).
    """
    from repro.graph import GraphDelta

    graph_name, graph = max(graphs, key=lambda item: item[1].num_nodes)
    rng = np.random.default_rng(seed)
    edges = [(u, v, w) for u, v, w in graph.edges(data=True) if u != v]
    order = rng.permutation(len(edges))
    nodes = list(graph.nodes())

    session = Session(graph)
    session.coreness(rounds=rounds)   # the live parent the stream mutates
    apply_seconds, solve_seconds = [], []
    cold_seconds = []
    runs = fallbacks = recomputed = peak = 0
    identical = True
    cursor = 0
    for update in range(updates):
        take = [edges[i] for i in order[cursor:cursor + ops_per_update]]
        cursor += ops_per_update
        half = max(1, len(take) // 2)
        remove = tuple((u, v) for u, v, _ in take[:half])
        reweight = tuple((u, v, w + 1.0) for u, v, w in take[half:])
        added = []
        while len(added) < 2:
            u = nodes[int(rng.integers(0, len(nodes)))]
            v = nodes[int(rng.integers(0, len(nodes)))]
            if u != v and not session.graph.has_edge(u, v) \
                    and all(a[:2] != (u, v) and a[:2] != (v, u) for a in added):
                added.append((u, v, 2.0))
        delta = GraphDelta(add_edges=tuple(added), remove_edges=remove,
                           set_weights=reweight)

        start = time.perf_counter()
        child = session.apply_delta(delta,
                                    max_frontier_fraction=frontier_fraction)
        apply_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        incremental = child.coreness(rounds=rounds)
        solve_seconds.append(time.perf_counter() - start)
        runs += child.stats.incremental_runs
        fallbacks += child.stats.incremental_fallbacks
        recomputed += child.stats.frontier_nodes_recomputed
        peak = max(peak, child.stats.frontier_peak_nodes)

        if update in (0, updates - 1):   # cold baseline + bit-identity check
            start = time.perf_counter()
            cold = Session(child.graph).coreness(rounds=rounds)
            cold_seconds.append(time.perf_counter() - start)
            identical = identical and incremental.values == cold.values and \
                bool(np.array_equal(incremental.surviving.trajectory,
                                    cold.surviving.trajectory))
        session = child

    # Fallback threshold: fraction 0 forces the cold path through the same
    # apply_delta API; the answer must stay identical.
    take = [edges[i] for i in order[cursor:cursor + 1]]
    forced = session.apply_delta(
        GraphDelta(set_weights=tuple((u, v, w + 1.0) for u, v, w in take)),
        max_frontier_fraction=0.0)
    forced_result = forced.coreness(rounds=rounds)
    fallback_exercised = forced.stats.incremental_fallbacks == 1
    fallbacks += forced.stats.incremental_fallbacks
    fallback_cold = Session(forced.graph).coreness(rounds=rounds)
    identical = identical and forced_result.values == fallback_cold.values

    staleness = [a + s for a, s in zip(apply_seconds, solve_seconds)]
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731 - local shorthand
    cold_best = min(cold_seconds)
    row = {
        "graph": graph_name, "n": graph.num_nodes, "m": graph.num_edges,
        "rounds": rounds, "updates": updates,
        "ops_per_update": ops_per_update + 2,   # edge ops + the 2 added edges
        "frontier_fraction": frontier_fraction,
        "apply_seconds_mean": round(mean(apply_seconds), 6),
        "incremental_seconds_mean": round(mean(solve_seconds), 6),
        "staleness_seconds_mean": round(mean(staleness), 6),
        "updates_per_second": round(1.0 / mean(staleness), 2),
        "cold_seconds": round(cold_best, 6),
        "speedup_vs_cold": round(cold_best / mean(solve_seconds), 2)
        if mean(solve_seconds) > 0 else float("inf"),
        "incremental_runs": runs,
        "incremental_fallbacks": fallbacks,
        "frontier_nodes_recomputed": recomputed,
        "frontier_peak_nodes": peak,
        "fallback_exercised": fallback_exercised,
        "identical": identical,
    }
    log(f"  stream  {graph_name:>12s} {updates} updates "
        f"staleness {row['staleness_seconds_mean']:9.6f}s "
        f"cold {cold_best:7.3f}s speedup x{row['speedup_vs_cold']:.1f} "
        f"identical={identical}")
    return [row]


def run_benchmarks(sizes, rounds, shards, workers, repeats, seed, smoke,
                   log=lambda line: None, traj_rounds=None,
                   serve_clients=4, serve_workers=2, densest_rounds=6,
                   densest_reference_max_nodes=DENSEST_REFERENCE_MAX_NODES,
                   stream_updates=None, stream_ops=8) -> dict:
    if stream_updates is None:
        stream_updates = 3 if smoke else 6
    graphs = list(_graphs(sizes, seed))
    document = {
        "schema": SCHEMA,
        "generated_by": "scripts/bench.py",
        "smoke": bool(smoke),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "params": {"sizes": list(sizes), "rounds": rounds, "shards": shards,
                   "workers": workers, "repeats": repeats, "seed": seed,
                   "traj_rounds": traj_rounds if traj_rounds is not None
                   else rounds,
                   "serve_clients": serve_clients,
                   "serve_workers": serve_workers,
                   "densest_rounds": densest_rounds,
                   "densest_reference_max_nodes": densest_reference_max_nodes,
                   "stream_updates": stream_updates, "stream_ops": stream_ops},
        "engines": bench_engines(graphs, rounds, shards, workers, repeats, log),
        "kept_sets": bench_kept_sets(graphs, rounds, repeats, log),
        "sessions": bench_sessions(graphs, rounds, shards, workers, log),
        "store": bench_store(graphs, rounds, log),
        "serve": bench_serve(graphs, rounds, serve_workers, serve_clients, log),
        "densest": bench_densest(graphs, densest_rounds, repeats, log,
                                 reference_max_nodes=densest_reference_max_nodes),
        "obs_overhead": bench_obs_overhead(graphs, rounds, repeats, log),
        "streaming": bench_streaming(graphs, rounds, log,
                                     updates=stream_updates,
                                     ops_per_update=stream_ops, seed=seed),
        "out_of_core": bench_out_of_core(graphs, rounds, shards, workers,
                                         repeats, log,
                                         traj_rounds=traj_rounds),
    }
    return document


def validate_document(document: dict) -> None:
    """Raise ``ValueError`` unless ``document`` matches the bench schema.

    Accepts the current schema and the legacy ones (older documents simply
    lack the sections added later), so committed perf trajectories from past
    PRs stay checkable.
    """
    schema = document.get("schema")
    if schema != SCHEMA and schema not in LEGACY_SCHEMAS:
        raise ValueError(f"unknown bench schema {schema!r}")
    missing_ok = _LEGACY_MISSING.get(schema, ())
    required = tuple(key for key in REQUIRED_TOP_LEVEL if key not in missing_ok)
    for key in required:
        if key not in document:
            raise ValueError(f"bench document is missing the {key!r} key")
    if not isinstance(document["machine"].get("cpu_count"), int):
        raise ValueError("machine.cpu_count must be an integer")
    for row in document["engines"]:
        for key in ("graph", "n", "m", "rounds", "config", "engine",
                    "seconds", "identical"):
            if key not in row:
                raise ValueError(f"engines row is missing {key!r}: {row}")
        if not row["identical"]:
            raise ValueError(f"engines row is not bit-identical: {row}")
    for row in document["kept_sets"]:
        for key in ("graph", "tie_break", "reference_seconds",
                    "vectorized_seconds", "speedup", "identical"):
            if key not in row:
                raise ValueError(f"kept_sets row is missing {key!r}: {row}")
        if not row["identical"]:
            raise ValueError(f"kept_sets row is not identical: {row}")
    for row in document["sessions"]:
        for key in ("graph", "config", "cold_seconds", "warm_seconds",
                    "resumed_seconds", "speedup_warm"):
            if key not in row:
                raise ValueError(f"sessions row is missing {key!r}: {row}")
    for row in document.get("store", ()):
        for key in ("graph", "cold_seconds", "restart_seconds",
                    "speedup_restart", "disk_hits", "identical"):
            if key not in row:
                raise ValueError(f"store row is missing {key!r}: {row}")
        if not row["identical"]:
            raise ValueError(f"store row is not bit-identical: {row}")
        if row["disk_hits"] < 1:
            raise ValueError(f"store restart did not hit the disk: {row}")
    for row in document.get("serve", ()):
        for key in ("graph", "config", "clients", "serve_workers", "requests",
                    "total_seconds", "throughput_rps", "p50_latency_seconds",
                    "p99_latency_seconds", "submitted", "dedup_hits",
                    "dedup_hit_rate", "identical"):
            if key not in row:
                raise ValueError(f"serve row is missing {key!r}: {row}")
        if not row["identical"]:
            raise ValueError(f"serve row is not bit-identical: {row}")
        if row["requests"] < row["clients"]:
            raise ValueError(f"serve row lost client requests: {row}")
        if row["p99_latency_seconds"] < row["p50_latency_seconds"]:
            raise ValueError(f"serve row has inverted percentiles: {row}")
    for row in document.get("densest", ()):
        for key in ("graph", "n", "m", "rounds", "config", "fast_seconds",
                    "phase_seconds"):
            if key not in row:
                raise ValueError(f"densest row is missing {key!r}: {row}")
        for key in ("phase1_surviving", "phase2_bfs_forest",
                    "phase3_local_elimination", "phase4_aggregation"):
            if key not in row["phase_seconds"]:
                raise ValueError(
                    f"densest row is missing phase timing {key!r}: {row}")
        if "reference_seconds" in row:
            if not row.get("identical"):
                raise ValueError(f"densest row is not bit-identical: {row}")
            if "speedup_vs_reference" not in row:
                raise ValueError(
                    f"densest row has a reference but no speedup: {row}")
    for row in document.get("obs_overhead", ()):
        for key in ("graph", "n", "m", "rounds", "untraced_seconds",
                    "traced_seconds", "overhead_percent",
                    "noop_span_seconds_per_call", "spans_recorded",
                    "span_names", "spans_complete", "identical"):
            if key not in row:
                raise ValueError(f"obs_overhead row is missing {key!r}: {row}")
        if not row["identical"]:
            raise ValueError(f"obs_overhead row is not bit-identical: {row}")
        if not row["spans_complete"]:
            raise ValueError(f"obs_overhead traced solve is missing hot-path "
                             f"spans: {row}")
        if row["spans_recorded"] < 1:
            raise ValueError(f"obs_overhead traced solve recorded no spans: "
                             f"{row}")
    for row in document.get("streaming", ()):
        for key in ("graph", "n", "m", "rounds", "updates", "ops_per_update",
                    "frontier_fraction", "apply_seconds_mean",
                    "incremental_seconds_mean", "staleness_seconds_mean",
                    "updates_per_second", "cold_seconds", "speedup_vs_cold",
                    "incremental_runs", "incremental_fallbacks",
                    "frontier_peak_nodes", "fallback_exercised", "identical"):
            if key not in row:
                raise ValueError(f"streaming row is missing {key!r}: {row}")
        if not row["identical"]:
            raise ValueError(f"streaming row is not bit-identical: {row}")
        if row["updates"] < 1:
            raise ValueError(f"streaming row ran no updates: {row}")
        if not row["fallback_exercised"] or row["incremental_fallbacks"] < 1:
            raise ValueError(f"streaming row never exercised the fallback "
                             f"threshold: {row}")
        if row["incremental_runs"] < 1:
            raise ValueError(f"streaming row never took the frontier path: "
                             f"{row}")
        if not document.get("smoke") and row["speedup_vs_cold"] <= 1.0:
            raise ValueError(f"streaming re-solve is not faster than cold: "
                             f"{row}")
    for row in document.get("out_of_core", ()):
        for key in ("graph", "config", "cold_seconds", "warm_seconds",
                    "in_memory_seconds", "csr_bytes_on_disk", "identical"):
            if key not in row:
                raise ValueError(f"out_of_core row is missing {key!r}: {row}")
        if not row["identical"]:
            raise ValueError(f"out_of_core row is not bit-identical: {row}")
        if row["csr_bytes_on_disk"] <= 0:
            raise ValueError(f"out_of_core row mapped no bytes: {row}")
        if "traj" in row["config"]:
            for key in ("traj_bytes_on_disk", "resume_seconds",
                        "resume_from_rounds", "resumed_identical"):
                if key not in row:
                    raise ValueError(f"out_of_core traj row is missing "
                                     f"{key!r}: {row}")
            if row["traj_bytes_on_disk"] <= 0:
                raise ValueError(f"out_of_core traj row spilled no bytes: {row}")
            if not row["resumed_identical"]:
                raise ValueError(f"out_of_core traj row did not resume "
                                 f"bit-identically after the simulated "
                                 f"crash: {row}")
    if not all(document[key] for key in required
               if key not in ("schema", "generated_by", "smoke", "machine",
                              "params")):
        raise ValueError("bench document has an empty section")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[10_000, 100_000, 200_000],
                        help="graph sizes n (default: 10k 100k 200k)")
    parser.add_argument("--rounds", type=int, default=10, help="round budget T")
    parser.add_argument("--traj-rounds", type=int, default=60,
                        help="round budget for the spilled-trajectory "
                             "out-of-core configs (default: 60, sized so the "
                             "(T+1) x n trajectory dominates the run's "
                             "other allocations)")
    parser.add_argument("--shards", type=int, default=8, help="shard count")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the parallel modes (default: max(4, CPUs))")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=99)
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long run on one small graph (CI)")
    parser.add_argument("--serve-clients", type=int, default=4,
                        help="concurrent HTTP clients hammering the serve "
                             "scenario (default: 4)")
    parser.add_argument("--serve-workers", type=int, default=2,
                        help="queue workers behind the benchmarked HTTP "
                             "server (default: 2)")
    parser.add_argument("--densest-rounds", type=int, default=6,
                        help="round budget T for the densest scenario "
                             "(default: 6 — the faithful reference costs "
                             "~5T+6 simulator rounds per graph)")
    parser.add_argument("--densest-reference-max-nodes", type=int,
                        default=DENSEST_REFERENCE_MAX_NODES,
                        help="largest graph the faithful densest reference "
                             "pipeline is run on (larger rows report array "
                             "timings only)")
    parser.add_argument("--stream-updates", type=int, default=None,
                        help="edge-stream updates in the streaming scenario "
                             "(default: 6, smoke: 3)")
    parser.add_argument("--out", "--output", dest="output", type=Path,
                        default=REPO_ROOT / "BENCH_PR10.json",
                        help="where to write the JSON document "
                             "(default: BENCH_PR10.json at the repo root)")
    args = parser.parse_args()

    sizes = [2_000] if args.smoke else args.sizes
    repeats = 1 if args.smoke else args.repeats
    traj_rounds = 12 if args.smoke else args.traj_rounds
    densest_rounds = 3 if args.smoke else args.densest_rounds
    serve_clients = min(2, args.serve_clients) if args.smoke \
        else args.serve_clients
    workers = args.workers if args.workers is not None \
        else max(4, os.cpu_count() or 1)

    print(f"bench: sizes={sizes} rounds={args.rounds} "
          f"traj_rounds={traj_rounds} shards={args.shards} "
          f"workers={workers} repeats={repeats} "
          f"serve_clients={serve_clients} cpu_count={os.cpu_count()}")
    document = run_benchmarks(sizes, args.rounds, args.shards, workers, repeats,
                              args.seed, args.smoke, log=print,
                              traj_rounds=traj_rounds,
                              serve_clients=serve_clients,
                              serve_workers=args.serve_workers,
                              densest_rounds=densest_rounds,
                              densest_reference_max_nodes=(
                                  args.densest_reference_max_nodes),
                              stream_updates=args.stream_updates)
    validate_document(document)
    args.output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"bench: results written to {args.output}")

    failures = [row for row in document["engines"] + document["kept_sets"]
                if not row["identical"]]
    if failures:  # pragma: no cover - validate_document already raises
        print("error: non-identical results", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
