#!/usr/bin/env python
"""CI smoke check of the persistent artifact store (used by check.sh).

Runs the same workload twice against one temporary store with *fresh* sessions
(the second run stands in for a restarted process) and asserts the wire-level
contract of ``repro.store``:

* the second run is served from disk (``disk_hits`` counted, zero cold runs);
* its results are bit-identical to the first run's (values, kept sets and the
  full trajectory);
* a stored short trajectory warm-starts a longer budget (prefix reuse
  composes across restarts).

Exits non-zero on any violation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.graph.generators.random_graphs import barabasi_albert  # noqa: E402
from repro.session import Session  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402


def main() -> int:
    graph = barabasi_albert(3000, 3, seed=7)
    rounds = 8
    with tempfile.TemporaryDirectory(prefix="repro-store-smoke-") as tmp:
        store = ArtifactStore(tmp)

        cold_session = Session(graph, store=store)
        cold = cold_session.coreness(rounds=rounds)
        assert cold_session.stats.disk_writes >= 1, "cold run persisted nothing"

        restarted = Session(graph, store=store)
        served = restarted.coreness(rounds=rounds)
        assert restarted.stats.disk_hits == 1, \
            f"restart did not hit the disk: {restarted.stats.to_dict()}"
        assert restarted.stats.cold_runs == 0, "restart recomputed from scratch"
        assert served.values == cold.values, "restart values differ"
        assert np.array_equal(served.surviving.trajectory,
                              cold.surviving.trajectory), \
            "restart trajectory is not bit-identical"

        resumer = Session(graph, store=store)
        resumed = resumer.coreness(rounds=rounds * 2)
        assert resumer.stats.rounds_reused == rounds, "stored prefix unused"
        fresh = Session(graph).coreness(rounds=rounds * 2)
        assert resumed.values == fresh.values, "resumed values differ from cold"

        info = store.info()
        print(f"store smoke: ok (graph n={graph.num_nodes}, rounds={rounds}; "
              f"restart disk_hits=1, bit-identical; prefix resume reused "
              f"{rounds} rounds; store holds {info['files']} files / "
              f"{info['bytes']} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
