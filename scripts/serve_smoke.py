#!/usr/bin/env python
"""Smoke-test the HTTP service the way an operator runs it.

Launches ``python -m repro serve`` as a real subprocess on an ephemeral
port backed by a throwaway store, then over a real socket: uploads the
caveman dataset, runs one job per registered problem, checks ``/metrics``
accounting (both the JSON document and the Prometheus text exposition),
and finally SIGTERMs the server.  The drain must exit 0 and may not leave
``*.tmp`` staging files behind in the store (the atomic publish contract:
readers only ever see complete artifacts).

Used by scripts/check.sh; exits non-zero on any failure.
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

BANNER = re.compile(r"listening on http://([^:]+):(\d+)")
PROBLEMS = ("coreness", "orientation", "densest")
SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$')


def check_prometheus_exposition(host, port):
    """Scrape /metrics?format=prometheus and parse the text exposition."""
    url = f"http://{host}:{port}/metrics?format=prometheus"
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.status == 200, response.status
        content_type = response.headers.get("Content-Type", "")
        assert content_type.startswith("text/plain; version=0.0.4"), \
            content_type
        text = response.read().decode("utf-8")
    names = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            assert parts[0] == "#" and parts[1] in ("HELP", "TYPE"), line
            continue
        assert SAMPLE_LINE.match(line), f"unparseable sample line: {line!r}"
        names.add(line.split("{", 1)[0].split(" ", 1)[0])
    required = {"repro_http_jobs", "repro_http_jobs_by_status",
                "repro_serve_submitted_total", "repro_solve_latency_seconds_count"}
    missing = required - names
    assert not missing, f"exposition is missing families: {missing}"
    return len(names)


def wait_for_banner(proc, deadline=20.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("server exited before announcing its port")
        match = BANNER.search(line)
        if match:
            return match.group(1), int(match.group(2))
    raise RuntimeError("server never announced its port")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        store = pathlib.Path(tmp) / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", str(store), "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            cwd=REPO_ROOT, env=env)
        try:
            host, port = wait_for_banner(proc)
            with ServeClient(host, port) as client:
                fingerprint = client.upload_dataset("caveman")
                jobs = [client.submit(fingerprint, problem=problem, rounds=6)
                        for problem in PROBLEMS]
                for issued in jobs:
                    doc = client.result(issued["job"])
                    assert doc["status"] == "done", doc
                metrics = client.metrics()
                serve = metrics["serve"]
                assert serve["submitted"] == len(PROBLEMS), serve
                assert serve["queue_depth"] == 0, serve
                assert metrics["store"] is not None, "store not wired in"
                assert metrics["store"]["files"] >= 1, metrics["store"]
            families = check_prometheus_exposition(host, port)
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        output = proc.stdout.read()
        if returncode != 0:
            print(output, file=sys.stderr)
            print(f"serve smoke: server exited {returncode} on SIGTERM",
                  file=sys.stderr)
            return 1
        strays = [p for p in store.rglob("*") if "tmp" in p.name]
        if strays:
            print(f"serve smoke: drain left staging files: {strays}",
                  file=sys.stderr)
            return 1
        if not any(store.rglob("*.json")):
            print("serve smoke: store is empty after the run", file=sys.stderr)
            return 1
    print(f"serve smoke: {len(PROBLEMS)} problems over the wire, "
          f"{families} prometheus families parsed, graceful drain, "
          "no staging files left behind")
    return 0


if __name__ == "__main__":
    sys.exit(main())
