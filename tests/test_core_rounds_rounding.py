"""Tests for the round-budget arithmetic and the Λ grid (repro.core.rounds / rounding)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.rounding import LambdaGrid, grid_for_graph
from repro.core.rounds import (
    epsilon_for_rounds,
    guarantee_after_rounds,
    lower_bound_rounds,
    rounds_for_epsilon,
    rounds_for_gamma,
)
from repro.errors import AlgorithmError
from repro.graph.graph import Graph


class TestRoundBudgets:
    def test_rounds_for_epsilon_formula(self):
        # T = ceil(log_{1+eps} n)
        assert rounds_for_epsilon(1000, 1.0) == 10
        assert rounds_for_epsilon(1024, 1.0) == 10
        assert rounds_for_epsilon(1025, 1.0) == 11

    def test_rounds_for_epsilon_small_graph(self):
        assert rounds_for_epsilon(1, 0.5) == 1
        assert rounds_for_epsilon(2, 0.5) >= 1

    def test_rounds_for_epsilon_rejects_bad_epsilon(self):
        with pytest.raises(AlgorithmError):
            rounds_for_epsilon(10, 0.0)
        with pytest.raises(AlgorithmError):
            rounds_for_epsilon(0, 1.0)

    def test_rounds_for_gamma_matches_epsilon_parametrisation(self):
        # gamma = 2(1+eps) should give the same budget as epsilon directly.
        for n in (10, 100, 5000):
            for eps in (0.25, 0.5, 1.0):
                assert rounds_for_gamma(n, 2 * (1 + eps)) == rounds_for_epsilon(n, eps)

    def test_rounds_for_gamma_rejects_gamma_at_most_two(self):
        with pytest.raises(AlgorithmError):
            rounds_for_gamma(100, 2.0)

    def test_guarantee_after_rounds(self):
        assert guarantee_after_rounds(100, 1) == pytest.approx(200.0)
        assert guarantee_after_rounds(100, 2) == pytest.approx(20.0)
        assert guarantee_after_rounds(1, 5) == pytest.approx(2.0)

    def test_guarantee_rejects_bad_inputs(self):
        with pytest.raises(AlgorithmError):
            guarantee_after_rounds(10, 0)
        with pytest.raises(AlgorithmError):
            guarantee_after_rounds(0, 3)

    def test_epsilon_for_rounds_inverts_guarantee(self):
        eps = epsilon_for_rounds(1000, 10)
        assert guarantee_after_rounds(1000, 10) == pytest.approx(2 * (1 + eps))

    def test_lower_bound_rounds(self):
        assert lower_bound_rounds(1024, 2.0) == pytest.approx(10 * math.log(2) / math.log(2) * 1.0)
        assert lower_bound_rounds(1, 4.0) == 0.0
        with pytest.raises(AlgorithmError):
            lower_bound_rounds(100, 1.5)

    @given(st.integers(min_value=2, max_value=10**6), st.floats(min_value=0.01, max_value=5.0))
    def test_budget_is_sufficient_for_target(self, n, eps):
        """The returned T really achieves 2·n^(1/T) <= 2(1+eps) (Theorem I.1)."""
        T = rounds_for_epsilon(n, eps)
        assert guarantee_after_rounds(n, T) <= 2 * (1 + eps) + 1e-9


class TestLambdaGrid:
    def test_exact_grid_is_identity(self):
        grid = LambdaGrid(lam=0.0)
        assert grid.is_exact
        assert grid.round_down(math.pi) == math.pi
        assert grid.grid_size() is None

    def test_rounding_down(self):
        grid = LambdaGrid(lam=1.0)   # powers of 2
        assert grid.round_down(9.0) == pytest.approx(8.0)
        assert grid.round_down(8.0) == pytest.approx(8.0)
        assert grid.round_down(0.0) == 0.0
        assert math.isinf(grid.round_down(math.inf))

    def test_rounded_value_within_factor(self):
        grid = LambdaGrid(lam=0.25)
        for value in (0.3, 1.0, 7.7, 123.4):
            rounded = grid.round_down(value)
            assert rounded <= value
            assert rounded * 1.25 > value * (1 - 1e-12)

    def test_grid_size_counts_powers(self):
        grid = LambdaGrid(lam=1.0, value_floor=1.0, value_ceiling=16.0)
        assert grid.grid_size() == 5   # 1, 2, 4, 8, 16

    def test_grid_size_none_without_bounds(self):
        assert LambdaGrid(lam=0.5).grid_size() is None

    def test_rejects_negative_lambda(self):
        with pytest.raises(AlgorithmError):
            LambdaGrid(lam=-0.1)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(AlgorithmError):
            LambdaGrid(lam=0.5, value_floor=10.0, value_ceiling=1.0)

    def test_grid_for_graph_bounds(self):
        g = Graph(edges=[(0, 1, 2.0), (1, 2, 8.0)])
        grid = grid_for_graph(g, 0.5)
        assert grid.value_floor == 2.0
        assert grid.value_ceiling == pytest.approx(10.0)
        assert grid.grid_size() is not None

    def test_grid_for_empty_weight_graph(self):
        g = Graph(nodes=[0, 1])
        grid = grid_for_graph(g, 0.5)
        assert grid.grid_size() is None
