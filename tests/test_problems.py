"""Tests for the problem registry and the uniform result protocol."""

from __future__ import annotations

import json

import pytest

from repro.errors import AlgorithmError
from repro.problems import (
    CorenessProblem,
    DensestProblem,
    OrientationProblem,
    Problem,
    available_problems,
    get_problem,
    register_problem,
)
from repro.session import Session


class TestRegistry:
    def test_builtins_registered(self):
        names = available_problems()
        for name in ("coreness", "orientation", "densest"):
            assert name in names

    @pytest.mark.parametrize("alias, canonical", [
        ("kcore", "coreness"), ("core", "coreness"),
        ("orient", "orientation"), ("minmax", "orientation"),
        ("dss", "densest"), ("densest-subsets", "densest"),
    ])
    def test_aliases_resolve(self, alias, canonical):
        assert get_problem(alias).name == canonical

    def test_name_resolution_is_case_insensitive(self):
        assert get_problem("Coreness").name == "coreness"

    def test_instance_passthrough(self):
        problem = CorenessProblem()
        assert get_problem(problem) is problem

    def test_unknown_problem_reported_with_choices(self):
        with pytest.raises(AlgorithmError, match="unknown problem 'sorting'"):
            get_problem("sorting")

    def test_non_string_rejected(self):
        with pytest.raises(AlgorithmError, match="name string or a Problem"):
            get_problem(42)

    def test_custom_problem_can_be_registered(self, k6):
        class GuaranteeProblem(Problem):
            name = "guarantee"

            def solve(self, session, *, rounds=None, **_):
                return session.surviving(rounds=rounds)

            def objective(self, result):
                return result.guarantee

        register_problem("guarantee", GuaranteeProblem)
        try:
            assert "guarantee" in available_problems()
            result = Session(k6).solve("guarantee", rounds=2)
            assert result.rounds == 2
        finally:
            import repro.problems as problems_module
            problems_module._FACTORIES.pop("guarantee", None)

    def test_shadowed_problem_is_not_served_stale_cached_results(self, k6):
        import repro.problems as problems_module
        from repro.core.api import CorenessResult

        session = Session(k6)
        original = session.solve("coreness", rounds=3)

        class Shadow(CorenessProblem):
            def solve(self, session, **params):
                result = CorenessProblem.solve(self, session, **params)
                return CorenessResult(values={v: x * 100 for v, x in result.values.items()},
                                      rounds=result.rounds, guarantee=result.guarantee,
                                      lam=result.lam, surviving=result.surviving)

        register_problem("coreness", Shadow)
        try:
            shadowed = session.solve("coreness", rounds=3)
            assert shadowed is not original
            assert shadowed.values[0] == original.values[0] * 100
        finally:
            problems_module.register_problem("coreness", CorenessProblem,
                                             aliases=("kcore", "core"))

    def test_describe_mentions_theorem(self):
        assert "Theorem I.1" in get_problem("coreness").describe()
        assert "Theorem I.2" in get_problem("orientation").describe()
        assert "Theorem I.3" in get_problem("densest").describe()


class TestObjectives:
    def test_coreness_objective_is_max_value(self, k6):
        result = Session(k6).coreness(rounds=3)
        assert CorenessProblem().objective(result) == 5.0

    def test_orientation_objective_is_max_in_weight(self, k6):
        result = Session(k6).orientation(rounds=3)
        assert OrientationProblem().objective(result) == result.max_in_weight

    def test_densest_objective_is_best_density(self, k6):
        result = Session(k6).densest(rounds=3)
        assert DensestProblem().objective(result) == pytest.approx(2.5)


class TestUniformResultProtocol:
    @pytest.mark.parametrize("problem", ["coreness", "orientation", "densest"])
    def test_every_result_serializes_to_json(self, k6, problem):
        result = Session(k6).solve(problem, rounds=3)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["problem"] == problem
        assert result.surviving is not None

    def test_coreness_to_dict_fields(self, small_weighted):
        result = Session(small_weighted).coreness(rounds=4)
        payload = result.to_dict()
        assert payload["rounds"] == 4
        assert payload["num_nodes"] == 4
        assert payload["max_value"] == max(result.values.values())
        assert dict((n, v) for n, v in payload["values"]) == result.values

    def test_orientation_to_dict_covers_every_edge(self, small_weighted):
        result = Session(small_weighted).orientation(rounds=4)
        payload = result.to_dict()
        assert len(payload["assignment"]) == small_weighted.num_edges
        assert payload["max_in_weight"] == result.max_in_weight
        for u, v, owner in payload["assignment"]:
            assert owner in (u, v)

    def test_densest_to_dict_subsets(self, k6):
        result = Session(k6).densest(rounds=3)
        payload = result.to_dict()
        assert payload["best_density"] == pytest.approx(2.5)
        assert payload["subsets_disjoint"] is True
        sizes = {entry["leader"]: entry["size"] for entry in payload["subsets"]}
        assert sum(sizes.values()) == sum(len(m) for m in result.subsets.values())

    def test_non_scalar_node_labels_serialize(self):
        from repro.graph.graph import Graph

        g = Graph(edges=[((0, "a"), (1, "b"), 2.0), ((1, "b"), (2, "c"), 1.0)])
        payload = json.dumps(Session(g).coreness(rounds=2).to_dict())
        assert "(0, 'a')" in payload


class TestBatchParamDeclarations:
    def test_coreness_takes_lambda_and_kept_tracking(self):
        assert set(CorenessProblem.batch_params) == {"lam", "tie_break", "track_kept"}

    def test_orientation_takes_only_tie_break(self):
        assert OrientationProblem.batch_params == ("tie_break",)

    def test_densest_takes_no_extras(self):
        assert DensestProblem.batch_params == ()
