"""Tests for the weak-densest-subset pipeline (Theorem I.3) and the high-level API."""

from __future__ import annotations

import math

import pytest

from repro.analysis.invariants import check_weak_densest_definition
from repro.baselines.exact_kcore import coreness
from repro.baselines.goldberg import maximum_density
from repro.core.api import (
    approximate_coreness,
    approximate_densest_subsets,
    approximate_orientation,
)
from repro.core.densest import expected_total_rounds, weak_densest_subsets
from repro.core.rounds import rounds_for_epsilon
from repro.errors import AlgorithmError
from repro.graph.generators.community import planted_partition
from repro.graph.generators.structured import barbell_graph, complete_graph, path_graph
from repro.graph.graph import Graph


class TestWeakDensestPipeline:
    def test_clique_is_recovered_exactly(self, k6):
        result = weak_densest_subsets(k6, epsilon=1.0)
        assert result.best_density == pytest.approx(2.5)
        assert result.subsets_are_disjoint()
        best_members = result.subsets[result.best_leader]
        assert best_members == frozenset(range(6))

    def test_definition_iv1_on_clique_with_tail(self, clique_with_tail):
        result = weak_densest_subsets(clique_with_tail, epsilon=1.0)
        rho_star = maximum_density(clique_with_tail)
        report = check_weak_densest_definition(clique_with_tail, result.subsets,
                                               rho_star / result.gamma)
        assert report.holds, report.violations

    def test_definition_iv1_on_planted_partition(self):
        g = planted_partition(3, 12, 0.7, 0.02, seed=8)
        result = weak_densest_subsets(g, epsilon=1.0)
        rho_star = maximum_density(g)
        assert result.best_density >= rho_star / result.gamma - 1e-9
        assert result.subsets_are_disjoint()

    def test_barbell_finds_a_dense_end_despite_diameter(self):
        g = barbell_graph(6, 10)   # diameter ~12, dense ends
        result = weak_densest_subsets(g, epsilon=1.0)
        rho_star = maximum_density(g)
        assert result.best_density >= rho_star / result.gamma - 1e-9
        # The round budget is governed by log(n), not by the diameter.
        assert result.rounds_total <= expected_total_rounds(g.num_nodes, 1.0)

    def test_reported_densities_match_recomputed(self, two_communities):
        result = weak_densest_subsets(two_communities, epsilon=1.0)
        for leader, reported in result.reported_densities.items():
            members = result.subsets[leader]
            # Reported density is measured on same-tree restricted degrees, so it can
            # only underestimate the true density of the member set.
            assert reported <= two_communities.subset_density(members) + 1e-9

    def test_node_assignment_consistency(self, two_communities):
        result = weak_densest_subsets(two_communities, epsilon=1.0)
        for v, leader in result.node_assignment.items():
            if leader is None:
                assert all(v not in members for members in result.subsets.values())
            else:
                assert v in result.subsets[leader]

    def test_rounds_breakdown_sums_to_total(self, k6):
        result = weak_densest_subsets(k6, epsilon=0.5)
        assert sum(result.rounds_per_phase.values()) == result.rounds_total
        assert result.messages_total > 0

    def test_parameter_validation(self, k6):
        with pytest.raises(AlgorithmError):
            weak_densest_subsets(k6)
        with pytest.raises(AlgorithmError):
            weak_densest_subsets(k6, epsilon=1.0, gamma=3.0)
        with pytest.raises(AlgorithmError):
            weak_densest_subsets(k6, rounds=0)
        with pytest.raises(AlgorithmError):
            weak_densest_subsets(Graph(), epsilon=1.0)

    def test_explicit_round_budget(self, k6):
        result = weak_densest_subsets(k6, rounds=2)
        assert result.rounds_per_phase["phase1_surviving"] == 2

    def test_expected_total_rounds_formula(self):
        T = rounds_for_epsilon(500, 1.0)
        assert expected_total_rounds(500, 1.0) == 5 * T + 6


class TestApproximateCorenessAPI:
    def test_values_sandwich_exact_coreness(self, ba_graph):
        result = approximate_coreness(ba_graph, epsilon=0.5)
        exact = coreness(ba_graph)
        for v in ba_graph.nodes():
            assert exact[v] - 1e-9 <= result.values[v] <= result.guarantee * exact[v] + 1e-9

    def test_top_nodes_ordering(self, core_periphery_graph):
        result = approximate_coreness(core_periphery_graph, epsilon=0.5)
        top = result.top_nodes(12)
        # The 12 core nodes have the highest approximate coreness.
        assert set(top) == set(range(12))

    def test_gamma_parametrisation(self, k6):
        by_gamma = approximate_coreness(k6, gamma=4.0)
        by_rounds = approximate_coreness(k6, rounds=by_gamma.rounds)
        assert by_gamma.values == by_rounds.values

    def test_requires_exactly_one_parameter(self, k6):
        with pytest.raises(AlgorithmError):
            approximate_coreness(k6)
        with pytest.raises(AlgorithmError):
            approximate_coreness(k6, epsilon=0.5, rounds=3)
        with pytest.raises(AlgorithmError):
            approximate_coreness(k6, rounds=0)
        with pytest.raises(AlgorithmError):
            approximate_coreness(Graph(), epsilon=0.5)

    def test_simulation_engine_available(self, triangle):
        result = approximate_coreness(triangle, rounds=2, engine="simulation")
        assert all(v == pytest.approx(2.0) for v in result.values.values())

    def test_lambda_parameter_threaded_through(self, ba_weighted):
        exact = approximate_coreness(ba_weighted, rounds=4, lam=0.0)
        rounded = approximate_coreness(ba_weighted, rounds=4, lam=0.5)
        assert rounded.lam == 0.5
        for v in ba_weighted.nodes():
            assert rounded.values[v] <= exact.values[v] + 1e-12


class TestApproximateOrientationAPI:
    def test_empty_graph_rejected(self):
        with pytest.raises(AlgorithmError):
            approximate_orientation(Graph(), epsilon=0.5)

    def test_every_edge_is_assigned(self, two_communities):
        result = approximate_orientation(two_communities, epsilon=0.5)
        non_loop_edges = sum(1 for u, v, _ in two_communities.edges() if u != v)
        assert len(result.orientation.assignment) == non_loop_edges

    def test_max_in_weight_matches_dictionary(self, ba_weighted):
        result = approximate_orientation(ba_weighted, epsilon=1.0)
        assert result.max_in_weight == pytest.approx(max(result.orientation.in_weight.values()))


class TestApproximateDensestAPI:
    def test_wrapper_matches_pipeline(self, k6):
        api_result = approximate_densest_subsets(k6, epsilon=1.0)
        direct = weak_densest_subsets(k6, epsilon=1.0)
        assert api_result.best_density == pytest.approx(direct.best_density)
        assert set(api_result.subsets) == set(direct.subsets)

    def test_path_graph_degenerate_density(self):
        g = path_graph(12)
        result = approximate_densest_subsets(g, epsilon=1.0)
        rho_star = maximum_density(g)   # (n-1)/n for a path
        assert result.best_density >= rho_star / result.gamma - 1e-9
