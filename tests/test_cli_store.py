"""CLI surfaces of the persistent store and the async serving layer:
``repro cache ls|info|purge``, ``repro batch --store`` and ``--async``."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.graph.generators.structured import complete_graph
from repro.graph.io import write_edge_list
from repro.store import ArtifactStore


@pytest.fixture
def k6_file(tmp_path):
    path = tmp_path / "k6.edges"
    write_edge_list(complete_graph(6), path)
    return path


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestBatchStoreFlag:
    def test_second_run_is_served_from_disk(self, tmp_path, k6_file):
        store_dir = tmp_path / "store"
        argv = ["batch", "--input", str(k6_file), "--rounds", "4",
                "--store", str(store_dir)]
        code, first = _run(argv)
        assert code == 0
        assert "disk_writes=1" in first
        code, second = _run(argv)
        assert code == 0
        assert "disk_hits=1" in second
        assert "disk_writes=0" in second

    def test_async_flag_matches_sequential_json(self, tmp_path, k6_file):
        base = ["batch", "--input", str(k6_file), "--rounds", "3",
                "--rounds", "5", "--json", "-"]
        code, sequential = _run(base)
        assert code == 0
        code, concurrent = _run(base + ["--async", "--serve-workers", "3"])
        assert code == 0

        def stable(text):  # everything but the wall-clock must be identical
            return [{k: v for k, v in row.items() if k != "seconds"}
                    for row in json.loads(text)]

        assert stable(concurrent) == stable(sequential)

    def test_async_with_store(self, tmp_path, k6_file):
        store_dir = tmp_path / "store"
        code, text = _run(["batch", "--input", str(k6_file), "--rounds", "4",
                           "--store", str(store_dir), "--async"])
        assert code == 0
        assert ArtifactStore(store_dir).info()["files"] > 0


class TestCacheCommand:
    def _populate(self, tmp_path, k6_file):
        store_dir = tmp_path / "store"
        code, _ = _run(["batch", "--input", str(k6_file), "--rounds", "4",
                        "--store", str(store_dir)])
        assert code == 0
        return store_dir

    def test_ls_lists_graphs(self, tmp_path, k6_file):
        store_dir = self._populate(tmp_path, k6_file)
        code, text = _run(["cache", "ls", "--store", str(store_dir)])
        assert code == 0
        assert "trajectory" in text
        assert "graphs=1" in text

    def test_ls_empty_store(self, tmp_path):
        code, text = _run(["cache", "ls", "--store", str(tmp_path / "empty")])
        assert code == 0
        assert "(store is empty)" in text

    def test_info_reports_totals(self, tmp_path, k6_file):
        store_dir = self._populate(tmp_path, k6_file)
        code, text = _run(["cache", "info", "--store", str(store_dir)])
        assert code == 0
        assert "files=2" in text          # trajectory + graph.json

    def test_purge_empties_the_store(self, tmp_path, k6_file):
        store_dir = self._populate(tmp_path, k6_file)
        code, text = _run(["cache", "purge", "--store", str(store_dir)])
        assert code == 0
        assert "purged 2 file(s)" in text
        code, text = _run(["cache", "ls", "--store", str(store_dir)])
        assert "(store is empty)" in text

    def test_purge_single_fingerprint(self, tmp_path, k6_file):
        store_dir = self._populate(tmp_path, k6_file)
        fingerprint = ArtifactStore(store_dir).fingerprints()[0]
        code, text = _run(["cache", "purge", "--store", str(store_dir),
                           "--fingerprint", fingerprint])
        assert code == 0
        assert "purged 2 file(s)" in text

    def test_bad_fingerprint_is_reported_as_error(self, tmp_path, k6_file):
        store_dir = self._populate(tmp_path, k6_file)
        code, _ = _run(["cache", "purge", "--store", str(store_dir),
                        "--fingerprint", "NOT-HEX"])
        assert code == 2
