"""Cross-engine equivalence property suite.

The contract of the execution layer (repro.engine) is that every engine —
``faithful`` (per-node protocol), ``vectorized`` (whole-graph kernels) and
``sharded`` (shard-by-shard kernels, any shard count) — computes *identical*
per-round surviving numbers, kept sets and orientations.

The graph corpus below has ~50 seeded cases covering self-loops, integer and
dyadic edge weights, disconnected pieces, isolated nodes, stars/cycles/paths,
dense cliques and random graphs.  All weights are integers or dyadic rationals,
so every intermediate weight sum is exactly representable in float64 and the
equality assertions are *bit-identical*, not approximate (see the numerical
note in :mod:`repro.engine.kernels`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.orientation import orientation_from_kept
from repro.core.surviving import run_compact_elimination
from repro.engine import get_engine
from repro.engine.sharded import ShardedEngine
from repro.errors import SimulationError
from repro.graph.generators.community import core_periphery, planted_partition
from repro.graph.generators.random_graphs import barabasi_albert, erdos_renyi_gnp
from repro.graph.generators.structured import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.generators.weights import with_uniform_integer_weights
from repro.graph.graph import Graph


def _with_dyadic_weights(graph: Graph, seed: int) -> Graph:
    """Re-weight edges with dyadic rationals (k/4) so float sums stay exact."""
    rng = np.random.default_rng(seed)
    g = Graph(nodes=graph.nodes())
    for u, v, _ in graph.edges():
        g.add_edge(u, v, float(rng.integers(1, 16)) / 4.0)
    return g


def _with_self_loops(graph: Graph, seed: int, *, every: int = 3) -> Graph:
    """Add integer-weight self-loops to every ``every``-th node."""
    rng = np.random.default_rng(seed)
    g = graph.copy()
    for i, v in enumerate(list(graph.nodes())):
        if i % every == 0:
            g.add_edge(v, v, float(rng.integers(1, 5)))
    return g


def _with_isolated_nodes(graph: Graph, count: int) -> Graph:
    g = graph.copy()
    for i in range(count):
        g.add_node(f"iso{i}")
    return g


def _single_node() -> Graph:
    g = Graph()
    g.add_node("only")
    return g


def _single_node_with_loop() -> Graph:
    return Graph(edges=[("only", "only", 3.0)])


def _two_components(seed: int) -> Graph:
    g = complete_graph(4)
    h = cycle_graph(5)
    combined = Graph()
    for u, v, w in g.edges():
        combined.add_edge(("a", u), ("a", v), w)
    for u, v, w in h.edges():
        combined.add_edge(("b", u), ("b", v), w)
    return with_uniform_integer_weights(combined, 1, 4, seed=seed)


def _corpus():
    """~50 (name, graph, rounds) cases; all weights integer or dyadic."""
    cases = []

    def add(name, graph, rounds=3):
        cases.append(pytest.param(graph, rounds, id=f"{name}"))

    # Random graphs — several seeds, may contain isolated nodes / many components.
    for seed in range(8):
        add(f"er-sparse-{seed}", erdos_renyi_gnp(30, 0.06, seed=seed))
    for seed in range(4):
        add(f"er-dense-{seed}", erdos_renyi_gnp(24, 0.3, seed=100 + seed), 4)
    for seed in range(6):
        g = barabasi_albert(40, 2, seed=200 + seed)
        add(f"ba-weighted-{seed}", with_uniform_integer_weights(g, 1, 7, seed=seed))
    for seed in range(4):
        add(f"dyadic-{seed}", _with_dyadic_weights(erdos_renyi_gnp(26, 0.12, seed=seed),
                                                   seed=300 + seed))
    # Self-loops (quotient-graph semantics) layered over several topologies.
    for seed in range(4):
        base = erdos_renyi_gnp(22, 0.12, seed=400 + seed)
        add(f"loops-{seed}", _with_self_loops(base, seed=seed))
    add("loops-on-clique", _with_self_loops(complete_graph(7), seed=1))
    add("loops-on-star", _with_self_loops(star_graph(9), seed=2))
    # Disconnected pieces and isolated nodes.
    for seed in range(3):
        add(f"two-components-{seed}", _two_components(seed))
    for seed in range(3):
        add(f"isolated-{seed}",
            _with_isolated_nodes(erdos_renyi_gnp(18, 0.15, seed=500 + seed), 4))
    add("all-isolated", Graph(nodes=range(6)))
    # Structured graphs.
    add("k2", complete_graph(2))
    add("k6", complete_graph(6))
    add("k10", complete_graph(10), 2)
    add("path9", path_graph(9), 5)
    add("cycle8", cycle_graph(8))
    add("star12", star_graph(12))
    add("grid5x4", grid_graph(5, 4), 4)
    add("single-node", _single_node(), 2)
    add("single-node-loop", _single_node_with_loop(), 2)
    add("weighted-grid", with_uniform_integer_weights(grid_graph(4, 4), 1, 5, seed=13), 4)
    add("weighted-cycle", with_uniform_integer_weights(cycle_graph(10), 1, 9, seed=14), 4)
    add("weighted-path", with_uniform_integer_weights(path_graph(7), 2, 6, seed=15), 4)
    add("dyadic-star", _with_dyadic_weights(star_graph(8), seed=16))
    # Community structure.
    add("planted", planted_partition(2, 12, 0.7, 0.05, seed=42))
    add("core-periphery", core_periphery(8, 20, attach_degree=2, seed=9))
    add("planted-weighted",
        with_uniform_integer_weights(planted_partition(3, 8, 0.6, 0.05, seed=7), 1, 3, seed=8))
    return cases


CORPUS = _corpus()

#: Shard counts exercised per graph: trivial (1), small, and >= n (clamped).
SHARD_COUNTS = (1, 2, 5, 10_000)


def _shard_variants(graph):
    return [ShardedEngine(num_shards=k) for k in SHARD_COUNTS] + \
        [ShardedEngine(num_shards=3, max_workers=2),
         ShardedEngine(num_shards=3, max_workers=2, parallel="process"),
         # Out-of-core: the same kernels over memory-mapped CSR files (a
         # private temp dir per engine), sequential and process-pool — the
         # bit-identity contract covers every storage backend too.
         ShardedEngine(num_shards=3, storage="mmap"),
         ShardedEngine(num_shards=3, max_workers=2, parallel="process",
                       storage="mmap")]


class TestCorpusSize:
    def test_corpus_is_large_enough(self):
        assert len(CORPUS) >= 50


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("graph, rounds", CORPUS)
    def test_values_kept_and_orientation_identical(self, graph, rounds):
        vec = get_engine("vectorized").run(graph, rounds, track_kept=True)
        reference_orientation = orientation_from_kept(graph, vec.kept, values=vec.values)

        # sharded, several shard counts (1, small, >= n) and a threaded variant:
        # bit-identical trajectory, values, kept sets and orientation.
        for engine in _shard_variants(graph):
            sharded = engine.run(graph, rounds, track_kept=True)
            assert sharded.values == vec.values
            assert sharded.kept == vec.kept
            assert np.array_equal(sharded.trajectory, vec.trajectory)
            orientation = orientation_from_kept(graph, sharded.kept, values=sharded.values)
            assert orientation.assignment == reference_orientation.assignment
            assert orientation.in_weight == reference_orientation.in_weight

        # faithful protocol: identical final values and kept sets ...
        faithful = get_engine("faithful").run(graph, rounds, track_kept=True)
        assert faithful.values == vec.values
        assert faithful.kept == vec.kept
        orientation = orientation_from_kept(graph, faithful.kept, values=faithful.values)
        assert orientation.assignment == reference_orientation.assignment

    @pytest.mark.parametrize("graph, rounds", CORPUS[::5])
    def test_per_round_values_match_faithful(self, graph, rounds):
        """Row t of the array trajectory == the protocol's values after t rounds."""
        vec = get_engine("vectorized").run(graph, rounds, track_kept=False)
        labels = vec.node_order
        for t in range(1, rounds + 1):
            partial, _ = run_compact_elimination(graph, t, track_kept=False)
            for i, label in enumerate(labels):
                assert vec.trajectory[t, i] == partial.values[label], (t, label)

    @pytest.mark.parametrize("lam", [0.1, 0.5])
    def test_lambda_rounding_identical_across_engines(self, ba_weighted, lam):
        vec = get_engine("vectorized").run(ba_weighted, 4, lam=lam, track_kept=False)
        sharded = get_engine("sharded:7").run(ba_weighted, 4, lam=lam, track_kept=False)
        faithful = get_engine("faithful").run(ba_weighted, 4, lam=lam, track_kept=False)
        assert sharded.values == vec.values
        assert np.array_equal(sharded.trajectory, vec.trajectory)
        assert faithful.values == vec.values

    @pytest.mark.parametrize("tie_break", ["history", "stable", "naive"])
    def test_tie_break_rules_agree_across_engines(self, two_communities, tie_break):
        vec = get_engine("vectorized").run(two_communities, 4, tie_break=tie_break,
                                           track_kept=True)
        sharded = get_engine("sharded:4").run(two_communities, 4, tie_break=tie_break,
                                              track_kept=True)
        assert sharded.values == vec.values
        assert sharded.kept == vec.kept

    def test_empty_graph_array_engines_agree(self):
        empty = Graph()
        vec = get_engine("vectorized").run(empty, 2)
        sharded = get_engine("sharded:4").run(empty, 2)
        assert vec.values == {} == sharded.values
        assert vec.kept == {} == sharded.kept
        assert vec.trajectory.shape == (3, 0) == sharded.trajectory.shape

    def test_empty_graph_faithful_raises(self):
        """The simulator cannot instantiate zero nodes; documented asymmetry."""
        with pytest.raises(SimulationError):
            get_engine("faithful").run(Graph(), 2)


class TestKeptSetReconstruction:
    """The batched kept-set path against the per-node reference loop.

    ``kept_sets_from_trajectory`` (one lexsort + segmented scan) must equal
    ``kept_sets_from_trajectory_reference`` (the original Python loop through
    ``update_sorted`` / ``update_stable``) *as ordered tuples* for every
    corpus graph and every tie-break rule — and both must equal the kept sets
    the faithful protocol maintains.
    """

    @pytest.mark.parametrize("tie_break", ["history", "stable", "naive"])
    @pytest.mark.parametrize("graph, rounds", CORPUS[::3])
    def test_vectorized_matches_reference(self, graph, rounds, tie_break):
        from repro.core.orientation import (
            kept_sets_from_trajectory,
            kept_sets_from_trajectory_reference,
        )
        from repro.engine.kernels import compact_trajectory
        from repro.graph.csr import graph_to_csr

        csr = graph_to_csr(graph)
        if csr.num_nodes == 0:
            pytest.skip("no trajectory on the empty graph")
        trajectory = compact_trajectory(csr, rounds)
        vectorized = kept_sets_from_trajectory(csr, trajectory, tie_break=tie_break)
        reference = kept_sets_from_trajectory_reference(csr, trajectory,
                                                        tie_break=tie_break)
        assert vectorized == reference

    @pytest.mark.parametrize("tie_break", ["history", "stable", "naive"])
    def test_both_paths_match_the_faithful_protocol(self, two_communities, tie_break):
        from repro.core.orientation import kept_sets_from_trajectory_reference

        faithful = get_engine("faithful").run(two_communities, 4,
                                              tie_break=tie_break, track_kept=True)
        vec = get_engine("vectorized").run(two_communities, 4,
                                           tie_break=tie_break, track_kept=True)
        assert vec.kept == faithful.kept  # engines route through the batched path
        from repro.graph.csr import graph_to_csr

        csr = graph_to_csr(two_communities)
        reference = kept_sets_from_trajectory_reference(csr, vec.trajectory,
                                                        tie_break=tie_break)
        assert reference == faithful.kept

    def test_single_round_trajectory_has_no_history(self, small_weighted):
        from repro.core.orientation import (
            kept_sets_from_trajectory,
            kept_sets_from_trajectory_reference,
        )
        from repro.engine.kernels import compact_trajectory
        from repro.graph.csr import graph_to_csr

        csr = graph_to_csr(small_weighted)
        trajectory = compact_trajectory(csr, 1)
        for tie_break in ("history", "stable", "naive"):
            assert kept_sets_from_trajectory(csr, trajectory, tie_break=tie_break) \
                == kept_sets_from_trajectory_reference(csr, trajectory,
                                                       tie_break=tie_break)

    def test_unknown_tie_break_rejected(self, triangle):
        from repro.core.orientation import kept_sets_from_trajectory
        from repro.engine.kernels import compact_trajectory
        from repro.graph.csr import graph_to_csr
        from repro.errors import AlgorithmError

        csr = graph_to_csr(triangle)
        trajectory = compact_trajectory(csr, 2)
        with pytest.raises(AlgorithmError, match="tie_break"):
            kept_sets_from_trajectory(csr, trajectory, tie_break="bogus")
