"""Tests for the synchronous LOCAL-model simulator (repro.distsim)."""

from __future__ import annotations

import pytest

from repro.distsim.congest import CongestBudget, MessageSizeModel
from repro.distsim.faults import FaultModel, no_faults
from repro.distsim.message import BROADCAST, Message
from repro.distsim.network import SyncNetwork
from repro.distsim.node import NodeContext, NodeProtocol
from repro.distsim.runner import run_protocol
from repro.errors import SimulationError
from repro.graph.generators.structured import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.graph import Graph


class EchoDegreeProtocol(NodeProtocol):
    """Each node broadcasts 1 and counts how many messages it receives per round."""

    def __init__(self, context):
        super().__init__(context)
        self.received_counts = []

    def compose_message(self, round_index):
        return self.broadcast(1)

    def receive(self, round_index, messages):
        self.received_counts.append(len(messages))

    def output(self):
        return self.received_counts


class MaxIdFloodProtocol(NodeProtocol):
    """Classic flood-max: after D rounds every node knows the maximum node id."""

    def __init__(self, context):
        super().__init__(context)
        self.best = context.node_id

    def compose_message(self, round_index):
        return self.broadcast(self.best)

    def receive(self, round_index, messages):
        for message in messages.values():
            self.best = max(self.best, message.payload)

    def output(self):
        return self.best


class UnicastToSmallestProtocol(NodeProtocol):
    """Sends its id only to its smallest-id neighbour; used to test recipient lists."""

    def __init__(self, context):
        super().__init__(context)
        self.inbox = []

    def compose_message(self, round_index):
        if not self.context.neighbor_weights:
            return None
        target = min(self.context.neighbor_weights)
        return self.unicast(self.context.node_id, [target])

    def receive(self, round_index, messages):
        self.inbox.extend(m.payload for m in messages.values())

    def output(self):
        return sorted(self.inbox)


class HaltImmediatelyProtocol(NodeProtocol):
    def compose_message(self, round_index):
        self.halt()
        return None

    def receive(self, round_index, messages):
        pass

    def output(self):
        return "halted"


class TestSyncNetwork:
    def test_every_node_hears_all_neighbors(self, k6):
        run = run_protocol(k6, EchoDegreeProtocol, 3)
        for counts in run.outputs.values():
            assert counts == [5, 5, 5]

    def test_flood_max_needs_diameter_rounds(self):
        g = path_graph(6)   # diameter 5
        network = SyncNetwork(g, MaxIdFloodProtocol)
        network.run(2)
        assert network.outputs()[0] == 2     # info travelled only 2 hops
        network.run(3)
        assert network.outputs()[0] == 5     # after 5 rounds the max has arrived

    def test_unicast_restricted_recipients(self):
        g = star_graph(4)   # centre 0, leaves 1..4
        run = run_protocol(g, UnicastToSmallestProtocol, 1)
        # Every leaf sends to the centre (its only neighbour); centre sends to leaf 1.
        assert run.outputs[0] == [1, 2, 3, 4]
        assert run.outputs[1] == [0]
        assert run.outputs[2] == []

    def test_messaging_non_neighbor_raises(self):
        class BadProtocol(NodeProtocol):
            def compose_message(self, round_index):
                return self.unicast("x", ["not-a-neighbor"])

            def receive(self, round_index, messages):
                pass

            def output(self):
                return None

        g = path_graph(3)
        network = SyncNetwork(g, BadProtocol)
        with pytest.raises(SimulationError):
            network.run_round()

    def test_halted_nodes_stop_participating(self, triangle):
        network = SyncNetwork(triangle, HaltImmediatelyProtocol)
        stats = network.run(5)
        # All nodes halt during round 1, so only one round is ever executed.
        assert stats.num_rounds == 1
        assert all(p.halted for p in network.protocols.values())

    def test_empty_graph_rejected(self):
        with pytest.raises(SimulationError):
            SyncNetwork(Graph(), EchoDegreeProtocol)

    def test_negative_round_count_rejected(self, triangle):
        network = SyncNetwork(triangle, EchoDegreeProtocol)
        with pytest.raises(SimulationError):
            network.run(-1)

    def test_factory_must_return_protocol(self, triangle):
        with pytest.raises(SimulationError):
            SyncNetwork(triangle, lambda ctx: object())

    def test_run_until_predicate(self):
        g = path_graph(8)
        network = SyncNetwork(g, MaxIdFloodProtocol)
        network.run_until(lambda net: net.outputs()[0] == 7, max_rounds=20)
        assert network.outputs()[0] == 7
        assert network.rounds_executed <= 8

    def test_protocol_accessor(self, triangle):
        network = SyncNetwork(triangle, EchoDegreeProtocol)
        assert isinstance(network.protocol(0), EchoDegreeProtocol)
        with pytest.raises(SimulationError):
            network.protocol(99)


class TestMessageStats:
    def test_message_counts(self, k6):
        run = run_protocol(k6, EchoDegreeProtocol, 2)
        # 6 nodes broadcasting to 5 neighbours for 2 rounds.
        assert run.stats.total_messages == 6 * 5 * 2
        assert run.stats.num_rounds == 2
        assert run.stats.total_bits > 0

    def test_stats_summary_string(self, triangle):
        run = run_protocol(triangle, EchoDegreeProtocol, 1)
        summary = run.stats.summary()
        assert "rounds=1" in summary and "messages=6" in summary


class TestNodeContext:
    def test_context_exposes_degrees(self, small_weighted):
        captured = {}

        class CaptureProtocol(NodeProtocol):
            def __init__(self, context):
                super().__init__(context)
                captured[context.node_id] = (context.weighted_degree, context.degree,
                                             context.num_nodes)

            def compose_message(self, round_index):
                return None

            def receive(self, round_index, messages):
                pass

            def output(self):
                return None

        SyncNetwork(small_weighted, CaptureProtocol)
        assert captured[0] == (pytest.approx(7.0), 3, 4)
        assert captured[3] == (pytest.approx(1.0), 1, 4)


class TestMessageSizeModel:
    def test_int_and_bool_sizes(self):
        model = MessageSizeModel()
        assert model.payload_bits(True) == 1
        assert model.payload_bits(0) == 2
        assert model.payload_bits(255) == 9

    def test_float_default_and_grid_sizes(self):
        assert MessageSizeModel().payload_bits(3.14) == 64
        assert MessageSizeModel(grid_size=1024).payload_bits(3.14) == 10

    def test_infinity_is_cheap(self):
        assert MessageSizeModel().payload_bits(float("inf")) == 2

    def test_container_sizes_are_additive(self):
        model = MessageSizeModel()
        assert model.payload_bits((1, 2)) == 2 + model.payload_bits(1) + model.payload_bits(2)
        assert model.payload_bits(None) == 1
        assert model.payload_bits("ab") == 16

    def test_unknown_type_raises(self):
        with pytest.raises(SimulationError):
            MessageSizeModel().payload_bits(object())


class TestCongestBudget:
    def test_budget_scales_with_log_n(self):
        assert CongestBudget(num_nodes=1024, words=2).budget_bits == 20
        assert CongestBudget(num_nodes=1, words=3).budget_bits == 3

    def test_violations_are_counted(self):
        budget = CongestBudget(num_nodes=16, words=1)   # 4 bits
        assert budget.observe(3)
        assert not budget.observe(100)
        assert budget.violations == 1
        assert budget.max_observed_bits == 100


class TestFaults:
    def test_no_faults_helper(self):
        assert no_faults() is None

    def test_crash_schedule_silences_node(self):
        g = cycle_graph(4)
        faults = FaultModel(crash_schedule={0: 1})
        run = run_protocol(g, EchoDegreeProtocol, 2, fault_model=faults)
        # Node 0's neighbours (1 and 3) only hear from their other neighbour.
        assert run.outputs[1] == [1, 1]
        assert run.outputs[3] == [1, 1]
        assert run.outputs[2] == [2, 2]

    def test_message_drops_reduce_received_counts(self):
        g = complete_graph(8)
        faults = FaultModel(drop_probability=1.0)
        run = run_protocol(g, EchoDegreeProtocol, 1, fault_model=faults)
        assert all(counts == [0] for counts in run.outputs.values())
        assert run.stats.total_dropped == run.stats.total_messages

    def test_invalid_drop_probability(self):
        with pytest.raises(ValueError):
            FaultModel(drop_probability=1.5)
