"""The JSON node-label protocol — repro.utils.serialize.

Pins the contract the uniform ``to_dict()`` result protocol (and the artifact
store's ``graph.json`` metadata) relies on: per-node maps serialize as
*collision-free, order-preserving lists of pairs*.  A str-keyed JSON object
would silently merge the int node ``1`` with the string node ``"1"``; the pair
encoding keeps every distinct hashable label a distinct entry, survives
``json.dumps``/``loads`` round-trips, and represents non-scalar labels
(tuples, frozensets, mixed types) unambiguously via ``repr``.
"""

from __future__ import annotations

import json

import pytest

from repro.utils.serialize import json_node, json_value_pairs


class TestJsonNode:
    @pytest.mark.parametrize("scalar", [None, True, False, 0, -3, 2.5, "x", ""])
    def test_json_scalars_pass_through_unchanged(self, scalar):
        assert json_node(scalar) is scalar

    def test_tuple_labels_serialize_as_repr(self):
        assert json_node((1, 2)) == "(1, 2)"
        assert json_node(("a", 3)) == "('a', 3)"
        assert json_node(()) == "()"

    def test_frozenset_labels_serialize_as_repr(self):
        label = frozenset([3])
        assert json_node(label) == repr(label)
        assert json_node(label).startswith("frozenset(")

    def test_nested_labels_serialize_as_repr(self):
        label = (1, ("a", 2.5))
        assert json_node(label) == "(1, ('a', 2.5))"

    def test_every_output_is_json_representable(self):
        labels = [None, 1, "1", 2.5, True, (1, 2), frozenset([7]), ("x", (8,))]
        encoded = json.dumps([json_node(label) for label in labels])
        assert json.loads(encoded) is not None


class TestJsonValuePairs:
    def test_round_trips_through_json(self):
        values = {(1, 2): 0.5, "node": 1.25, 7: 2.0}
        pairs = json_value_pairs(values)
        assert json.loads(json.dumps(pairs)) == [["(1, 2)", 0.5],
                                                 ["node", 1.25], [7, 2.0]]

    def test_mapping_order_is_preserved(self):
        values = {"c": 1.0, "a": 2.0, "b": 3.0}
        assert [node for node, _ in json_value_pairs(values)] == ["c", "a", "b"]

    def test_int_and_str_nodes_do_not_collide(self):
        # The reason pairs exist at all: a {str(node): value} object would
        # merge these two nodes into one key.
        values = {1: 10.0, "1": 20.0}
        pairs = json_value_pairs(values)
        assert len(pairs) == 2
        assert pairs == [[1, 10.0], ["1", 20.0]]
        decoded = json.loads(json.dumps(pairs))
        assert decoded[0][0] == 1 and decoded[0][0] is not True
        assert decoded[1][0] == "1"

    def test_mixed_non_scalar_labels_stay_distinct(self):
        values = {(1, 2): 1.0, "(1, 2)": 2.0, frozenset([1]): 3.0, 1: 4.0}
        pairs = json_value_pairs(values)
        assert len(pairs) == len(values)
        # The tuple node and the string spelled like its repr map to the same
        # JSON label — documented lossiness of the repr fallback — but they
        # remain *separate entries*, so no value is silently dropped.
        assert [value for _, value in pairs] == [1.0, 2.0, 3.0, 4.0]

    def test_empty_mapping(self):
        assert json_value_pairs({}) == []

    def test_matches_result_to_dict_protocol(self, two_communities):
        # The protocol consumer: problem results serialize per-node maps
        # exactly through these helpers.
        from repro.session import Session

        result = Session(two_communities).coreness(rounds=3)
        payload = result.to_dict()
        assert payload["values"] == json_value_pairs(result.values)
        json.dumps(payload)  # representable end-to-end
