"""The async serving layer: equivalence, dedup, backpressure, lifecycle.

The acceptance contract is the concurrent-submission equivalence: N mixed jobs
submitted through a :class:`JobQueue` produce results bit-identical to running
the same jobs sequentially through a :class:`BatchRunner` (and the
:class:`AsyncSession` route matches synchronous ``Session.solve``).  Timing
tests are gated on events, never sleeps-as-synchronisation.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.batch import BatchJob, BatchRunner
from repro.errors import ServeError
from repro.graph.datasets import load_dataset
from repro.problems import CorenessProblem
from repro.serve import AsyncSession, JobQueue
from repro.session import Session


@pytest.fixture
def graphs():
    return load_dataset("caveman"), load_dataset("communities")


def _mixed_jobs(graphs):
    g1, g2 = graphs
    return [BatchJob(graph=g, problem=problem, rounds=rounds)
            for g in (g1, g2)
            for problem in ("coreness", "orientation")
            for rounds in (3, 6)]


class _Gated(CorenessProblem):
    """A coreness problem that blocks inside solve until released."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def solve(self, session, **params):
        self.started.set()
        assert self.release.wait(timeout=10), "gate was never released"
        return super().solve(session, **params)


class _Failing(CorenessProblem):
    def solve(self, session, **params):
        raise RuntimeError("deliberate failure")


class TestJobQueueEquivalence:
    def test_concurrent_submission_matches_sequential(self, graphs):
        jobs = _mixed_jobs(graphs)
        sequential = BatchRunner().run(jobs)
        with JobQueue(max_workers=4) as queue:
            concurrent = [future.result()
                          for future in [queue.submit(job) for job in jobs]]
        assert len(concurrent) == len(sequential)
        for seq, conc in zip(sequential, concurrent):
            assert conc.surviving.values == seq.surviving.values
            assert conc.surviving.kept == seq.surviving.kept
            assert conc.stats.objective == seq.stats.objective
            assert conc.stats.problem == seq.stats.problem

    def test_map_streams_in_submission_order(self, graphs):
        jobs = _mixed_jobs(graphs)
        with JobQueue(max_workers=4) as queue:
            streamed = list(queue.map(jobs))
        assert [r.job for r in streamed] == jobs

    def test_queue_with_store_matches_sequential(self, graphs, tmp_path):
        jobs = _mixed_jobs(graphs)
        sequential = BatchRunner().run(jobs)
        with JobQueue(max_workers=4, store=tmp_path / "store") as queue:
            concurrent = queue.run(jobs)
        for seq, conc in zip(sequential, concurrent):
            assert conc.surviving.values == seq.surviving.values
        assert (tmp_path / "store").is_dir()  # artifacts were persisted

    def test_same_graph_jobs_share_one_session(self, graphs):
        g1, _ = graphs
        jobs = [BatchJob(graph=g1, rounds=t) for t in (2, 4, 6)]
        with JobQueue(max_workers=3) as queue:
            queue.run(jobs)
            assert queue.runner.cached_graphs == 1


class TestInFlightDedup:
    def test_identical_inflight_jobs_share_one_future(self, graphs):
        g1, _ = graphs
        gated = _Gated()
        job = BatchJob(graph=g1, problem=gated, rounds=3)
        with JobQueue(max_workers=2) as queue:
            first = queue.submit(job)
            assert gated.started.wait(timeout=10)
            second = queue.submit(job)   # identical and in flight: coalesces
            assert second is first
            assert queue.stats.deduplicated == 1
            gated.release.set()
            assert first.result().surviving.values
        assert queue.stats.submitted == 1

    def test_equivalent_spellings_coalesce(self, graphs):
        g1, _ = graphs
        gated = _Gated()
        with JobQueue(max_workers=2) as queue:
            first = queue.submit(BatchJob(graph=g1, problem=gated, rounds=3))
            assert gated.started.wait(timeout=10)
            # tie_break spelled at its default is the same request.
            second = queue.submit(BatchJob(graph=g1, problem=gated, rounds=3,
                                           tie_break="history"))
            assert second is first
            gated.release.set()
            first.result()

    def test_differently_named_jobs_do_not_coalesce(self, graphs):
        # A shared future carries one job identity in its stats row, so only
        # jobs that would report identically may share one (the session's
        # result cache still deduplicates the compute underneath).
        g1, _ = graphs
        gated = _Gated()
        with JobQueue(max_workers=2) as queue:
            first = queue.submit(BatchJob(graph=g1, problem=gated,
                                          rounds=3, name="job-a"))
            assert gated.started.wait(timeout=10)
            second = queue.submit(BatchJob(graph=g1, problem=gated,
                                           rounds=3, name="job-b"))
            assert second is not first
            gated.release.set()
            assert first.result().stats.job == "job-a"
            assert second.result().stats.job == "job-b"

    def test_distinct_jobs_do_not_coalesce(self, graphs):
        g1, g2 = graphs
        with JobQueue(max_workers=2) as queue:
            futures = {queue.submit(BatchJob(graph=g1, rounds=3)),
                       queue.submit(BatchJob(graph=g1, rounds=4)),
                       queue.submit(BatchJob(graph=g2, rounds=3))}
            assert len(futures) == 3
            for future in futures:
                future.result()
        assert queue.stats.deduplicated == 0

    def test_completed_jobs_leave_the_inflight_registry(self, graphs):
        g1, _ = graphs
        with JobQueue(max_workers=1) as queue:
            queue.submit(BatchJob(graph=g1, rounds=3)).result()
            # Drain the done-callback (runs on the worker thread).
            deadline = threading.Event()
            for _ in range(100):
                if queue.in_flight == 0:
                    break
                deadline.wait(0.01)
            assert queue.in_flight == 0


class TestBackpressure:
    def test_submit_blocks_at_max_pending(self, graphs):
        g1, _ = graphs
        gated = _Gated()
        blocked_submitted = threading.Event()
        with JobQueue(max_workers=1, max_pending=1) as queue:
            first = queue.submit(BatchJob(graph=g1, problem=gated, rounds=3))
            assert gated.started.wait(timeout=10)

            def overflow():
                future = queue.submit(BatchJob(graph=g1, rounds=4))
                blocked_submitted.set()
                future.result()

            thread = threading.Thread(target=overflow, daemon=True)
            thread.start()
            # The queue is full: the second submit must still be blocked.
            assert not blocked_submitted.wait(timeout=0.2)
            gated.release.set()
            assert blocked_submitted.wait(timeout=10)
            thread.join(timeout=10)
            assert first.result().surviving.values

    def test_dedup_does_not_consume_capacity(self, graphs):
        g1, _ = graphs
        gated = _Gated()
        job = BatchJob(graph=g1, problem=gated, rounds=3)
        with JobQueue(max_workers=1, max_pending=1) as queue:
            first = queue.submit(job)
            assert gated.started.wait(timeout=10)
            # The queue is at capacity, but an identical submission coalesces
            # without blocking on the semaphore.
            assert queue.submit(job) is first
            gated.release.set()
            first.result()

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ServeError):
            JobQueue(max_workers=0)
        with pytest.raises(ServeError):
            JobQueue(max_pending=0)


class TestLifecycleAndErrors:
    def test_submit_after_close_raises(self, graphs):
        g1, _ = graphs
        queue = JobQueue(max_workers=1)
        queue.close()
        with pytest.raises(ServeError):
            queue.submit(BatchJob(graph=g1, rounds=3))

    def test_job_exceptions_surface_on_the_future(self, graphs):
        g1, _ = graphs
        with JobQueue(max_workers=1) as queue:
            future = queue.submit(BatchJob(graph=g1, problem=_Failing(), rounds=3))
            with pytest.raises(RuntimeError, match="deliberate"):
                future.result()
        assert queue.stats.completed == 1

    def test_invalid_jobs_fail_at_submit_time(self, graphs):
        from repro.errors import AlgorithmError

        g1, _ = graphs
        with JobQueue(max_workers=1) as queue:
            with pytest.raises(AlgorithmError):
                # orientation does not take lam: rejected before any worker runs
                queue.submit(BatchJob(graph=g1, problem="orientation",
                                      rounds=3, lam=0.5))

    def test_runner_and_options_are_mutually_exclusive(self):
        with pytest.raises(ServeError):
            JobQueue(BatchRunner(), store="/tmp/nope")
        with pytest.raises(ServeError):
            # An explicit engine alongside a runner must be rejected, not
            # silently dropped in favour of the runner's engine.
            JobQueue(BatchRunner("faithful"), engine="sharded:8")


class TestGraphLockHygiene:
    """Regression: the per-graph lock map grew forever and trusted id() reuse.

    ``JobQueue._graph_locks`` was keyed by ``id(graph)`` and never pruned, so
    a long-lived queue leaked one lock per graph it ever served — and a
    recycled ``id()`` could hand a brand-new graph a lock some thread still
    held for a dead one.  The map now holds weakrefs (like
    ``ShardedEngine._fingerprints``) and prunes dead entries on access.
    """

    def _fresh_graph(self, seed):
        from repro.graph.generators.random_graphs import barabasi_albert

        return barabasi_albert(20, 2, seed=seed)

    def test_lock_is_stable_for_a_live_graph(self, graphs):
        g1, _ = graphs
        with JobQueue(max_workers=1) as queue:
            assert queue._graph_lock(g1) is queue._graph_lock(g1)
            assert len(queue._graph_locks) == 1

    def test_dead_graphs_are_pruned_from_the_lock_map(self, graphs):
        import gc

        g1, _ = graphs
        with JobQueue(max_workers=1) as queue:
            for seed in range(5):
                queue._graph_lock(self._fresh_graph(seed))  # dies immediately
            gc.collect()
            # The next lookup prunes every dead entry.
            queue._graph_lock(g1)
            assert len(queue._graph_locks) == 1

    def test_recycled_id_is_not_handed_a_stale_lock(self, graphs):
        import gc
        import threading
        import weakref

        g1, _ = graphs
        with JobQueue(max_workers=1) as queue:
            stale_lock = threading.Lock()
            doomed = self._fresh_graph(0)
            # Simulate id() reuse: a dead graph's entry sits at g1's id.
            queue._graph_locks[id(g1)] = (weakref.ref(doomed), stale_lock)
            del doomed
            gc.collect()
            assert queue._graph_lock(g1) is not stale_lock


class TestServeStatsCounters:
    """The /metrics-feeding counters: queue_depth gauge, per-problem tallies,
    the dedup_hits wire alias, and the non-blocking 429 path."""

    def test_queue_depth_tracks_inflight_executions(self, graphs):
        g1, _ = graphs
        gated = _Gated()
        with JobQueue(max_workers=1) as queue:
            assert queue.stats.queue_depth == 0
            future = queue.submit(BatchJob(graph=g1, problem=gated, rounds=3))
            assert gated.started.wait(timeout=10)
            assert queue.stats.queue_depth == 1
            gated.release.set()
            future.result()
        assert queue.stats.queue_depth == 0

    def test_per_problem_counts_accepted_and_coalesced(self, graphs):
        g1, _ = graphs
        gated = _Gated()
        with JobQueue(max_workers=2) as queue:
            first = queue.submit(BatchJob(graph=g1, problem=gated, rounds=3))
            assert gated.started.wait(timeout=10)
            queue.submit(BatchJob(graph=g1, problem=gated, rounds=3))  # dedup
            ori = queue.submit(BatchJob(graph=g1, problem="orientation",
                                        rounds=3))
            gated.release.set()
            first.result()
            ori.result()
        # A coalesced submission still counts against its problem: per_problem
        # measures request traffic, not executions.
        assert queue.stats.per_problem == {"coreness": 2, "orientation": 1}

    def test_dedup_hits_is_the_wire_alias_of_deduplicated(self):
        from repro.serve import ServeStats

        stats = ServeStats(deduplicated=3)
        assert stats.dedup_hits == 3

    def test_to_dict_is_a_detached_snapshot(self, graphs):
        g1, _ = graphs
        with JobQueue(max_workers=1) as queue:
            queue.submit(BatchJob(graph=g1, rounds=3)).result()
        snapshot = queue.stats.to_dict()
        assert snapshot["submitted"] == 1
        assert snapshot["dedup_hits"] == 0
        assert snapshot["queue_depth"] == 0
        assert snapshot["per_problem"] == {"coreness": 1}
        snapshot["per_problem"]["coreness"] = 99   # must not alias the gauge
        assert queue.stats.per_problem["coreness"] == 1

    def test_nonblocking_submit_raises_queue_full(self, graphs):
        from repro.errors import QueueFullError

        g1, _ = graphs
        gated = _Gated()
        with JobQueue(max_workers=1, max_pending=1) as queue:
            first = queue.submit(BatchJob(graph=g1, problem=gated, rounds=3))
            assert gated.started.wait(timeout=10)
            with pytest.raises(QueueFullError):
                queue.submit(BatchJob(graph=g1, rounds=4), block=False)
            # An identical in-flight request still coalesces at capacity.
            assert queue.submit(BatchJob(graph=g1, problem=gated, rounds=3),
                                block=False) is first
            gated.release.set()
            first.result()
        # The refused job was never accepted.
        assert queue.stats.submitted == 1
        # Capacity freed: the non-blocking path admits again after completion.
        with JobQueue(max_workers=1, max_pending=1) as queue:
            queue.submit(BatchJob(graph=g1, rounds=3), block=False).result()
            assert queue.submit(BatchJob(graph=g1, rounds=4),
                                block=False).result().surviving.values

    def test_async_session_counts_problems_too(self, graphs):
        g1, _ = graphs
        with AsyncSession(g1, max_workers=2) as serve:
            serve.submit("coreness", rounds=3).result()
            serve.submit("orientation", rounds=3).result()
            serve.submit("coreness", rounds=3).result()  # session-cache hit
        assert serve.stats.per_problem == {"coreness": 2, "orientation": 1}


class TestAsyncSession:
    def test_matches_synchronous_session(self, graphs):
        g1, _ = graphs
        sync = Session(g1)
        expected = [sync.solve("coreness", rounds=3),
                    sync.solve("orientation", rounds=3),
                    sync.solve("coreness", rounds=6)]
        with AsyncSession(g1, max_workers=2) as serve:
            results = list(serve.map([("coreness", {"rounds": 3}),
                                      ("orientation", {"rounds": 3}),
                                      ("coreness", {"rounds": 6})]))
        assert results[0].values == expected[0].values
        assert results[1].orientation.assignment == expected[1].orientation.assignment
        assert results[2].values == expected[2].values

    def test_identical_requests_share_the_result_object(self, graphs):
        g1, _ = graphs
        with AsyncSession(g1, max_workers=2) as serve:
            futures = [serve.submit("coreness", rounds=4) for _ in range(6)]
            results = [future.result() for future in futures]
        assert all(result is results[0] for result in results)
        # Every submission either coalesced in flight or hit the session cache.
        assert serve.stats.submitted + serve.stats.deduplicated == 6

    def test_wraps_an_existing_session(self, graphs):
        g1, _ = graphs
        session = Session(g1)
        warmed = session.coreness(rounds=4)
        with AsyncSession(session=session, max_workers=1) as serve:
            assert serve.submit("coreness", rounds=4).result() is warmed

    def test_graph_and_session_are_mutually_exclusive(self, graphs):
        g1, _ = graphs
        with pytest.raises(ServeError):
            AsyncSession(g1, session=Session(g1))
        with pytest.raises(ServeError):
            AsyncSession()
        with pytest.raises(ServeError):
            AsyncSession(session=Session(g1), store="/tmp/nope")

    def test_lambda_spellings_coalesce_in_flight(self, graphs):
        # Regression: AsyncSession._request_key skipped the λ canonicalisation
        # Session.solve performs, so equivalent spellings of the same request
        # could miss the in-flight dedup (and a bad λ only failed inside the
        # worker future).  Serve with a non-default λ so the explicit
        # spellings stay in the key and must canonicalise to coalesce.
        g1, _ = graphs
        gated = _Gated()
        with AsyncSession(g1, lam=0.25, max_workers=2) as serve:
            first = serve.submit(gated, rounds=3, lam=-0.0)
            assert gated.started.wait(timeout=10)
            second = serve.submit(gated, rounds=3, lam=0.0)
            assert second is first  # -0.0 and 0.0 are one request
            assert serve.stats.deduplicated == 1
            gated.release.set()
            first.result()
        assert serve.stats.submitted == 1

    def test_default_lambda_spelled_explicitly_coalesces(self, graphs):
        g1, _ = graphs
        gated = _Gated()
        with AsyncSession(g1, max_workers=2) as serve:
            first = serve.submit(gated, rounds=3)
            assert gated.started.wait(timeout=10)
            # -0.0 must canonicalise first, then collapse onto the omitted
            # spelling of the session default 0.0.
            second = serve.submit(gated, rounds=3, lam=-0.0)
            assert second is first
            assert serve.stats.deduplicated == 1
            gated.release.set()
            first.result()

    def test_non_finite_lambda_fails_at_submit_time(self, graphs):
        from repro.errors import InvalidLambdaError

        g1, _ = graphs
        with AsyncSession(g1, max_workers=1) as serve:
            for bad in (float("nan"), float("inf"), float("-inf")):
                with pytest.raises(InvalidLambdaError):
                    # Rejected before any worker runs — a NaN λ would
                    # otherwise never dedup (NaN != NaN) and only fail
                    # inside the future.
                    serve.submit("coreness", rounds=3, lam=bad)
        assert serve.stats.submitted == 0

    def test_store_backed_async_session(self, graphs, tmp_path):
        g1, _ = graphs
        with AsyncSession(g1, store=tmp_path / "store", max_workers=2) as serve:
            first = serve.submit("coreness", rounds=4).result()
        with AsyncSession(g1, store=tmp_path / "store", max_workers=2) as serve:
            again = serve.submit("coreness", rounds=4).result()
            assert serve.session.stats.disk_hits == 1
        assert again.values == first.values
