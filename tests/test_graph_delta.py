"""Unit contract of the graph-delta layer: canonicalisation, wire form,
chain fingerprints, application semantics, and store lineage records.

The cross-engine bit-identity of the incremental re-solve lives in
test_session_equivalence.py (TestDeltaEquivalence); this file pins the
building blocks it composes."""

from __future__ import annotations

import json

import pytest

from repro.errors import GraphError
from repro.graph import (Graph, GraphDelta, apply_delta, chain_fingerprint,
                         changed_labels)
from repro.store import ArtifactStore

ROOT_FP = "0" * 64


def small_graph() -> Graph:
    return Graph([(0, 1, 2.0), (1, 2, 1.0), (2, 3, 4.0), (0, 3, 1.0)])


class TestCanonicalisation:
    def test_sections_sort_and_normalise_pairs(self):
        a = GraphDelta(add_edges=((5, 1, 2.0), (0, 2, 1.0)),
                       remove_edges=((3, 0),))
        b = GraphDelta(add_edges=((2, 0, 1.0), (1, 5, 2.0)),
                       remove_edges=((0, 3),))
        assert a == b
        assert a.add_edges == ((0, 2, 1.0), (1, 5, 2.0))
        assert a.remove_edges == ((0, 3),)

    def test_duplicate_edges_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            GraphDelta(add_edges=((0, 1, 2.0), (1, 0, 3.0)))
        with pytest.raises(GraphError, match="duplicate"):
            GraphDelta(add_nodes=(7, 7))

    def test_negative_weights_rejected(self):
        with pytest.raises(GraphError, match="non-negative"):
            GraphDelta(set_weights=((0, 1, -2.0),))

    def test_arity_enforced(self):
        with pytest.raises(GraphError, match="fields"):
            GraphDelta(add_edges=((0, 1),))
        with pytest.raises(GraphError, match="fields"):
            GraphDelta(remove_edges=((0, 1, 2.0),))

    def test_empty_and_counts(self):
        assert GraphDelta().is_empty
        d = GraphDelta(add_edges=((0, 1, 1.0),), add_nodes=(9,))
        assert not d.is_empty
        assert d.num_operations == 2
        assert d.describe() == "delta(+1e -0e ~0w +1n)"


class TestWireForm:
    def test_round_trip(self):
        d = GraphDelta(add_edges=(("a", "b", 2.0),),
                       remove_edges=(("b", "c"),),
                       set_weights=(("a", "c", 5.0),),
                       add_nodes=("z",))
        doc = json.loads(json.dumps(d.to_dict()))
        assert GraphDelta.from_dict(doc) == d

    def test_schema_and_fields_validated(self):
        with pytest.raises(GraphError, match="schema"):
            GraphDelta.from_dict({"schema": "bogus/9"})
        with pytest.raises(GraphError, match="unknown delta fields"):
            GraphDelta.from_dict({"bogus": []})
        with pytest.raises(GraphError, match="JSON scalars"):
            GraphDelta.from_dict({"add_edges": [[(1, 2), "x", 1.0]]})
        with pytest.raises(GraphError, match="object"):
            GraphDelta.from_dict([1, 2])


class TestApply:
    def test_semantics_add_remove_set(self):
        child = apply_delta(small_graph(), GraphDelta(
            add_edges=((0, 1, 3.0), (4, 5, 1.0)),
            remove_edges=((1, 2),),
            set_weights=((2, 3, 9.0),),
            add_nodes=(99,)))
        assert child.edge_weight(0, 1) == 5.0      # accumulated
        assert not child.has_edge(1, 2)            # removed
        assert child.edge_weight(2, 3) == 9.0      # absolute
        assert child.has_edge(4, 5)                # endpoints created
        assert child.has_node(99)                  # isolated node added
        parent = small_graph()
        assert parent.edge_weight(0, 1) == 2.0     # parent untouched

    def test_removing_absent_edge_raises(self):
        with pytest.raises(GraphError):
            apply_delta(small_graph(), GraphDelta(remove_edges=((0, 2),)))

    def test_parent_node_order_is_stable(self):
        parent = small_graph()
        child = apply_delta(parent, GraphDelta(add_edges=((1, 7, 1.0),)))
        parent_order = list(parent.nodes())
        assert list(child.nodes())[:len(parent_order)] == parent_order

    def test_changed_labels_cover_all_sections(self):
        d = GraphDelta(add_edges=((0, 1, 1.0),), remove_edges=((2, 3),),
                       set_weights=((4, 5, 2.0),), add_nodes=(9,))
        assert changed_labels(d) == {0, 1, 2, 3, 4, 5, 9}


class TestChainFingerprint:
    def test_deterministic_in_canonical_form(self):
        a = GraphDelta(add_edges=((1, 0, 2.0), (3, 2, 1.0)))
        b = GraphDelta(add_edges=((2, 3, 1.0), (0, 1, 2.0)))
        assert chain_fingerprint(ROOT_FP, a) == chain_fingerprint(ROOT_FP, b)

    def test_distinct_deltas_and_parents_diverge(self):
        d = GraphDelta(add_edges=((0, 1, 2.0),))
        other = GraphDelta(add_edges=((0, 1, 3.0),))
        assert chain_fingerprint(ROOT_FP, d) != chain_fingerprint(ROOT_FP, other)
        assert chain_fingerprint(ROOT_FP, d) != chain_fingerprint("f" * 64, d)

    def test_sections_cannot_collide(self):
        added = GraphDelta(add_edges=((0, 1, 2.0),))
        reweighted = GraphDelta(set_weights=((0, 1, 2.0),))
        assert chain_fingerprint(ROOT_FP, added) != \
            chain_fingerprint(ROOT_FP, reweighted)

    def test_parent_must_be_64_hex(self):
        with pytest.raises(GraphError, match="64 hex"):
            chain_fingerprint("nope", GraphDelta())
        out = chain_fingerprint(ROOT_FP, GraphDelta())
        assert len(out) == 64 and int(out, 16) >= 0


class TestStoreLineage:
    def test_record_load_and_chain(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        d1 = GraphDelta(add_edges=((0, 9, 1.0),))
        d2 = GraphDelta(remove_edges=((0, 9),))
        child = chain_fingerprint(ROOT_FP, d1)
        grandchild = chain_fingerprint(child, d2)
        store.record_lineage(child, ROOT_FP, d1, content_fingerprint="a" * 64)
        store.record_lineage(grandchild, child, d2)

        rec = store.load_lineage(child)
        assert rec["parent"] == ROOT_FP
        assert rec["content_fingerprint"] == "a" * 64
        assert GraphDelta.from_dict(rec["delta"]) == d1

        chain = store.lineage_chain(grandchild)
        assert [r["fingerprint"] for r in chain] == [grandchild, child]
        assert store.load_lineage("b" * 64) is None
        assert store.lineage_chain("b" * 64) == []

    def test_lineage_survives_evict_but_not_purge(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        child = chain_fingerprint(ROOT_FP, GraphDelta(add_nodes=(1,)))
        store.record_lineage(child, ROOT_FP, GraphDelta(add_nodes=(1,)))
        store.evict(max_bytes=0)
        assert store.load_lineage(child) is not None
        store.purge()
        assert store.load_lineage(child) is None


class TestSessionApplyDeltaValidation:
    def test_requires_graphdelta_and_valid_fraction(self):
        from repro.errors import AlgorithmError
        from repro.session import Session
        session = Session(small_graph())
        with pytest.raises(AlgorithmError):
            session.apply_delta({"add_edges": []})
        with pytest.raises(AlgorithmError):
            session.apply_delta(GraphDelta(), max_frontier_fraction=1.5)

    def test_child_carries_lineage(self):
        from repro.session import Session
        parent = Session(small_graph())
        delta = GraphDelta(add_edges=((0, 2, 1.0),))
        child = parent.apply_delta(delta)
        assert child.parent is parent
        assert child.delta == delta
        assert child.chain_fingerprint == \
            chain_fingerprint(parent.fingerprint, delta)
        assert child.chain_fingerprint != child.fingerprint
        # Root sessions answer their content fingerprint as chain address.
        assert parent.chain_fingerprint == parent.fingerprint
