"""Tests for the Graph data structure (repro.graph.graph)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph


class TestNodeOperations:
    def test_add_node_is_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_nodes_preserve_insertion_order(self):
        g = Graph(nodes=[3, 1, 2])
        assert list(g.nodes()) == [3, 1, 2]

    def test_contains_and_len(self):
        g = Graph(nodes=[1, 2])
        assert 1 in g and 3 not in g
        assert len(g) == 2

    def test_remove_node_removes_incident_edges(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        g.remove_node(1)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge(0, 2)

    def test_remove_node_with_self_loop(self):
        g = Graph(edges=[(0, 0, 2.0), (0, 1, 1.0)])
        g.remove_node(0)
        assert g.num_nodes == 1
        assert g.num_edges == 0
        assert g.total_weight == 0.0

    def test_remove_unknown_node_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_node("missing")


class TestEdgeOperations:
    def test_unweighted_pairs_get_weight_one(self):
        g = Graph(edges=[(0, 1)])
        assert g.edge_weight(0, 1) == 1.0

    def test_weighted_triples(self):
        g = Graph(edges=[(0, 1, 2.5)])
        assert g.edge_weight(0, 1) == 2.5
        assert g.edge_weight(1, 0) == 2.5

    def test_repeated_edges_accumulate(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 0, 2.0)
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == pytest.approx(3.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(edges=[(0, 1, -1.0)])

    def test_bad_edge_tuple_rejected(self):
        with pytest.raises(GraphError):
            Graph(edges=[(0, 1, 2, 3)])

    def test_self_loop_counted_once_in_edges(self):
        g = Graph(edges=[(0, 0, 4.0)])
        assert g.num_edges == 1
        assert g.total_weight == 4.0
        assert g.self_loop_weight(0) == 4.0

    def test_self_loops_accumulate(self):
        g = Graph(edges=[(0, 0, 1.0), (0, 0, 2.0)])
        assert g.num_edges == 1
        assert g.self_loop_weight(0) == pytest.approx(3.0)

    def test_remove_edge(self):
        g = Graph(edges=[(0, 1, 2.0), (1, 2, 3.0)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.total_weight == pytest.approx(3.0)

    def test_remove_missing_edge_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_edges_iteration_yields_each_edge_once(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 2, 5.0)])
        edges = list(g.edges())
        assert len(edges) == 4
        keys = {(min(u, v), max(u, v)) for u, v, _ in edges}
        assert keys == {(0, 1), (1, 2), (0, 2), (2, 2)}

    def test_edge_weight_missing_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(GraphError):
            g.edge_weight(0, 1)
        with pytest.raises(GraphError):
            g.edge_weight(0, 0)


class TestDegreesAndDensity:
    def test_weighted_degree(self):
        g = Graph(edges=[(0, 1, 2.0), (0, 2, 3.0), (0, 0, 1.5)])
        assert g.degree(0) == pytest.approx(6.5)
        assert g.degree(1) == pytest.approx(2.0)

    def test_unweighted_degree_counts_loop_once(self):
        g = Graph(edges=[(0, 1), (0, 0)])
        assert g.unweighted_degree(0) == 2
        assert g.unweighted_degree(1) == 1

    def test_degree_of_unknown_node_raises(self):
        with pytest.raises(GraphError):
            Graph().degree("x")

    def test_graph_density(self, k6):
        assert k6.density() == pytest.approx(15 / 6)

    def test_density_of_empty_graph_raises(self):
        with pytest.raises(GraphError):
            Graph().density()

    def test_subset_weight_counts_internal_edges_and_loops(self):
        g = Graph(edges=[(0, 1, 2.0), (1, 2, 3.0), (0, 0, 1.0)])
        assert g.subset_weight([0, 1]) == pytest.approx(3.0)   # edge (0,1) + loop at 0
        assert g.subset_weight([0, 1, 2]) == pytest.approx(6.0)

    def test_subset_density(self, k6):
        assert k6.subset_density([0, 1, 2]) == pytest.approx(1.0)
        assert k6.subset_density(k6.nodes()) == pytest.approx(2.5)

    def test_subset_density_empty_raises(self, k6):
        with pytest.raises(GraphError):
            k6.subset_density([])

    def test_subset_with_unknown_node_raises(self, k6):
        with pytest.raises(GraphError):
            k6.subset_density([0, 99])


class TestCopyAndEquality:
    def test_copy_is_equal_but_independent(self, k6):
        clone = k6.copy()
        assert clone == k6
        clone.add_edge(0, 1, 1.0)  # accumulates weight
        assert clone != k6

    def test_equality_checks_weights(self):
        a = Graph(edges=[(0, 1, 1.0)])
        b = Graph(edges=[(0, 1, 2.0)])
        assert a != b

    def test_equality_with_non_graph(self):
        assert Graph() != 42

    def test_relabel_to_integers(self):
        g = Graph(edges=[("x", "y", 2.0), ("y", "z", 3.0)])
        relabeled, mapping = g.relabeled_to_integers()
        assert set(mapping.keys()) == {"x", "y", "z"}
        assert relabeled.num_edges == 2
        assert relabeled.edge_weight(mapping["x"], mapping["y"]) == 2.0

    def test_is_unit_weighted(self):
        assert Graph(edges=[(0, 1), (1, 2)]).is_unit_weighted()
        assert not Graph(edges=[(0, 1, 2.0)]).is_unit_weighted()
