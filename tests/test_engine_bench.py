"""Timing comparisons between the array engines (excluded from tier-1).

Run with ``python -m pytest -m bench`` (see pytest.ini).  The acceptance bar —
sharded within 2x of vectorized on a 100k-node graph — is checked by
``scripts/bench_engines.py``; this in-suite variant uses a smaller graph so it
stays runnable anywhere.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import get_engine
from repro.graph.generators.random_graphs import barabasi_albert


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.bench
def test_sharded_within_2x_of_vectorized():
    graph = barabasi_albert(30_000, 3, seed=77)
    rounds = 8
    vec = get_engine("vectorized")
    sharded = get_engine("sharded", num_shards=8)
    vec.run(graph, 2, track_kept=False)  # warm-up (CSR conversion dominates cold)
    vec_seconds = _best_of(lambda: vec.run(graph, rounds, track_kept=False))
    sharded_seconds = _best_of(lambda: sharded.run(graph, rounds, track_kept=False))
    assert sharded_seconds <= 2.0 * vec_seconds + 0.05, \
        f"sharded {sharded_seconds:.3f}s vs vectorized {vec_seconds:.3f}s"


@pytest.mark.bench
def test_batch_runner_amortises_csr_conversion():
    from repro.engine import BatchJob, BatchRunner

    graph = barabasi_albert(10_000, 3, seed=78)
    runner = BatchRunner("vectorized")
    start = time.perf_counter()
    runner.run_job(BatchJob(graph=graph, rounds=4))
    cold = time.perf_counter() - start
    start = time.perf_counter()
    runner.run_job(BatchJob(graph=graph, rounds=4))
    warm = time.perf_counter() - start
    assert warm <= cold  # second job reuses the cached CSR view
