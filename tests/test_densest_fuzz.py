"""Property-style fuzz for the densest pipeline's orphan/limbo corners.

The handcrafted adversarial cases in test_densest_equivalence.py pin the
*known* failure shapes (orphans, stranded subtrees, value plateaus).  This
suite searches for unknown ones: seeded-random small graphs with
seeded-random value assignments drawn from a plateau-heavy palette — small
round budgets plus large value gaps are exactly what strands BFS waves
mid-flight and produces orphans and limbo subtrees.  Every trial cross-checks
the faithful per-node protocols against the CSR kernels bit-identically, both
per phase (via the shared ``_phase_comparison`` harness) and end-to-end
(``weak_densest_subsets`` faithful vs ``engine="array"``).

All weights and values are integers or halves, so float sums are exact and
"bit-identical" is a meaningful assertion, not a tolerance."""

from __future__ import annotations

import numpy as np
import pytest

from test_densest_equivalence import _assert_results_identical, _phase_comparison

from repro.core.densest import weak_densest_subsets
from repro.graph.graph import Graph

#: Plateau-heavy palette: duplicates force identity-order leader election,
#: the 100.0 outlier builds waves that outrun the round budget (orphans).
VALUE_PALETTE = (0.5, 1.0, 1.0, 2.0, 2.0, 5.0, 100.0)


def random_graph(rng: np.random.Generator) -> Graph:
    """A random small connected-ish graph biased toward deep, thin shapes.

    Thin shapes (paths, sparse trees) with a far-away high-value node are
    what produce orphans: the strong leader's wave arrives in the last round
    and leaves earlier requesters parentless.  Denser trials cover the
    plateau/tie behaviour instead.
    """
    n = int(rng.integers(4, 17))
    shape = rng.choice(("path", "tree", "sparse", "dense"))
    labels = (list(range(n)) if rng.random() < 0.7
              else [f"v{i}" for i in range(n)])
    rng.shuffle(labels)
    graph = Graph()
    edges = set()

    def connect(i, j, w):
        key = (min(i, j), max(i, j))
        if i != j and key not in edges:
            edges.add(key)
            graph.add_edge(labels[i], labels[j], w)

    weights = rng.choice((1.0, 1.0, 2.0, 4.0), size=4 * n)
    if shape == "path":
        for i in range(1, n):
            connect(i - 1, i, weights[i])
    elif shape == "tree":
        for i in range(1, n):
            connect(int(rng.integers(0, i)), i, weights[i])
    else:
        for i in range(1, n):  # spanning tree first: no isolated fragments
            connect(int(rng.integers(0, i)), i, weights[i])
        extra = n // 2 if shape == "sparse" else 2 * n
        for k in range(extra):
            connect(int(rng.integers(0, n)), int(rng.integers(0, n)),
                    weights[(n + k) % len(weights)])
    return graph


class TestPhaseKernelFuzz:
    """Phases 2-4 under random values: protocols vs kernels, node by node."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_topology_random_values(self, seed):
        rng = np.random.default_rng(20_000 + seed)
        graph = random_graph(rng)
        values = {v: float(rng.choice(VALUE_PALETTE)) for v in graph.nodes()}
        T = int(rng.integers(1, 5))          # short budgets strand waves
        factor = float(rng.choice((1.5, 2.0, 3.0)))
        _phase_comparison(graph, values, T, factor)

    @pytest.mark.parametrize("seed", range(10))
    def test_all_values_equal_pure_identity_order(self, seed):
        # Total plateau: every leader election falls to the repr-string
        # identity order — the orphan-free worst case for tie handling.
        rng = np.random.default_rng(30_000 + seed)
        graph = random_graph(rng)
        value = float(rng.choice((1.0, 2.0)))
        _phase_comparison(graph, {v: value for v in graph.nodes()},
                          int(rng.integers(1, 4)), 2.0)

    @pytest.mark.parametrize("seed", range(10))
    def test_single_giant_among_plateau(self, seed):
        # One node towers over a flat landscape: its wave must either claim
        # everything it reaches in T rounds or orphan the requesters it
        # cannot — the stranded-subtree generator.
        rng = np.random.default_rng(40_000 + seed)
        graph = random_graph(rng)
        nodes = list(graph.nodes())
        values = {v: 1.0 for v in nodes}
        values[nodes[int(rng.integers(0, len(nodes)))]] = 100.0
        _phase_comparison(graph, values, int(rng.integers(1, 4)), 2.0)


class TestEndToEndFuzz:
    """Whole pipeline: faithful simulator vs ``engine="array"``."""

    @pytest.mark.parametrize("seed", range(15))
    def test_faithful_vs_array_bit_identical(self, seed):
        rng = np.random.default_rng(50_000 + seed)
        graph = random_graph(rng)
        rounds = int(rng.integers(1, 6))
        reference = weak_densest_subsets(graph, rounds=rounds)
        fast = weak_densest_subsets(graph, rounds=rounds, engine="array")
        _assert_results_identical(fast, reference)
        assert fast.subsets_are_disjoint()
