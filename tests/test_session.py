"""Tests for the session facade — repro.session.

Covers the artifact caches (CSR exactly once, Λ-grids per distinct λ), the
result cache, trajectory-prefix reuse (bit-identical to cold runs), the stats
counters, and the problem-registry route.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.session as session_module
from repro.core.api import (
    approximate_coreness,
    approximate_densest_subsets,
    approximate_orientation,
)
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.session import Session


class TestSessionBasics:
    def test_empty_graph_rejected(self):
        with pytest.raises(AlgorithmError, match="non-empty graph"):
            Session(Graph())

    def test_engine_resolved_through_registry(self, k6):
        assert Session(k6, engine="sharded:2").engine.num_shards == 2
        assert Session(k6).engine.name == "vectorized"

    def test_unknown_engine_rejected(self, k6):
        with pytest.raises(AlgorithmError, match="unknown engine"):
            Session(k6, engine="quantum")

    def test_csr_and_grid_built_lazily_exactly_once(self, k6):
        session = Session(k6, lam=0.25)
        assert session.stats.csr_builds == 0   # nothing built until needed
        assert session.stats.grid_builds == 0
        session.surviving(rounds=2)
        assert session.stats.csr_builds == 1
        assert session.stats.grid_builds == 1
        assert session.grid().lam == 0.25
        assert session.stats.grid_builds == 1  # memoised, not rebuilt

    def test_densest_only_session_builds_no_artifacts(self, k6):
        # The 4-phase pipeline runs on the faithful simulator: a session that
        # only serves densest requests must not pay for a CSR view or grid.
        session = Session(k6)
        session.densest(rounds=2)
        assert session.stats.csr_builds == 0
        assert session.stats.grid_builds == 0

    def test_faithful_session_builds_no_artifacts(self, k6):
        session = Session(k6, engine="faithful")
        session.surviving(rounds=3)
        assert session.stats.csr_builds == 0
        assert session.stats.grid_builds == 0

    def test_describe_mentions_graph_and_engine(self, k6):
        text = Session(k6).describe()
        assert "n=6" in text and "vectorized" in text

    def test_surviving_requires_exactly_one_budget(self, k6):
        session = Session(k6)
        with pytest.raises(AlgorithmError,
                           match="provide exactly one of epsilon, gamma or rounds"):
            session.surviving()
        with pytest.raises(AlgorithmError,
                           match="provide exactly one of epsilon, gamma or rounds"):
            session.surviving(epsilon=0.5, rounds=3)

    def test_matches_free_functions(self, two_communities):
        session = Session(two_communities)
        assert session.coreness(epsilon=0.5).values == \
            approximate_coreness(two_communities, epsilon=0.5).values
        assert session.orientation(epsilon=0.5).orientation.assignment == \
            approximate_orientation(two_communities, epsilon=0.5).orientation.assignment

    def test_densest_matches_free_function(self, k6):
        ours = Session(k6).densest(rounds=3)
        free = approximate_densest_subsets(k6, rounds=3)
        assert ours.subsets == free.subsets
        assert ours.best_density == free.best_density


class TestArtifactCaching:
    def test_csr_built_exactly_once_across_requests(self, two_communities, monkeypatch):
        calls = []
        real = session_module.graph_to_csr
        monkeypatch.setattr(session_module, "graph_to_csr",
                            lambda graph: calls.append(graph) or real(graph))
        session = Session(two_communities)
        session.coreness(rounds=3)
        session.coreness(rounds=6, lam=0.2)
        session.orientation(rounds=4)
        assert len(calls) == 1
        assert session.csr is session.csr

    def test_grid_built_exactly_once_per_lambda(self, two_communities, monkeypatch):
        lams = []
        real = session_module.grid_for_graph
        monkeypatch.setattr(session_module, "grid_for_graph",
                            lambda graph, lam: lams.append(lam) or real(graph, lam))
        session = Session(two_communities)
        session.surviving(rounds=2)
        session.surviving(rounds=4)
        session.surviving(rounds=2, lam=0.3)
        session.surviving(rounds=5, lam=0.3)
        assert lams == [0.0, 0.3]
        assert session.stats.grid_builds == 2
        assert session.grid(0.3) is session.grid(0.3)

    def test_result_cache_returns_same_object(self, k6):
        session = Session(k6)
        first = session.surviving(rounds=3)
        assert session.surviving(rounds=3) is first
        assert session.stats.result_hits == 1

    def test_result_cache_keys_on_all_request_fields(self, k6):
        session = Session(k6)
        base = session.surviving(rounds=3)
        assert session.surviving(rounds=3, lam=0.5) is not base
        assert session.surviving(rounds=3, track_kept=True) is not base
        assert session.surviving(rounds=3, tie_break="stable", track_kept=True) \
            is not session.surviving(rounds=3, track_kept=True)

    def test_budget_parametrisations_share_one_entry(self, k6):
        # epsilon resolves to some T; asking for that T explicitly is a hit.
        session = Session(k6)
        by_eps = session.surviving(epsilon=1.0)
        assert session.surviving(rounds=by_eps.rounds) is by_eps

    def test_problem_requests_deduplicated(self, k6):
        session = Session(k6)
        first = session.coreness(rounds=3)
        assert session.coreness(rounds=3) is first
        assert session.stats.problem_hits == 1
        assert session.densest(rounds=2) is session.densest(rounds=2)

    def test_equivalent_request_spellings_share_one_entry(self, k6):
        # The convenience methods pad unused params with None; solve() spelled
        # without them must still hit the same cache entry.
        session = Session(k6)
        assert session.solve("coreness", rounds=3) is session.coreness(rounds=3)
        assert session.solve("orientation", rounds=2) is \
            session.orientation(rounds=2)
        # ...as must a lam spelled explicitly at the session default
        assert session.solve("coreness", rounds=3, lam=0.0) is \
            session.coreness(rounds=3)
        warm = Session(k6, lam=0.25)
        assert warm.coreness(rounds=3, lam=0.25) is warm.coreness(rounds=3)

    def test_clear_cache_sheds_results_but_keeps_artifacts(self, two_communities):
        session = Session(two_communities)
        first = session.coreness(rounds=4)
        session.clear_cache()
        second = session.coreness(rounds=4)
        assert second is not first                    # recomputed...
        assert second.values == first.values          # ...identically
        assert session.stats.csr_builds == 1          # CSR view survived
        assert session.stats.cold_runs == 2


class TestBoundedResultCache:
    """``max_cached_results`` bounds the result caches with LRU eviction."""

    def test_unbounded_by_default(self, two_communities):
        session = Session(two_communities)
        for t in range(1, 9):
            session.surviving(rounds=t)
        assert len(session._results) == 8
        assert session.stats.evictions == 0

    def test_bound_is_enforced_on_surviving_results(self, two_communities):
        session = Session(two_communities, max_cached_results=3)
        for t in range(1, 9):
            session.surviving(rounds=t)
        assert len(session._results) == 3
        assert session.stats.evictions == 5

    def test_least_recently_used_entry_is_evicted_first(self, two_communities):
        session = Session(two_communities, max_cached_results=2)
        first = session.surviving(rounds=1)
        session.surviving(rounds=2)
        assert session.surviving(rounds=1) is first   # touch: 1 is now MRU
        session.surviving(rounds=3)                   # evicts the LRU entry (2)
        assert set(session._results) == {(1, 0.0, "history", False),
                                         (3, 0.0, "history", False)}
        assert session.surviving(rounds=1) is first   # survived as a hit

    def test_evicted_requests_recompute_identically(self, two_communities):
        session = Session(two_communities, max_cached_results=1)
        first = session.surviving(rounds=4)
        session.surviving(rounds=6)                   # evicts the T=4 entry
        again = session.surviving(rounds=4)
        assert again is not first
        assert again.values == first.values
        # The trajectory cache is not LRU-bounded (one array per λ), so the
        # recompute is served by slicing, not by running rounds again.
        assert session.stats.rounds_executed == 6

    def test_problem_results_are_bounded_too(self, two_communities):
        session = Session(two_communities, max_cached_results=2)
        for t in range(1, 6):
            session.coreness(rounds=t)
        assert len(session._problem_results) == 2

    def test_clear_cache_resets_a_bounded_session(self, two_communities):
        session = Session(two_communities, max_cached_results=2)
        session.coreness(rounds=2)
        session.coreness(rounds=3)
        session.clear_cache()
        assert len(session._results) == 0
        assert len(session._problem_results) == 0
        repeat = session.coreness(rounds=2)
        assert repeat.values == Session(two_communities).coreness(rounds=2).values

    def test_invalid_bound_rejected(self, two_communities):
        with pytest.raises(AlgorithmError, match="max_cached_results"):
            Session(two_communities, max_cached_results=0)


class TestPrefixReuse:
    def test_resumed_trajectory_bit_identical_to_cold(self, two_communities):
        warm = Session(two_communities)
        warm.surviving(rounds=3)
        resumed = warm.surviving(rounds=9)
        cold = Session(two_communities).surviving(rounds=9)
        assert np.array_equal(resumed.trajectory, cold.trajectory)
        assert resumed.values == cold.values
        assert warm.stats.prefix_resumes == 1
        assert warm.stats.rounds_executed == 9   # 3 cold + 6 resumed
        assert warm.stats.rounds_reused == 3

    def test_resumed_kept_sets_and_orientation_identical(self, ba_weighted):
        warm = Session(ba_weighted)
        warm.coreness(rounds=4)
        resumed = warm.orientation(rounds=10)
        cold = approximate_orientation(ba_weighted, rounds=10)
        assert resumed.values == cold.values
        assert resumed.surviving.kept == cold.surviving.kept
        assert resumed.orientation.assignment == cold.orientation.assignment
        assert resumed.orientation.in_weight == cold.orientation.in_weight

    def test_smaller_budget_served_by_slicing(self, two_communities):
        warm = Session(two_communities)
        warm.surviving(rounds=8)
        executed_before = warm.stats.rounds_executed
        sliced = warm.surviving(rounds=3)
        cold = Session(two_communities).surviving(rounds=3)
        assert np.array_equal(sliced.trajectory, cold.trajectory)
        assert sliced.values == cold.values
        assert warm.stats.trajectory_slices == 1
        assert warm.stats.rounds_executed == executed_before  # nothing recomputed

    def test_sliced_results_share_the_cached_trajectory_memory(self, two_communities):
        # A budget sweep must retain one O(T_max * n) trajectory, not a copy
        # per budget: sliced results hold views of the longest cached array.
        session = Session(two_communities)
        longest = session.surviving(rounds=8)
        for t in range(1, 8):
            sliced = session.surviving(rounds=t)
            assert np.shares_memory(sliced.trajectory, longest.trajectory)

    def test_slice_requests_skip_the_engine_entirely(self, two_communities,
                                                     monkeypatch):
        session = Session(two_communities)
        session.surviving(rounds=8)
        cold = Session(two_communities).surviving(rounds=3)
        cold_kept = Session(two_communities).surviving(rounds=3, track_kept=True)
        monkeypatch.setattr(session.engine, "run",
                            lambda *a, **k: pytest.fail("engine.run called"))
        sliced = session.surviving(rounds=3)
        assert sliced.values == cold.values
        assert sliced.kept == cold.kept
        assert sliced.node_order == cold.node_order
        assert np.array_equal(sliced.trajectory, cold.trajectory)
        # kept-set recovery is a pure function of the trajectory rows, so
        # track_kept requests are served engine-free too — bit-identically.
        sliced_kept = session.surviving(rounds=3, track_kept=True)
        assert sliced_kept.kept == cold_kept.kept
        assert sliced_kept.values == cold_kept.values

    def test_fully_covered_orientation_matches_free_function(self, ba_weighted,
                                                             monkeypatch):
        session = Session(ba_weighted)
        session.coreness(rounds=8)
        free = approximate_orientation(ba_weighted, rounds=5)
        monkeypatch.setattr(session.engine, "run",
                            lambda *a, **k: pytest.fail("engine.run called"))
        covered = session.orientation(rounds=5)
        assert covered.orientation.assignment == free.orientation.assignment
        assert covered.surviving.kept == free.surviving.kept

    def test_unknown_tie_break_rejected_even_on_the_slice_path(self, k6):
        session = Session(k6)
        session.surviving(rounds=5)
        with pytest.raises(AlgorithmError, match="unknown tie_break rule"):
            session.surviving(rounds=2, tie_break="coinflip")

    def test_ascending_sweep_rebinds_earlier_results_to_views(self, two_communities):
        # Growing budgets (the ε-sweep sweet spot): after each resume, earlier
        # cached results must be rebound to bit-identical views of the new
        # longest array instead of each retaining its own full copy.
        session = Session(two_communities)
        results = {t: session.surviving(rounds=t) for t in (2, 4, 6, 9)}
        longest = results[9].trajectory
        for t, result in results.items():
            assert np.shares_memory(result.trajectory, longest)
            cold = Session(two_communities).surviving(rounds=t)
            assert np.array_equal(result.trajectory, cold.trajectory)

    def test_prefix_reuse_is_per_lambda(self, ba_weighted):
        session = Session(ba_weighted)
        session.surviving(rounds=3, lam=0.2)
        session.surviving(rounds=6, lam=0.2)     # resumes the λ=0.2 trajectory
        assert session.stats.prefix_resumes == 1
        session.surviving(rounds=6)              # λ=0: no prefix yet -> cold
        assert session.stats.cold_runs == 2
        cold = Session(ba_weighted).surviving(rounds=6, lam=0.2)
        assert session.surviving(rounds=6, lam=0.2).values == cold.values

    def test_resume_past_fixed_point_still_identical(self, k6):
        # K6 reaches its fixed point after one round; resuming far past it must
        # fill the repeated rows exactly like a cold run does.
        warm = Session(k6)
        warm.surviving(rounds=2)
        resumed = warm.surviving(rounds=7)
        cold = Session(k6).surviving(rounds=7)
        assert np.array_equal(resumed.trajectory, cold.trajectory)

    def test_sharded_engine_resumes_identically(self, two_communities):
        warm = Session(two_communities, engine="sharded:3")
        warm.surviving(rounds=2)
        resumed = warm.surviving(rounds=6)
        cold = Session(two_communities, engine="vectorized").surviving(rounds=6)
        assert np.array_equal(resumed.trajectory, cold.trajectory)
        assert warm.stats.prefix_resumes == 1

    def test_trajectory_subclass_with_hint_free_signature_still_works(
            self, two_communities):
        # A TrajectoryEngine subclass written against the original
        # trajectory(csr, rounds, *, lam) signature must keep working even
        # when the session offers a warm-start prefix (it just recomputes).
        from repro.engine.kernels import compact_trajectory
        from repro.engine.vectorized import TrajectoryEngine

        class OldStyle(TrajectoryEngine):
            name = "old-style"

            def trajectory(self, csr, rounds, *, lam=0.0):
                return compact_trajectory(csr, rounds, lam=lam)

        session = Session(two_communities, engine=OldStyle())
        session.surviving(rounds=3)
        grown = session.surviving(rounds=7)   # prefix exists but is not forwarded
        cold = Session(two_communities).surviving(rounds=7)
        assert grown.values == cold.values
        assert np.array_equal(grown.trajectory, cold.trajectory)
        # stats stay honest: the engine recomputed every round, no reuse claimed
        assert session.stats.prefix_resumes == 0
        assert session.stats.rounds_reused == 0
        assert session.stats.rounds_executed == 10
        # ...while shrinking budgets are still served (and counted) as slices
        session.surviving(rounds=2)
        assert session.stats.trajectory_slices == 1

    def test_configured_problem_instances_do_not_share_cache_entries(self, k6):
        from repro.problems import DensestProblem

        class Scaled(DensestProblem):
            name = "scaled-densest"

            def __init__(self, factor):
                self.factor = factor

            def solve(self, session, **params):
                result = DensestProblem.solve(self, session, **params)
                return result, self.factor

        session = Session(k6)
        low = session.solve(Scaled(1), rounds=2)
        high = session.solve(Scaled(100), rounds=2)
        assert low[1] == 1 and high[1] == 100   # no cross-instance cache hit
        one = Scaled(7)
        assert session.solve(one, rounds=2) is session.solve(one, rounds=2)

    def test_engine_with_hint_free_run_signature_still_works(self, two_communities):
        # Third-party engines registered against the original run() signature
        # (no csr/grid/warm_start hints) must keep working through a Session,
        # including after a trajectory has been cached — even when they expose
        # a trajectory() method (duck-typed trajectory capability) without the
        # prefix-support probe.
        from repro.engine import get_engine
        from repro.engine.base import Engine
        from repro.engine.kernels import compact_trajectory

        class LegacyEngine(Engine):
            name = "legacy"

            def trajectory(self, csr, rounds, *, lam=0.0):
                return compact_trajectory(csr, rounds, lam=lam)

            def run(self, graph, rounds, *, lam=0.0, tie_break="history",
                    track_kept=True, csr=None, grid=None):
                return get_engine("vectorized").run(graph, rounds, lam=lam,
                                                    tie_break=tie_break,
                                                    track_kept=track_kept)

        session = Session(two_communities, engine=LegacyEngine())
        first = session.surviving(rounds=3)
        grown = session.surviving(rounds=6)   # prefix exists, hint not passed
        cold = Session(two_communities).surviving(rounds=6)
        assert first.values == Session(two_communities).surviving(rounds=3).values
        assert grown.values == cold.values
        assert np.array_equal(grown.trajectory, cold.trajectory)

    def test_direct_engine_subclass_receives_the_documented_hints(
            self, two_communities):
        # An engine implementing the full documented run() contract — without
        # subclassing TrajectoryEngine — must receive csr/grid/warm_start.
        from repro.engine import get_engine
        from repro.engine.base import Engine

        received = []

        class HintConsumer(Engine):
            name = "hint-consumer"

            def run(self, graph, rounds, *, lam=0.0, tie_break="history",
                    track_kept=True, csr=None, grid=None, warm_start=None):
                received.append((csr is not None, grid is not None,
                                 warm_start is not None))
                return get_engine("vectorized").run(
                    graph, rounds, lam=lam, tie_break=tie_break,
                    track_kept=track_kept, csr=csr, grid=grid,
                    warm_start=warm_start)

        session = Session(two_communities, engine=HintConsumer())
        session.surviving(rounds=3)
        grown = session.surviving(rounds=7)
        assert received == [(True, True, False), (True, True, True)]
        assert session.stats.prefix_resumes == 1
        cold = Session(two_communities).surviving(rounds=7)
        assert np.array_equal(grown.trajectory, cold.trajectory)

    def test_faithful_engine_never_reuses_but_matches(self, k6):
        session = Session(k6, engine="faithful")
        first = session.surviving(rounds=2)
        second = session.surviving(rounds=5)
        assert session.stats.cold_runs == 2
        assert session.stats.rounds_reused == 0
        assert first.values == Session(k6).surviving(rounds=2).values
        assert second.values == Session(k6).surviving(rounds=5).values
        # exact repeats still hit the result cache
        assert session.surviving(rounds=5) is second


class TestSessionStats:
    def test_stats_snapshot_is_json_serializable(self, k6):
        session = Session(k6)
        session.coreness(rounds=3)
        snapshot = json.loads(json.dumps(session.stats.to_dict()))
        assert snapshot["csr_builds"] == 1
        assert snapshot["rounds_executed"] >= 3

    def test_default_lam_used_by_surviving_and_coreness(self, ba_weighted):
        session = Session(ba_weighted, lam=0.4)
        result = session.coreness(rounds=3)
        assert result.lam == 0.4
        assert result.surviving.grid.lam == 0.4
        explicit = Session(ba_weighted).coreness(rounds=3, lam=0.4)
        assert result.values == explicit.values

    def test_default_lam_is_read_only(self, k6):
        # The request caches key on the default λ; mutating it would serve
        # results computed at the old value.
        session = Session(k6, lam=0.25)
        with pytest.raises(AttributeError):
            session.default_lam = 0.5
        assert session.default_lam == 0.25

    def test_orientation_overrides_default_lam_with_zero(self, ba_weighted):
        # Lemma III.11 requires Λ = R; a λ-defaulted session must not leak its
        # grid into orientation requests.
        session = Session(ba_weighted, lam=0.4)
        ours = session.orientation(rounds=4)
        free = approximate_orientation(ba_weighted, rounds=4)
        assert ours.orientation.assignment == free.orientation.assignment
        assert ours.surviving.grid.lam == 0.0


class TestLambdaCanonicalisationRegression:
    """Regression: λ = -0.0 split the caches between memory and disk.

    The in-memory dict keys collapse ``-0.0 == 0.0`` while the store's
    filename spelling used ``repr`` verbatim — so a session that computed at
    one spelling wrote an artifact the other spelling's restart could not
    find, and the store accumulated two files for one grid.  λ is now
    canonicalised once at every entry point; both spellings must address
    *one* artifact on disk, *one* cache entry in memory, and a restart must
    hit the disk whichever spelling it asks with.
    """

    def test_both_zero_spellings_share_one_artifact_and_cache_entry(
            self, two_communities, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        session = Session(two_communities, store=store)
        minus = session.coreness(rounds=4, lam=-0.0)
        plus = session.coreness(rounds=4, lam=0.0)
        assert plus is minus                      # one memory cache entry ...
        assert len(session._trajectories) == 1
        assert len(session._grids) == 1
        assert repr(session.grid(-0.0).lam) == "0.0"
        trajectory_files = [p.name for p in
                            store.graph_dir(session.fingerprint).iterdir()
                            if p.name.startswith("trajectory")]
        assert trajectory_files == ["trajectory-lam0.0.npz"]  # ... one on disk

    @pytest.mark.parametrize("spelling", [0.0, -0.0])
    def test_restart_hits_disk_for_either_spelling(self, two_communities,
                                                   tmp_path, spelling):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        cold = Session(two_communities, store=store)
        reference = cold.coreness(rounds=4, lam=-0.0)

        restarted = Session(two_communities, store=store)
        served = restarted.coreness(rounds=4, lam=spelling)
        assert restarted.stats.disk_hits == 1, spelling
        assert restarted.stats.cold_runs == 0
        assert served.values == reference.values
        # The restart extended nothing, so nothing was rewritten.
        assert restarted.stats.disk_writes == 0

    def test_minus_zero_default_lam_is_canonical(self, k6):
        session = Session(k6, lam=-0.0)
        assert repr(session.default_lam) == "0.0"

    def test_request_key_collapses_minus_zero(self, k6):
        from repro.problems import get_problem

        problem = get_problem("coreness")
        assert problem.request_key({"rounds": 4, "lam": -0.0}) == \
            problem.request_key({"rounds": 4, "lam": 0.0})


class TestNonFiniteLambdaRejection:
    """Regression: nan/inf λ reached the store and minted un-reloadable files."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_rejected_at_solve(self, k6, bad):
        session = Session(k6)
        with pytest.raises(ValueError, match="finite"):
            session.solve("coreness", rounds=2, lam=bad)
        with pytest.raises(ValueError, match="finite"):
            session.coreness(rounds=2, lam=bad)
        with pytest.raises(ValueError, match="finite"):
            session.surviving(rounds=2, lam=bad)

    def test_rejected_at_construction(self, k6):
        with pytest.raises(ValueError, match="finite"):
            Session(k6, lam=float("nan"))

    def test_rejected_before_any_work_or_disk_traffic(self, k6, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        session = Session(k6, store=store)
        with pytest.raises(ValueError, match="finite"):
            session.coreness(rounds=2, lam=float("nan"))
        assert session.stats.cold_runs == 0
        assert session.stats.disk_writes == 0
        assert not store.fingerprints()
