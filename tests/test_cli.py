"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.graph.generators.structured import complete_graph
from repro.graph.io import write_edge_list


@pytest.fixture
def k6_file(tmp_path):
    path = tmp_path / "k6.edges"
    write_edge_list(complete_graph(6), path)
    return path


class TestCorenessCommand:
    def test_on_edge_list_file(self, k6_file):
        out = io.StringIO()
        code = main(["coreness", "--input", str(k6_file), "--rounds", "3", "--top", "3"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "rounds=3" in text
        assert "approx coreness" in text
        assert "5" in text   # every K6 node has value 5

    def test_on_bundled_dataset(self):
        out = io.StringIO()
        code = main(["coreness", "--dataset", "caveman", "--epsilon", "1.0", "--top", "5"], out=out)
        assert code == 0
        assert "guarantee" in out.getvalue()

    def test_tsv_output(self, k6_file, tmp_path):
        target = tmp_path / "values.tsv"
        out = io.StringIO()
        code = main(["coreness", "--input", str(k6_file), "--rounds", "2",
                     "--output", str(target)], out=out)
        assert code == 0
        lines = target.read_text().strip().splitlines()
        assert len(lines) == 6
        assert all(line.split("\t")[1] == "5" for line in lines)

    def test_lambda_flag(self, k6_file):
        out = io.StringIO()
        code = main(["coreness", "--input", str(k6_file), "--rounds", "2", "--lam", "0.5"], out=out)
        assert code == 0

    def test_missing_file_is_reported(self, tmp_path):
        code = main(["coreness", "--input", str(tmp_path / "nope.edges"), "--rounds", "2"],
                    out=io.StringIO())
        assert code == 2


class TestOrientationCommand:
    def test_reports_objective(self, k6_file):
        out = io.StringIO()
        code = main(["orientation", "--input", str(k6_file), "--epsilon", "0.5"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "max weighted in-degree" in text
        assert "uncovered edges: 0" in text

    def test_assignment_output_file(self, k6_file, tmp_path):
        target = tmp_path / "orientation.tsv"
        code = main(["orientation", "--input", str(k6_file), "--rounds", "3",
                     "--output", str(target)], out=io.StringIO())
        assert code == 0
        assert len(target.read_text().strip().splitlines()) == 15


class TestDensestCommand:
    def test_reports_subsets(self, k6_file):
        out = io.StringIO()
        code = main(["densest", "--input", str(k6_file), "--epsilon", "1.0"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "true density" in text
        assert "2.5" in text

    def test_node_assignment_file(self, k6_file, tmp_path):
        target = tmp_path / "assignment.tsv"
        code = main(["densest", "--input", str(k6_file), "--epsilon", "1.0",
                     "--output", str(target)], out=io.StringIO())
        assert code == 0
        assert len(target.read_text().strip().splitlines()) == 6


class TestDatasetsCommandAndParsing:
    def test_datasets_listing(self):
        out = io.StringIO()
        assert main(["datasets"], out=out) == 0
        text = out.getvalue()
        assert "collab-small" in text and "road-grid" in text

    def test_requires_budget_argument(self, k6_file):
        with pytest.raises(SystemExit):
            main(["coreness", "--input", str(k6_file)])

    def test_requires_graph_source(self):
        with pytest.raises(SystemExit):
            main(["coreness", "--rounds", "3"])

    def test_input_and_dataset_are_exclusive(self, k6_file):
        with pytest.raises(SystemExit):
            main(["coreness", "--input", str(k6_file), "--dataset", "caveman",
                  "--rounds", "2"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
