"""Tests for quotient graphs, induced subgraphs and structural properties."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.generators.structured import balanced_tree, complete_graph, cycle_graph, path_graph
from repro.graph.graph import Graph
from repro.graph.properties import (
    bfs_distances,
    connected_components,
    count_triangles,
    degeneracy_ordering,
    degree_statistics,
    eccentricity,
    hop_diameter,
    is_connected,
)
from repro.graph.quotient import induced_subgraph, quotient_graph


class TestQuotientGraph:
    def test_empty_block_copies_graph(self, k6):
        assert quotient_graph(k6, []) == k6

    def test_cross_edges_become_self_loops(self):
        g = Graph(edges=[(0, 1, 2.0), (1, 2, 3.0)])
        q = quotient_graph(g, [1])
        assert set(q.nodes()) == {0, 2}
        assert q.self_loop_weight(0) == pytest.approx(2.0)
        assert q.self_loop_weight(2) == pytest.approx(3.0)
        assert q.num_edges == 2  # two self-loops

    def test_internal_edges_disappear(self, k6):
        q = quotient_graph(k6, [0, 1, 2])
        # Each remaining node had 3 edges to the removed block -> loop weight 3.
        for v in (3, 4, 5):
            assert q.self_loop_weight(v) == pytest.approx(3.0)
        # Plus the triangle among the survivors remains.
        assert q.has_edge(3, 4) and q.has_edge(4, 5) and q.has_edge(3, 5)

    def test_definition_ii2_weight_conservation(self, k6):
        """Edges not fully inside B keep their total weight in the quotient."""
        q = quotient_graph(k6, [0, 1])
        outside_weight = sum(w for u, v, w in k6.edges() if not {u, v} <= {0, 1})
        assert q.total_weight == pytest.approx(outside_weight)

    def test_unknown_node_in_block_raises(self, k6):
        with pytest.raises(GraphError):
            quotient_graph(k6, [99])

    def test_quotient_of_everything_is_empty(self, triangle):
        q = quotient_graph(triangle, [0, 1, 2])
        assert q.num_nodes == 0
        assert q.num_edges == 0


class TestInducedSubgraph:
    def test_keeps_only_internal_edges(self, k6):
        sub = induced_subgraph(k6, [0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_keeps_self_loops(self):
        g = Graph(edges=[(0, 0, 2.0), (0, 1, 1.0)])
        sub = induced_subgraph(g, [0])
        assert sub.self_loop_weight(0) == 2.0
        assert sub.num_edges == 1

    def test_unknown_node_raises(self, k6):
        with pytest.raises(GraphError):
            induced_subgraph(k6, [0, 42])


class TestProperties:
    def test_connected_components_of_disconnected_graph(self):
        g = Graph(edges=[(0, 1), (2, 3)], nodes=[4])
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3], [4]]

    def test_is_connected(self, k6):
        assert is_connected(k6)
        assert is_connected(Graph())
        assert not is_connected(Graph(nodes=[0, 1]))

    def test_bfs_distances_on_path(self, path5):
        dist = bfs_distances(path5, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_unknown_source_raises(self, path5):
        with pytest.raises(GraphError):
            bfs_distances(path5, 99)

    def test_eccentricity_and_diameter_of_path(self, path5):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2
        assert hop_diameter(path5) == 4

    def test_diameter_of_complete_graph(self, k6):
        assert hop_diameter(k6) == 1

    def test_approximate_diameter_lower_bounds_exact(self):
        tree = balanced_tree(2, 5)
        exact = hop_diameter(tree, exact=True)
        approx = hop_diameter(tree, exact=False, sample_size=8, seed=1)
        assert approx <= exact
        assert approx >= exact // 2  # double sweep is at least half

    def test_diameter_of_empty_graph_raises(self):
        with pytest.raises(GraphError):
            hop_diameter(Graph())

    def test_degeneracy_of_complete_graph(self, k6):
        order, degeneracy = degeneracy_ordering(k6)
        assert degeneracy == 5
        assert len(order) == 6

    def test_degeneracy_of_tree_is_one(self):
        tree = balanced_tree(3, 3)
        _, degeneracy = degeneracy_ordering(tree)
        assert degeneracy == 1

    def test_degree_statistics(self, star10):
        stats = degree_statistics(star10)
        assert stats["max"] == 10
        assert stats["min"] == 1
        assert stats["mean"] == pytest.approx(20 / 11)

    def test_degree_statistics_empty_raises(self):
        with pytest.raises(GraphError):
            degree_statistics(Graph())

    def test_count_triangles(self):
        assert count_triangles(complete_graph(4)) == 4
        assert count_triangles(cycle_graph(5)) == 0
        assert count_triangles(complete_graph(5)) == 10
